//! Scenario: audit the algorithm inside the MPC model itself.
//!
//! Runs Algorithm 2 as real message-passing dataflow on the `mpc-sim`
//! cluster and prints what the model charges for it: rounds, per-machine
//! memory, per-round traffic — plus the congested-clique translation the
//! paper's Section 1.3 corollary rests on. This is the run that proves
//! the implementation obeys the near-linear-memory regime instead of
//! assuming it.
//!
//! ```text
//! cargo run --release --example cluster_audit
//! ```

use mwvc_repro::core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_repro::core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_repro::graph::{generators::gnm, WeightModel, WeightedGraph};
use mwvc_repro::sim::congested_clique::simulate_on_clique;

fn main() {
    let n = 4_000;
    let graph = gnm(n, 64_000, 11); // d = 32
    let weights = WeightModel::Exponential { mean: 5.0 }.sample(&graph, 11);
    let instance = WeightedGraph::new(graph, weights);

    let config = MpcMwvcConfig::practical(0.1, 31);
    let cluster = recommended_cluster(&instance, &config);
    println!(
        "cluster: {} machines x {} words (near-linear regime: S/n = {:.1})",
        cluster.num_machines,
        cluster.memory_words,
        cluster.memory_words as f64 / n as f64
    );

    let outcome = run_distributed(&instance, &config, cluster);
    outcome.cover.verify(&instance.graph).expect("valid cover");
    println!(
        "result: cover weight {:.1}, {} phases",
        outcome.cover.weight(&instance),
        outcome.phases
    );
    let trace = &outcome.trace;
    println!(
        "model costs: {} rounds, peak resident {} words ({:.0}% of S), \
         peak per-round traffic {} words, total traffic {} words, {} violations",
        trace.num_rounds(),
        trace.peak_resident(),
        100.0 * trace.peak_resident() as f64 / cluster.memory_words as f64,
        trace.peak_traffic(),
        trace.total_traffic(),
        trace.violations.len()
    );
    println!("\nper-round breakdown (first 12 rounds):");
    for (i, r) in trace.rounds.iter().take(12).enumerate() {
        println!(
            "  {i:2} {:10}  sent<= {:7}  recv<= {:7}  resident<= {:8}",
            r.label, r.max_sent, r.max_received, r.max_resident
        );
    }

    // The congested-clique corollary: translate the executed trace.
    let clique = simulate_on_clique(trace, n);
    println!(
        "\ncongested clique translation (BDH18): {} rounds, max load factor {}",
        clique.rounds, clique.max_load_factor
    );

    // Cross-check against the reference executor: same algorithm, same
    // seeds, no message passing.
    let reference = run_reference(&instance, &config);
    assert_eq!(reference.cover, outcome.cover, "executors agree");
    println!(
        "\ncross-check: reference executor produced the identical cover \
         ({} vertices)",
        reference.cover.size()
    );
}
