//! Scenario: pick an algorithm for your instance.
//!
//! Runs every cover algorithm in the workspace on one instance family and
//! prints a comparison table: cover weight, certified ratio against the
//! exact LP bound, and MPC rounds where the algorithm has a parallel cost
//! story. Pass a different instance family on the command line:
//!
//! ```text
//! cargo run --release --example algorithm_shootout -- [er|powerlaw|rmat]
//! ```

use mwvc_repro::baselines::{lp_optimum, run_algorithm, Algorithm};
use mwvc_repro::core::mpc::MpcMwvcConfig;
use mwvc_repro::graph::generators::{chung_lu, gnm, rmat, RmatParams};
use mwvc_repro::graph::{WeightModel, WeightedGraph};

fn main() {
    let family = std::env::args().nth(1).unwrap_or_else(|| "er".into());
    let graph = match family.as_str() {
        "er" => gnm(8_000, 128_000, 3),
        "powerlaw" => chung_lu(8_000, 2.3, 32.0, 3),
        "rmat" => rmat(13, 16, RmatParams::default(), 3),
        other => {
            eprintln!("unknown family {other:?}; use er | powerlaw | rmat");
            std::process::exit(2);
        }
    };
    let weights = WeightModel::Zipf {
        exponent: 1.2,
        scale: 100.0,
    }
    .sample(&graph, 5);
    let instance = WeightedGraph::new(graph, weights);
    println!(
        "family {family}: n = {}, m = {}, d = {:.1}",
        instance.num_vertices(),
        instance.num_edges(),
        instance.graph.average_degree()
    );

    let lp = lp_optimum(&instance);
    println!("exact LP bound: {:.1}\n", lp.value);
    println!(
        "{:<18} {:>12} {:>10} {:>10}",
        "algorithm", "weight", "vs LP*", "mpc rounds"
    );
    let eps = 0.1;
    let algorithms = [
        Algorithm::MpcRoundCompression(MpcMwvcConfig::practical(eps, 7)),
        Algorithm::Centralized {
            epsilon: eps,
            seed: 7,
        },
        Algorithm::LocalBaseline {
            epsilon: eps,
            seed: 7,
        },
        Algorithm::BarYehudaEven,
        Algorithm::Greedy,
        Algorithm::Clarkson,
        Algorithm::MatchingCover,
        Algorithm::LpRounding,
    ];
    for alg in algorithms {
        let run = run_algorithm(&instance, alg);
        run.cover
            .verify(&instance.graph)
            .unwrap_or_else(|e| panic!("{}: uncovered edge {e:?}", run.name));
        println!(
            "{:<18} {:>12.1} {:>10.3} {:>10}",
            run.name,
            run.weight,
            run.weight / lp.value,
            run.mpc_rounds.map_or("-".into(), |r| r.to_string()),
        );
    }
    println!(
        "\nnote: vs LP* overstates the true ratio (OPT >= LP*); \
         matching-2approx ignores weights by design."
    );
}
