//! Quickstart: build a weighted graph, run the paper's MPC algorithm, and
//! verify the cover and its certified approximation ratio.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mwvc_repro::core::mpc::MpcMwvcConfig;
use mwvc_repro::core::solve_mpc;
use mwvc_repro::graph::{generators::gnm, EdgeIndex, WeightModel, WeightedGraph};

fn main() {
    // A random graph with 10k vertices, average degree 64, and vertex
    // weights drawn uniformly from [1, 10].
    let graph = gnm(10_000, 320_000, 42);
    let weights = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&graph, 42);
    let instance = WeightedGraph::new(graph, weights);
    println!(
        "instance: n = {}, m = {}, avg degree = {:.1}",
        instance.num_vertices(),
        instance.num_edges(),
        instance.graph.average_degree()
    );

    // Run Algorithm 2 (round compression) with epsilon = 0.1.
    let config = MpcMwvcConfig::practical(0.1, 7);
    let result = solve_mpc(&instance, &config);

    // The result is a verified vertex cover...
    result
        .cover
        .verify(&instance.graph)
        .expect("cover is valid");
    let weight = result.cover.weight(&instance);

    // ...with a dual certificate that lower-bounds the optimum, so the
    // approximation ratio is certified per-instance without knowing OPT.
    let eidx = EdgeIndex::build(&instance.graph);
    let lower_bound = result.certificate.lower_bound(&instance, &eidx);
    println!(
        "cover: {} vertices, weight {weight:.1}",
        result.cover.size()
    );
    println!(
        "certified: OPT >= {lower_bound:.1}, so ratio <= {:.3} (guarantee: {:.1})",
        weight / lower_bound,
        2.0 + 30.0 * config.epsilon
    );
    println!(
        "rounds: {} compression phases = {} MPC rounds",
        result.num_phases(),
        result.mpc_rounds()
    );
    for p in &result.phases {
        println!(
            "  phase {}: d = {:7.1}, m = {:3} machines, I = {:2} iterations, \
             edges {} -> {}",
            p.phase,
            p.d_avg,
            p.machines,
            p.iterations,
            p.nonfrozen_edges_before,
            p.nonfrozen_edges_after
        );
    }
    if let Some(fin) = result.final_phase {
        println!(
            "  final: {} vertices / {} edges solved on one machine in {} iterations",
            fin.vertices, fin.edges, fin.iterations
        );
    }
}
