//! Scenario: influence containment on a social network.
//!
//! The motivating workload of the MPC literature: a graph too large for
//! one machine, with power-law degrees (hubs!) and per-user moderation
//! costs. A minimum weight vertex cover is the cheapest set of accounts
//! to audit so that every relationship has at least one audited endpoint.
//!
//! This example compares the paper's algorithm against what a
//! practitioner would otherwise do (greedy, Bar-Yehuda–Even), certifying
//! everything against the exact LP bound.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use mwvc_repro::baselines::{bar_yehuda_even, greedy_ratio_cover, lp_optimum};
use mwvc_repro::core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_repro::graph::generators::chung_lu;
use mwvc_repro::graph::stats::DegreeStats;
use mwvc_repro::graph::{WeightModel, WeightedGraph};

fn main() {
    // Power-law network (Chung-Lu, beta = 2.2): a few huge hubs, many
    // leaves. Moderation cost grows with account size: hubs are expensive
    // to audit, which is exactly where weighted and unweighted vertex
    // cover part ways.
    let n = 50_000;
    let graph = chung_lu(n, 2.2, 24.0, 2024);
    let stats = DegreeStats::of(&graph);
    println!(
        "network: n = {}, m = {}, avg degree = {:.1}, max degree = {} (skew {:.0}x)",
        stats.n,
        stats.m,
        stats.avg,
        stats.max,
        stats.skew()
    );
    let weights = WeightModel::DegreeProportional {
        base: 1.0,
        slope: 0.2,
    }
    .sample(&graph, 7);
    let network = WeightedGraph::new(graph, weights);

    // Ground truth at scale: the exact LP optimum (OPT is between LP* and
    // 2 LP*).
    let lp = lp_optimum(&network);
    println!("LP* = {:.0}  (OPT is within [LP*, 2 LP*])", lp.value);

    // The paper's algorithm.
    let result = run_reference(&network, &MpcMwvcConfig::practical(0.1, 99));
    result.cover.verify(&network.graph).expect("valid cover");
    let w_mpc = result.cover.weight(&network);
    println!(
        "mpc round compression: weight {:.0} ({:.3} x LP*), {} phases / {} rounds",
        w_mpc,
        w_mpc / lp.value,
        result.num_phases(),
        result.mpc_rounds()
    );

    // Practitioner baselines (sequential; no round story at all).
    let greedy = greedy_ratio_cover(&network);
    greedy.verify(&network.graph).expect("valid cover");
    println!(
        "greedy w(v)/deg ratio:  weight {:.0} ({:.3} x LP*)",
        greedy.weight(&network),
        greedy.weight(&network) / lp.value
    );
    let bye = bar_yehuda_even(&network);
    bye.cover.verify(&network.graph).expect("valid cover");
    println!(
        "bar-yehuda-even:        weight {:.0} ({:.3} x LP*)",
        bye.cover.weight(&network),
        bye.cover.weight(&network) / lp.value
    );

    // How many audits land on hubs vs leaves?
    let hub_cutoff = (10.0 * stats.avg) as usize;
    let hubs_in_cover = result
        .cover
        .vertices()
        .iter()
        .filter(|&&v| network.graph.degree(v) >= hub_cutoff)
        .count();
    println!(
        "cover composition: {} accounts audited, {} of them hubs (degree >= {hub_cutoff})",
        result.cover.size(),
        hubs_in_cover
    );
}
