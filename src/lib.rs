//! `mwvc-repro` — umbrella crate of the reproduction of
//! Ghaffari–Jin–Nilis, *A Massively Parallel Algorithm for Minimum Weight
//! Vertex Cover* (SPAA 2020).
//!
//! This crate re-exports the workspace members so examples and
//! integration tests can use one coherent namespace:
//!
//! * [`graph`] — graph substrate (CSR graphs, generators, weights, I/O),
//! * [`sim`] — the MPC model simulator (machines, rounds, accounting),
//! * [`core`] — the paper's algorithms (centralized Algorithm 1 and the
//!   round-compressed MPC Algorithm 2), plus the [`core::mpc::Executor`]
//!   trait every end-to-end algorithm plugs into,
//! * [`roundcompress`] — the first alternative algorithm: an Assadi-style
//!   round-compression executor behind the same trait,
//! * [`baselines`] — comparison algorithms and exact certification
//!   machinery (LP bound, branch-and-bound).
//!
//! See the repository `README.md` for a guided tour and
//! `examples/quickstart.rs` for the fastest start.

pub use mpc_sim as sim;
pub use mwvc_baselines as baselines;
pub use mwvc_core as core;
pub use mwvc_graph as graph;
pub use mwvc_roundcompress as roundcompress;
