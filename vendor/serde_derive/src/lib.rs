//! Offline stand-in for `serde_derive`.
//!
//! The workspace pairs these derives with blanket trait impls in the
//! `serde` stand-in, so deriving `Serialize`/`Deserialize` only has to
//! *parse*; it does not need to generate an impl. Each derive therefore
//! expands to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
