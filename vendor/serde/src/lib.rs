//! Offline stand-in for `serde`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `serde` cannot be fetched. The codebase only uses serde as
//! `#[derive(Serialize, Deserialize)]` markers on plain data types — no
//! actual serialization format is wired up anywhere — so this stand-in
//! provides the two trait names with blanket impls, plus no-op derive
//! macros re-exported from [`serde_derive`]. Swapping the workspace back
//! to the real serde is a one-line change in the root `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so `T: Serialize` bounds and derives are satisfied trivially.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
