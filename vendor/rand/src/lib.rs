//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! Provides [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_range` (half-open and inclusive, integer and float)
//! and `gen_bool`. The sampling logic is real — uniform within the
//! requested range and fully deterministic for a given generator state —
//! but it does not promise bit-compatibility with upstream `rand`'s value
//! streams. Nothing in this workspace depends on upstream streams; all
//! determinism tests pin *self*-consistency of seeded generators.

/// Core generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64, like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        fn splitmix64(x: &mut u64) -> u64 {
            *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn "from the standard distribution" via
/// [`Rng::gen`]: full-range integers, `[0, 1)` floats, fair bools.
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_open_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits to a double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_open_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a double in `[0, 1]`.
#[inline]
fn unit_closed_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by rejection from the top multiple of
/// `span`, so every value is exactly equally likely.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1; // largest multiple of span, minus 1
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Compute the span in i128 so narrow signed ranges (e.g.
                // -100i8..100, span 200 > i8::MAX) neither wrap nor
                // sign-extend; the final truncation to u64 is exact
                // because every supported type is at most 64 bits wide.
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                // Truncating the offset and wrapping-adding is modular
                // arithmetic; the true sum lies in [start, end), which is
                // representable, so the wrapped result is the true sum.
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_open_f64(rng.next_u64());
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                // Guard the end bound against floating-point round-up.
                let v = v as $t;
                if v >= self.end { <$t>::next_down(self.end).max(self.start) } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_closed_f64(rng.next_u64());
                let v = (lo as f64 + (hi as f64 - lo as f64) * u) as $t;
                v.clamp(lo, hi)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_open_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Namespace parity with upstream `rand::rngs` (intentionally empty:
    //! the workspace seeds every generator explicitly via `rand_chacha`).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
            let w = rng.gen_range(1.0f64..=8.0);
            assert!((1.0..=8.0).contains(&w));
        }
    }

    #[test]
    fn narrow_signed_ranges_stay_in_bounds() {
        // Regression: spans wider than the signed type's max (200 > i8::MAX)
        // must not wrap or sign-extend into garbage.
        let mut rng = Counter(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w = rng.gen_range(i16::MIN..=i16::MAX);
            let _ = w; // full domain: any value is fine, must not panic
            let x = rng.gen_range(-30_000i16..30_000);
            assert!((-30_000..30_000).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn full_u64_range_inclusive_does_not_panic() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_infers_integer_types() {
        let mut rng = Counter(9);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
