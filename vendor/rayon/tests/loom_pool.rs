//! Model-checked interleavings of the pool, built on the vendored `loom`
//! (see `vendor/loom`). Compiled and run only under
//! `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rayon --test loom_pool
//! ```
//!
//! Every scenario uses a small explicit pool (the loom build has no
//! global pool) and drops it inside the model closure, so each explored
//! schedule also covers worker startup, parking, shutdown wakeup, and
//! join-on-drop. Coverage targets, per ISSUE:
//!
//! * LIFO-pop vs FIFO-steal deque races (`for_each` drives, nested
//!   `join`, `scope` spawns);
//! * condvar sleep/wake with no lost wakeups (parking has no timeout
//!   under loom, so a lost wakeup is a detected deadlock);
//! * `pending`-counter quiescence once a drive returns and at shutdown;
//! * cross-thread panic propagation through `join`.
//!
//! The `mutation_*` tests prove the suite has teeth: with
//! `LOOM_MUTATE=drop-notify` (a swallowed wakeup) or
//! `LOOM_MUTATE=weaken-done-store` (`SeqCst` publication dropped to
//! `Relaxed`) the corresponding scenario must FAIL model checking, and
//! the test asserts that failure. CI runs each mutation as a separate
//! filtered invocation; the unmutated run executes the whole file.
//!
//! Schedule-count floors: `three_thread_join_explores_widely` alone
//! asserts >= 10,000 distinct schedules under the default preemption
//! bound of 2 (measured ~18,500), so the whole suite's coverage floor is
//! enforced by the tests themselves, not by CI bookkeeping. The
//! two-thread scenarios add a further ~2,300 schedules.

#![cfg(loom)]

use rayon::prelude::*;
use rayon::{join, scope, ThreadPool, ThreadPoolBuilder};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A two-logical-thread pool: one spawned worker plus the driving model
/// thread. Small enough to explore exhaustively, big enough to race.
fn pool2() -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("build pool")
}

/// Runs a model expected to fail, swallowing the (intentional) panic
/// noise, and returns the failure message.
fn expect_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    panic::set_hook(prev);
    let payload = result.expect_err("model unexpectedly passed every schedule");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// LIFO-pop vs FIFO-steal: a three-chunk `for_each` drive on two
/// threads. The driver pushes one helper job and then claims chunks
/// concurrently with the stealing worker; every item must run exactly
/// once, and the queues must be quiescent after the drive returns.
#[test]
fn for_each_runs_every_item_exactly_once() {
    let report = loom::Builder::new().check(|| {
        let pool = pool2();
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0..3usize).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "item {i} hit count");
        }
        assert_eq!(pool.pending_jobs(), 0, "drive left jobs queued");
    });
    eprintln!("for_each_runs_every_item_exactly_once: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Nested `join` under a stealing worker: the outer sibling goes to the
/// injector, the inner one races the worker's LIFO pop against the
/// driver's own help-first execution.
#[test]
fn nested_join_computes_all_branches() {
    let report = loom::Builder::new().check(|| {
        let pool = pool2();
        let (a, (b, c)) = pool.install(|| join(|| 1, || join(|| 2, || 3)));
        assert_eq!((a, b, c), (1, 2, 3));
        assert_eq!(pool.pending_jobs(), 0, "join left jobs queued");
    });
    eprintln!("nested_join_computes_all_branches: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Condvar sleep/wake: the worker may park before the spawn is pushed,
/// and `scope` itself parks waiting for `pending == 0`. Under loom
/// parking has no timeout, so any lost wakeup in this scenario is a
/// detected deadlock rather than a silent 100ms stall.
#[test]
fn scope_spawn_wakes_parked_worker() {
    let report = loom::Builder::new().check(|| {
        let pool = pool2();
        let n = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
        assert_eq!(pool.pending_jobs(), 0, "scope left jobs queued");
    });
    eprintln!("scope_spawn_wakes_parked_worker: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Quiescence at shutdown: after a drive the `pending` counter must be
/// exactly zero, and dropping the pool (shutdown flag + wakeup + join)
/// must terminate in every schedule — a worker parked at shutdown must
/// be woken by the drop's notify.
#[test]
fn pending_quiesces_before_shutdown() {
    let report = loom::Builder::new().check(|| {
        let pool = pool2();
        let (a, b) = pool.install(|| join(|| 20, || 22));
        assert_eq!(a + b, 42);
        assert_eq!(pool.pending_jobs(), 0, "pending != 0 after drive");
        drop(pool);
    });
    eprintln!("pending_quiesces_before_shutdown: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Cross-thread panic propagation: whichever thread executes the
/// panicking closure, the payload must resume on the forking caller —
/// including when the worker stole the job and the panic crosses the
/// `done`-flag publication.
#[test]
fn join_propagates_panic_across_threads() {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let report = loom::Builder::new().check(|| {
        let pool = pool2();
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 7, || panic!("stolen side exploded")))
        }));
        assert!(r.is_err(), "join swallowed the panic");
        assert_eq!(pool.pending_jobs(), 0, "panic left jobs queued");
    });
    panic::set_hook(prev);
    eprintln!("join_propagates_panic_across_threads: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// The wide-exploration scenario: two workers plus the driver, nested
/// `join`. Three threads racing over LIFO pops, FIFO steals, parking and
/// publication is where the schedule tree gets serious — this test
/// enforces the suite's >= 10,000-distinct-schedules coverage floor.
#[test]
fn three_thread_join_explores_widely() {
    let report = loom::Builder::new().check(|| {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("build pool");
        let ((a, b), c) = pool.install(|| join(|| join(|| 1, || 2), || 3));
        assert_eq!((a, b, c), (1, 2, 3));
        assert_eq!(pool.pending_jobs(), 0, "join left jobs queued");
    });
    eprintln!("three_thread_join_explores_widely: {report:?}");
    assert!(
        !report.truncated,
        "exploration truncated at the iteration cap"
    );
    assert!(
        report.schedules >= 10_000,
        "coverage floor regressed: explored only {} schedules",
        report.schedules
    );
}

/// The `join` scenario the `weaken-done-store` mutation targets, as a
/// plain value-passing check (results must cross threads intact).
fn join_publishes_results() {
    let pool = pool2();
    let (a, b) = pool.install(|| join(|| 40, || 2));
    assert_eq!(a + b, 42);
}

/// The parking scenario the `drop-notify` mutation targets.
fn drive_then_shutdown() {
    let pool = pool2();
    let total = AtomicUsize::new(0);
    pool.install(|| {
        (0..2usize).into_par_iter().for_each(|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(total.load(Ordering::SeqCst), 2);
}

/// Seeded mutation "drop-notify": `PoolState::notify_all` swallows the
/// wakeup. Some schedule then parks the worker forever (the shutdown
/// notify is also swallowed), which the model must report as a deadlock.
/// Without the mutation the same scenario must pass every schedule.
#[test]
fn mutation_drop_notify_is_detected() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("drop-notify") => {
            let msg = expect_failure(drive_then_shutdown);
            assert!(msg.contains("deadlock"), "expected deadlock, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(drive_then_shutdown);
            eprintln!("mutation_drop_notify_is_detected (unmutated): {report:?}");
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}

/// Seeded mutation "weaken-done-store": `StackJob`'s `done` publication
/// drops from `SeqCst` to `Relaxed`, so in the schedule where the worker
/// executes the sibling and the driver reads `done == true` without an
/// intervening lock, the result-cell read races the executor's write —
/// the model must report a data race. Without the mutation the same
/// scenario must pass every schedule.
#[test]
fn mutation_weaken_done_store_is_detected() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("weaken-done-store") => {
            let msg = expect_failure(join_publishes_results);
            assert!(msg.contains("data race"), "expected data race, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(join_publishes_results);
            eprintln!("mutation_weaken_done_store_is_detected (unmutated): {report:?}");
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}
