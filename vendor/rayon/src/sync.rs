//! Synchronization facade for the pool: `std::sync` in normal builds,
//! the `loom` model-checking shims under `RUSTFLAGS="--cfg loom"`.
//!
//! `pool.rs` and `scope.rs` must import every synchronization primitive
//! through this module and never from `std::sync` directly — otherwise
//! the loom suite silently stops covering the real code. `repo-lint`
//! (tools/lint) enforces that rule, and the ROADMAP's round-pipelining
//! item depends on it: any future scheduler rework is expected to land
//! with its interleavings model-checked through this facade.
//!
//! The handful of intentional std/loom differences are wrapped here
//! rather than scattered through the pool:
//!
//! * [`UnsafeCell`] exposes loom's closure-based `with`/`with_mut` API
//!   in both modes, so cell accesses are race-checked under the model.
//! * [`condvar_wait_park`] is `wait_timeout` on std (the pool's 100ms
//!   safety net) but a plain `wait` under loom: the model has no time,
//!   so a wakeup that only ever arrives via the timeout — a lost-wakeup
//!   bug — becomes a detected deadlock instead of a silent stall.
//! * [`spawn_named`] drops the thread name under loom (model threads
//!   are scheduler-owned).

#[cfg(not(loom))]
pub(crate) use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard, OnceLock};

#[cfg(loom)]
pub(crate) use loom::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};
#[cfg(loom)]
pub(crate) use std::sync::OnceLock;

use std::time::Duration;

/// Waits on `cv` until notified, or until `timeout` as a safety net
/// (std builds only — under loom every wakeup must come from a notify).
pub(crate) fn condvar_wait_park<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    #[cfg(not(loom))]
    {
        match cv.wait_timeout(guard, timeout) {
            Ok((g, _)) => g,
            Err(poison) => poison.into_inner().0,
        }
    }
    #[cfg(loom)]
    {
        let _ = timeout;
        match cv.wait(guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Spawns an OS thread (std) or a model thread (loom). The name is
/// advisory and only applied on std.
pub(crate) fn spawn_named<F>(name: String, f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    #[cfg(not(loom))]
    {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("spawn pool worker")
    }
    #[cfg(loom)]
    {
        let _ = name;
        loom::thread::spawn(f)
    }
}

#[cfg(not(loom))]
pub(crate) type JoinHandle = std::thread::JoinHandle<()>;
#[cfg(loom)]
pub(crate) type JoinHandle = loom::thread::JoinHandle<()>;

/// The pool's interior-mutability cell: loom's closure-based API in both
/// modes, so every access is a race-detection point under the model.
#[cfg(not(loom))]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    pub(crate) fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    /// Kept for API parity with `loom::cell::UnsafeCell` even when the
    /// pool itself only needs `with_mut`.
    #[allow(dead_code)]
    pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

#[cfg(loom)]
pub(crate) use loom::cell::UnsafeCell;

/// Spin-loop annotation for help-first wait loops: a no-op CPU hint on
/// std, but under loom it tells the model checker the current thread is
/// waiting on another thread's progress, so the explorer never charges
/// the schedule tree with "run the spinner forever" interleavings (which
/// would be reported as livelocks despite OS fairness resolving them in
/// real runs).
pub(crate) fn yield_spin() {
    #[cfg(not(loom))]
    std::hint::spin_loop();
    #[cfg(loom)]
    loom::thread::yield_now();
}

/// Whether a named seeded mutation is active. Mutations are compiled in
/// only under loom and switched at runtime via `LOOM_MUTATE=<name>`;
/// CI's model-check job uses them to prove the suite actually fails
/// when a wakeup is dropped or an ordering is weakened.
#[cfg(loom)]
pub(crate) fn mutation(name: &str) -> bool {
    std::env::var("LOOM_MUTATE").map_or(false, |v| v == name)
}
