//! The work-stealing pool: persistent workers, per-worker deques, and the
//! chunked-drive primitive every parallel iterator runs on.
//!
//! # Scheduling model
//!
//! A pool of `T` threads consists of `T - 1` spawned workers plus the
//! calling thread, which participates in every operation it drives (so
//! `T = 1` means strictly sequential inline execution — no worker threads
//! at all). Each worker owns a deque: it pushes and pops its own work at
//! the back (LIFO, for cache locality) and steals from other workers' —
//! and the shared injector's — front (FIFO, for fairness). Threads that
//! must wait (for a `join` sibling, a `scope`, or a chunked drive) never
//! block idly while work exists: they execute queued jobs until their
//! wait condition resolves ("help-first" waiting), which also makes
//! nested parallelism deadlock-free.
//!
//! # Determinism
//!
//! Scheduling is nondeterministic; *results* are not. Every primitive
//! exposed from this module assigns work by index into preallocated,
//! disjoint output slots, so any interleaving produces the same output.
//! Reduction shapes are fixed by the caller (see `iter.rs`), never by the
//! thread count.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{self, Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::time::Duration;

/// How long an idle thread sleeps before re-checking its wake condition.
/// A pure safety net: every state change that can satisfy a wait also
/// notifies the pool's condvar under the sleep lock.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// A type-erased pointer to a job payload plus its execution shim.
///
/// The payload lives either on the stack of a thread that is guaranteed
/// to outlive the job's execution (`StackJob`, chunk drives) or on the
/// heap (`scope` spawns). Safety rests on the invariant that a `JobRef`
/// is executed exactly once and that stack payloads are not popped off
/// the owning stack frame until their job is known to have finished.
#[derive(Copy, Clone)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the payload types are constrained to Send closures by the
// public entry points that construct JobRefs.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// `data` must stay valid until the job executes, and the caller
    /// must arrange for the job to execute exactly once.
    pub(crate) unsafe fn new(data: *const (), exec: unsafe fn(*const ())) -> Self {
        Self { data, exec }
    }

    /// # Safety
    ///
    /// Must be called at most once per `JobRef`, while the payload
    /// behind `data` is still alive.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: forwarded contract — `new`'s caller guarantees the
        // payload outlives this single execution.
        unsafe { (self.exec)(self.data) }
    }
}

/// Shared state of one pool.
pub(crate) struct PoolState {
    /// Logical thread count `T` (workers + the driving caller).
    threads: usize,
    /// One deque per spawned worker (`T - 1` of them).
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs pushed by threads that are not workers of this pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Number of queued jobs across all queues (wake signal).
    pending: AtomicUsize,
    /// Sleep/wake machinery: idle threads wait here.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Set once by `ThreadPool::drop`; workers drain their queues, then exit.
    shutdown: AtomicBool,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PoolState {
    fn new(threads: usize) -> Self {
        let workers = threads.saturating_sub(1);
        Self {
            threads,
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Logical thread count of this pool.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Pushes `jobs` onto the current thread's own deque (if it is a
    /// worker of this pool) or the injector, then wakes sleepers.
    pub(crate) fn push_jobs(self: &Arc<Self>, jobs: impl IntoIterator<Item = JobRef>) {
        let own = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|(state, index)| Arc::ptr_eq(state, self).then_some(*index))
        });
        let queue = match own {
            Some(i) => &self.deques[i],
            None => &self.injector,
        };
        let mut n = 0;
        {
            let mut q = lock_ignore_poison(queue);
            for job in jobs {
                q.push_back(job);
                n += 1;
            }
        }
        self.pending.fetch_add(n, Ordering::SeqCst);
        self.notify_all();
    }

    /// Pops or steals one job. `index` is this thread's worker index in
    /// this pool, if any.
    fn find_job(&self, index: Option<usize>) -> Option<JobRef> {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        // Own deque first, from the back.
        if let Some(i) = index {
            if let Some(job) = lock_ignore_poison(&self.deques[i]).pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        // Then the injector, then the other workers' deques, from the front.
        if let Some(job) = lock_ignore_poison(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let w = self.deques.len();
        let start = index.map_or(0, |i| i + 1);
        for k in 0..w {
            let j = (start + k) % w.max(1);
            if Some(j) == index {
                continue;
            }
            if let Some(job) = lock_ignore_poison(&self.deques[j]).pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Wakes every sleeping thread of the pool. Acquiring the sleep lock
    /// before notifying closes the check-then-sleep race in `park_unless`.
    pub(crate) fn notify_all(&self) {
        let _guard = lock_ignore_poison(&self.sleep_lock);
        // Seeded mutation "drop-notify" (loom builds only): swallow the
        // wakeup. The model-check suite must detect this as a deadlock —
        // CI runs it to prove the suite has teeth.
        #[cfg(loom)]
        if sync::mutation("drop-notify") {
            return;
        }
        self.sleep_cv.notify_all();
    }

    /// Sleeps until notified (or the safety-net timeout), unless
    /// `awake()` already holds under the sleep lock. Under loom there is
    /// no timeout: every wakeup must be notified, so a lost wakeup shows
    /// up as a deadlock instead of hiding behind the safety net.
    fn park_unless(&self, awake: &dyn Fn() -> bool) {
        let guard = lock_ignore_poison(&self.sleep_lock);
        if awake() {
            // `pending > 0` can be momentarily stale (a job was claimed
            // but its decrement hasn't landed), so this branch may spin a
            // few rounds before either finding work or really sleeping —
            // announce the spin to the model checker.
            drop(guard);
            sync::yield_spin();
            return;
        }
        drop(sync::condvar_wait_park(&self.sleep_cv, guard, PARK_TIMEOUT));
    }

    /// Executes queued jobs until `done()` holds. The workhorse behind
    /// `join`, `scope`, and chunked drives: waiting threads keep the pool
    /// saturated instead of blocking.
    pub(crate) fn wait_until(&self, done: &dyn Fn() -> bool) {
        let index = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|(state, index)| std::ptr::eq(&**state, self).then_some(*index))
        });
        while !done() {
            match self.find_job(index) {
                // SAFETY: a popped JobRef is executed exactly once, and
                // its stack/heap payload is kept alive by the pushing
                // frame until the job is known to have finished.
                Some(job) => unsafe { job.execute() },
                None => self.park_unless(&|| done() || self.pending.load(Ordering::SeqCst) > 0),
            }
        }
    }

    fn worker_main(self: Arc<Self>, index: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&self), index)));
        loop {
            while let Some(job) = self.find_job(Some(index)) {
                // SAFETY: as in `wait_until` — each queued JobRef runs
                // once while its payload is still alive.
                unsafe { job.execute() };
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.park_unless(&|| {
                self.pending.load(Ordering::SeqCst) > 0 || self.shutdown.load(Ordering::SeqCst)
            });
        }
        WORKER.with(|w| *w.borrow_mut() = None);
    }
}

thread_local! {
    /// Set on pool worker threads: (their pool, their worker index).
    static WORKER: RefCell<Option<(Arc<PoolState>, usize)>> = const { RefCell::new(None) };
    /// Stack of pools made current on this thread via `ThreadPool::install`.
    static INSTALLED: RefCell<Vec<Arc<PoolState>>> = const { RefCell::new(Vec::new()) };
}

/// The pool the current thread's parallel operations run on: the thread's
/// own pool if it is a worker, else the innermost `install`ed pool, else
/// the lazily-built global pool (std builds only — model-checked code
/// must always name its pool explicitly).
pub(crate) fn current_state() -> Arc<PoolState> {
    if let Some(state) = WORKER.with(|w| w.borrow().as_ref().map(|(s, _)| Arc::clone(s))) {
        return state;
    }
    if let Some(state) = INSTALLED.with(|s| s.borrow().last().cloned()) {
        return state;
    }
    Arc::clone(&global().state)
}

/// An owned thread pool. Dropping it shuts the workers down (after they
/// drain their queues).
pub struct ThreadPool {
    state: Arc<PoolState>,
    handles: Vec<sync::JoinHandle>,
}

impl ThreadPool {
    /// Creates a pool of `threads` logical threads (`threads - 1` workers
    /// plus the driving caller). `0` means the environment default
    /// (`RAYON_NUM_THREADS`, else the hardware parallelism).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let state = Arc::new(PoolState::new(threads));
        let handles = (0..threads.saturating_sub(1))
            .map(|index| {
                let state = Arc::clone(&state);
                sync::spawn_named(format!("rayon-worker-{index}"), move || {
                    state.worker_main(index)
                })
            })
            .collect();
        Self { state, handles }
    }

    /// Logical thread count.
    pub fn current_num_threads(&self) -> usize {
        self.state.threads()
    }

    /// Runs `f` with this pool as the current thread's pool: every
    /// parallel operation inside (including nested ones on this thread)
    /// executes here instead of the global pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(&self.state)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// Queued-job count, for the model-checked quiescence assertion:
    /// after a drive returns, nothing may remain queued.
    #[cfg(loom)]
    pub fn pending_jobs(&self) -> usize {
        self.state.pending.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Mirrors `rayon::ThreadPoolBuilder` for the configuration surface this
/// workspace uses.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build_global`]: the global pool was
/// already initialized.
#[derive(Debug)]
pub struct GlobalPoolAlreadyInitialized;

impl std::fmt::Display for GlobalPoolAlreadyInitialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for GlobalPoolAlreadyInitialized {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the logical thread count (`0` = environment default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds an owned pool.
    pub fn build(self) -> Result<ThreadPool, GlobalPoolAlreadyInitialized> {
        Ok(ThreadPool::new(self.num_threads))
    }

    /// Installs the configuration as the process-global pool. Fails if
    /// the global pool was already (lazily or explicitly) created.
    pub fn build_global(self) -> Result<(), GlobalPoolAlreadyInitialized> {
        GLOBAL
            .set(ThreadPool::new(self.num_threads))
            .map_err(|_| GlobalPoolAlreadyInitialized)
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global() -> &'static ThreadPool {
    // A lazily-built process-global pool cannot work under the model
    // checker: it would leak threads and schedule state across explored
    // executions. Loom tests must `install` an explicit pool.
    #[cfg(loom)]
    {
        panic!("the loom build has no global pool: run under ThreadPool::install");
    }
    #[cfg(not(loom))]
    {
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }
}

/// `RAYON_NUM_THREADS` if set to a positive integer, else the hardware
/// parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// Number of logical threads of the current pool.
pub fn current_num_threads() -> usize {
    current_state().threads()
}

// ── Chunked drive ──────────────────────────────────────────────────────

/// Shared control block of one chunked drive, on the driving thread's
/// stack. Runner jobs claim chunk indices from `next` until exhausted.
struct ChunkDrive<'a> {
    body: &'a (dyn Fn(usize) + Sync),
    num_chunks: usize,
    next: AtomicUsize,
    /// Chunks not yet finished executing.
    remaining: AtomicUsize,
    /// Spawned runner jobs that have finished executing (each runs to
    /// completion in one shot). The drive returns only once every spawned
    /// job has run, so no queued `JobRef` can outlive this struct.
    exited: AtomicUsize,
    spawned: usize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    state: Arc<PoolState>,
}

impl ChunkDrive<'_> {
    /// Claims and executes chunks until none are left.
    ///
    /// The `remaining`-drain notify inside the loop may touch `self`
    /// afterwards: `done()` also requires this runner's `exited`
    /// increment (helpers) or happens on the waiting thread itself (the
    /// inline caller), so the control block cannot be popped mid-loop.
    fn run(&self) {
        loop {
            let c = self.next.fetch_add(1, Ordering::SeqCst);
            if c >= self.num_chunks {
                return;
            }
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (self.body)(c))) {
                lock_ignore_poison(&self.panic).get_or_insert(payload);
            }
            if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.state.notify_all();
            }
        }
    }

    fn done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
            && self.exited.load(Ordering::SeqCst) == self.spawned
    }
}

/// # Safety
///
/// `data` must point to a live `ChunkDrive` whose frame outlives this
/// call (guaranteed by `run_chunks` waiting on `done()`).
unsafe fn chunk_runner(data: *const ()) {
    // SAFETY: `run_chunks` keeps the ChunkDrive frame alive until
    // `done()`, which requires this runner's `exited` increment below.
    let drive = unsafe { &*(data as *const ChunkDrive<'_>) };
    // The exited increment may complete `done()`, letting the driving
    // thread return and pop the stack frame holding the ChunkDrive — so
    // the pool handle must be cloned out *before* publishing, and the
    // drive must not be touched after.
    let state = Arc::clone(&drive.state);
    drive.run();
    drive.exited.fetch_add(1, Ordering::SeqCst);
    state.notify_all();
}

/// Executes `body(c)` for every chunk index `c in 0..num_chunks`,
/// potentially in parallel on `state`'s pool, returning once all chunks
/// have finished. The first panic (by chunk completion order) is
/// propagated after every chunk has run.
///
/// Chunk *assignment* to threads is nondeterministic; callers make the
/// overall operation deterministic by writing to disjoint, index-addressed
/// output and by fixing the chunk shape independently of the thread count.
pub(crate) fn run_chunks(state: &Arc<PoolState>, num_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if num_chunks == 0 {
        return;
    }
    if state.threads() <= 1 || num_chunks == 1 {
        // Inline sequential execution: same chunk shape, no machinery.
        for c in 0..num_chunks {
            body(c);
        }
        return;
    }
    // The caller is one runner; spawn helpers for the rest of the pool.
    let helpers = state.threads().min(num_chunks) - 1;
    let drive = ChunkDrive {
        body,
        num_chunks,
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(num_chunks),
        exited: AtomicUsize::new(0),
        spawned: helpers,
        panic: Mutex::new(None),
        state: Arc::clone(state),
    };
    let drive_ptr = &drive as *const ChunkDrive<'_> as *const ();
    // SAFETY: `wait_until(done)` below guarantees every spawned JobRef has
    // executed before this frame returns, so the stack payload outlives
    // all references to it.
    state.push_jobs((0..helpers).map(|_| unsafe { JobRef::new(drive_ptr, chunk_runner) }));
    drive.run();
    state.wait_until(&|| drive.done());
    let payload = lock_ignore_poison(&drive.panic).take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(threads: usize) -> ThreadPool {
        ThreadPool::new(threads)
    }

    fn drive_counts(p: &ThreadPool, chunks: usize) -> Vec<usize> {
        let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
        p.install(|| {
            run_chunks(&current_state(), chunks, &|c| {
                hits[c].fetch_add(1, Ordering::SeqCst);
            })
        });
        hits.into_iter().map(|h| h.into_inner()).collect()
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let p = pool(threads);
            for chunks in [0, 1, 2, 3, 64, 257] {
                assert_eq!(drive_counts(&p, chunks), vec![1; chunks], "T={threads}");
            }
        }
    }

    #[test]
    fn chunk_panic_propagates_after_completion() {
        let p = pool(4);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.install(|| {
                run_chunks(&current_state(), 16, &|c| {
                    if c == 7 {
                        panic!("chunk 7 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 15, "other chunks still ran");
    }

    #[test]
    fn nested_drives_do_not_deadlock() {
        let p = pool(3);
        let total = AtomicUsize::new(0);
        p.install(|| {
            run_chunks(&current_state(), 8, &|_| {
                run_chunks(&current_state(), 8, &|_| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(total.into_inner(), 64);
    }

    #[test]
    fn install_overrides_global() {
        let p = pool(5);
        assert_eq!(p.install(current_num_threads), 5);
    }

    #[test]
    fn env_default_is_respected_shape_only() {
        // Can't set env safely in-process for the global pool (it may
        // already be built); just check the parser path.
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let p = pool(4);
        let n = AtomicUsize::new(0);
        p.install(|| {
            run_chunks(&current_state(), 32, &|_| {
                n.fetch_add(1, Ordering::SeqCst);
            })
        });
        drop(p);
        assert_eq!(n.into_inner(), 32);
    }

    /// Stress: repeated concurrent drives with panics mixed in. Run with
    /// `cargo test --release -p rayon -- --ignored` (CI's race-shaking
    /// job); iteration count scales via RAYON_STRESS_ITERS.
    #[test]
    #[ignore = "stress test: run explicitly with -- --ignored"]
    fn stress_chunked_drives() {
        let iters: usize = std::env::var("RAYON_STRESS_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000);
        let p = pool(8);
        for i in 0..iters {
            let chunks = 1 + i % 97;
            assert_eq!(drive_counts(&p, chunks), vec![1; chunks]);
            if i % 5 == 0 {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    p.install(|| {
                        run_chunks(&current_state(), chunks, &|c| {
                            if c == chunks / 2 {
                                panic!("boom");
                            }
                        })
                    })
                }));
                assert!(r.is_err());
            }
        }
    }
}
