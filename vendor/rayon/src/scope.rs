//! Fork–join primitives: [`join`] and [`scope`]/[`Scope::spawn`].
//!
//! Both follow the pool's help-first waiting discipline: a thread waiting
//! for its sibling closure or its spawned tasks executes other queued
//! jobs meanwhile, so arbitrarily nested fork–join structures cannot
//! deadlock. Panics in either branch (or any spawned task) propagate to
//! the forking caller after all of its obligations have finished.

use crate::pool::{current_state, JobRef, PoolState};
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, UnsafeCell};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};

/// Ordering of the `done` publication store in `StackJob`. Normally
/// `SeqCst`; the loom-only seeded mutation "weaken-done-store" drops it
/// to `Relaxed`, which the model-check suite must flag as a data race on
/// the result cell — CI runs that to prove the suite has teeth.
fn done_store_ordering() -> Ordering {
    #[cfg(loom)]
    if crate::sync::mutation("weaken-done-store") {
        return Ordering::Relaxed;
    }
    Ordering::SeqCst
}

fn store_first_panic(slot: &Mutex<Option<Box<dyn Any + Send>>>, payload: Box<dyn Any + Send>) {
    slot.lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert(payload);
}

/// A closure job living on the forking thread's stack while a `join`
/// waits for it.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
    state: Arc<PoolState>,
}

// SAFETY: access is serialized by the job protocol — the executor writes
// func/result before setting `done`; the owner reads them only after.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// # Safety
    ///
    /// `data` must point to a live `StackJob` and be executed at most
    /// once (guaranteed by `join` waiting on `done`).
    unsafe fn execute_shim(data: *const ()) {
        // SAFETY: `join` keeps the StackJob frame alive until the `done`
        // store below, and pushes exactly one JobRef for it.
        let job = unsafe { &*(data as *const Self) };
        let func = job
            .func
            .with_mut(|f| {
                // SAFETY: the executor owns `func` until it publishes
                // `done`; the forking thread never touches it after push.
                unsafe { (*f).take() }
            })
            .expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        job.result.with_mut(|r| {
            // SAFETY: same protocol — exclusive until the `done` store.
            unsafe { *r = Some(result) }
        });
        // Setting `done` lets the forking thread return from `join` and
        // pop the stack frame holding this job — clone the pool handle
        // out first and never touch `job` after the store.
        let state = Arc::clone(&job.state);
        job.done.store(true, done_store_ordering());
        state.notify_all();
    }
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Either closure's panic resumes on the caller once both have
/// finished.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let state = current_state();
    if state.threads() <= 1 {
        return (oper_a(), oper_b());
    }
    let job = StackJob::<B, RB> {
        func: UnsafeCell::new(Some(oper_b)),
        result: UnsafeCell::new(None),
        done: AtomicBool::new(false),
        state: Arc::clone(&state),
    };
    // SAFETY: `wait_until(done)` below keeps this frame alive until the
    // job has executed, and the shim runs exactly once.
    state.push_jobs([unsafe {
        JobRef::new(
            &job as *const StackJob<B, RB> as *const (),
            StackJob::<B, RB>::execute_shim,
        )
    }]);
    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));
    state.wait_until(&|| job.done.load(Ordering::SeqCst));
    let rb = job
        .result
        .with_mut(|r| {
            // SAFETY: `done` was set with SeqCst after the result write,
            // and the executor never touches the job after that store.
            unsafe { (*r).take() }
        })
        .expect("sibling finished");
    match (ra, rb) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(p), _) => panic::resume_unwind(p),
        (_, Err(p)) => panic::resume_unwind(p),
    }
}

/// A fork–join scope: tasks spawned on it may borrow from the enclosing
/// stack frame (`'scope`), and [`scope`] does not return until all of
/// them (including transitively spawned ones) have finished.
pub struct Scope<'scope> {
    state: Arc<PoolState>,
    /// Spawned tasks not yet finished.
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over 'scope, like rayon's.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

struct HeapJob<'scope> {
    func: Box<dyn FnOnce() + Send + 'scope>,
    scope: *const Scope<'scope>,
}

/// Send-able wrapper for the scope pointer captured by spawned closures.
struct ScopePtr<'scope>(*const Scope<'scope>);
// SAFETY: the pointee outlives every spawned task (see [`scope`]), and
// the `Scope` API itself is `&self`-threadsafe.
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Method receiver forces closures to capture the whole Send wrapper
    /// rather than disjointly capturing the raw-pointer field.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

/// # Safety
///
/// `data` must come from `Box::into_raw` on a `HeapJob` and be executed
/// exactly once, while its scope is still alive.
unsafe fn heap_job_shim(data: *const ()) {
    // SAFETY: constructed from Box::into_raw in `spawn`; executed once.
    let job: Box<HeapJob<'_>> = unsafe { Box::from_raw(data as *mut HeapJob<'_>) };
    // SAFETY: the scope outlives execution because `scope()` waits for
    // pending=0, which this shim decrements only at the very end.
    let scope = unsafe { &*job.scope };
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job.func)) {
        store_first_panic(&scope.panic, payload);
    }
    // Draining `pending` lets `scope()` return and drop the Scope —
    // clone the pool handle out first and never touch `scope` after the
    // decrement.
    let state = Arc::clone(&scope.state);
    scope.pending.fetch_sub(1, Ordering::SeqCst);
    state.notify_all();
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` to run on the pool (inline when the pool is
    /// sequential). The closure may borrow anything that outlives the
    /// scope and may spawn further tasks on it.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.state.threads() <= 1 {
            body(self);
            return;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let this = ScopePtr(self as *const Scope<'scope>);
        let scope_ptr = this.0;
        let job = Box::new(HeapJob {
            // SAFETY: the scope outlives every spawned task (`scope()`
            // waits for pending=0), so the pointer stays valid.
            func: Box::new(move || body(unsafe { &*this.get() })),
            scope: scope_ptr,
        });
        let data = Box::into_raw(job) as *const ();
        // SAFETY: `scope()` waits for `pending == 0` before returning, so
        // the erased 'scope borrows stay valid for the job's lifetime.
        let job_ref = unsafe { JobRef::new(data, heap_job_shim) };
        self.state.push_jobs([job_ref]);
    }
}

/// Creates a scope, runs `f` on it, and waits for every spawned task.
/// The first panic (from `f` itself first, else from the earliest-failing
/// spawned task) resumes on the caller after all tasks finished.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = current_state();
    let s = Scope {
        state: Arc::clone(&state),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    state.wait_until(&|| s.pending.load(Ordering::SeqCst) == 0);
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = s.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn join_computes_both_branches() {
        for threads in [1, 2, 4] {
            let p = ThreadPool::new(threads);
            assert_eq!(p.install(|| fib(16)), 987, "threads={threads}");
        }
    }

    #[test]
    fn join_moves_results() {
        let p = ThreadPool::new(3);
        let (a, b) = p.install(|| join(|| vec![1, 2], || "hi".to_string()));
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, "hi");
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        let p = ThreadPool::new(4);
        for side in 0..2 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                p.install(|| {
                    join(
                        || {
                            if side == 0 {
                                panic!("left")
                            }
                        },
                        || {
                            if side == 1 {
                                panic!("right")
                            }
                        },
                    )
                })
            }));
            assert!(r.is_err(), "side {side}");
        }
    }

    #[test]
    fn scope_waits_for_all_spawns() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 2, 4] {
            let p = ThreadPool::new(threads);
            let count = AtomicUsize::new(0);
            p.install(|| {
                scope(|s| {
                    for _ in 0..20 {
                        s.spawn(|inner| {
                            count.fetch_add(1, Ordering::SeqCst);
                            inner.spawn(|_| {
                                count.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            });
            assert_eq!(count.into_inner(), 40, "threads={threads}");
        }
    }

    #[test]
    fn scope_spawns_may_borrow_stack_data() {
        let p = ThreadPool::new(4);
        let data = [1u64, 2, 3, 4];
        let sums: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        p.install(|| {
            scope(|s| {
                for (i, x) in data.iter().enumerate() {
                    let slot = &sums[i];
                    s.spawn(move |_| {
                        slot.store(*x as usize * 10, Ordering::SeqCst);
                    });
                }
            });
        });
        let got: Vec<usize> = sums.into_iter().map(|a| a.into_inner()).collect();
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        let p = ThreadPool::new(4);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("task failed"));
                });
            })
        }));
        assert!(r.is_err());
    }

    /// Stress: deep nested joins under a small pool, shaking out lost
    /// wakeups and helping bugs. Run via `-- --ignored`.
    #[test]
    #[ignore = "stress test: run explicitly with -- --ignored"]
    fn stress_nested_joins() {
        let iters: u64 = std::env::var("RAYON_STRESS_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000);
        let p = ThreadPool::new(4);
        for i in 0..iters {
            let n = 10 + (i % 8);
            let expect = fib_seq(n);
            assert_eq!(p.install(|| fib(n)), expect);
        }
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }
}
