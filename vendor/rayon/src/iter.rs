//! Parallel iterators over indexed sources.
//!
//! # Model
//!
//! Everything here is an *indexed* parallel iterator: a [`ParallelSource`]
//! knows its exact length and can produce the item at any index
//! independently of every other index. That model covers this workspace's
//! entire usage (slices, vecs, ranges, and `map`/`zip`/`enumerate`
//! towers) and makes determinism structural:
//!
//! * **Order-preserving `collect`** — item `i` is written to output slot
//!   `i`, so the result is identical under any scheduling.
//! * **Fixed-shape reductions** — `sum`/`reduce` split the index space
//!   into chunks whose boundaries depend only on the length (never on the
//!   thread count), compute per-chunk partials, and combine them in chunk
//!   order. Floating-point results are therefore bit-identical at every
//!   thread count, including the 1-thread inline path (which uses the
//!   same chunk shape).
//!
//! # Caveats (vendored stand-in, not full rayon)
//!
//! * Only indexed sources are supported; `filter`/`flat_map`-style
//!   length-changing adapters are not provided.
//! * `zip` of different-length `into_par_iter` vectors leaks (does not
//!   drop) the longer tail's elements; zip equal lengths.
//! * If a closure panics mid-drive, items already produced into a
//!   pending `collect` are leaked, never double-dropped.

use crate::pool::{current_state, run_chunks};
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;

/// Chunk-shape policy for every drive: aim for a fixed number of chunks
/// so the reduction tree depends only on the length.
const TARGET_CHUNKS: usize = 64;

fn chunk_len(len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(1)
}

/// A fixed-length source whose items can be produced by index, in any
/// order, from any thread.
///
/// # Safety
///
/// Implementations may hand out `&mut` references or move values out, so
/// callers must produce each index in `0..len()` **at most once** across
/// all threads. The drive functions in this module uphold this by
/// partitioning the index space into disjoint chunks.
pub unsafe trait ParallelSource: Sync {
    /// The produced item.
    type Item: Send;
    /// Exact number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produces the item at `index`.
    ///
    /// # Safety
    ///
    /// `index < len()`, and each index is produced at most once.
    unsafe fn produce(&self, index: usize) -> Self::Item;
}

/// Raw pointer wrapper that may cross threads; used for disjoint
/// index-addressed writes into preallocated buffers.
struct SharedPtr<T>(*mut T);
// SAFETY: the wrapper is only used for disjoint index-addressed writes
// into buffers the driving frame owns; T: Send covers the item transfer.
unsafe impl<T: Send> Send for SharedPtr<T> {}
// SAFETY: as above — concurrent `at` calls target disjoint slots.
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Slot pointer at `index`. Taking `&self` (not the field) keeps
    /// closures capturing the whole Sync wrapper, not the raw pointer.
    fn at(&self, index: usize) -> *mut T {
        // SAFETY: callers stay within the allocated capacity.
        unsafe { self.0.add(index) }
    }
}

/// Drives `src`, writing item `i` into `out[i]`, and returns the filled
/// vector. Order-preserving and deterministic under any scheduling.
fn collect_vec<S: ParallelSource>(src: S) -> Vec<S::Item> {
    let n = src.len();
    let mut out: Vec<S::Item> = Vec::with_capacity(n);
    let base = SharedPtr(out.as_mut_ptr());
    let chunk = chunk_len(n);
    let chunks = n.div_ceil(chunk.max(1));
    run_chunks(&current_state(), chunks, &|c| {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        for i in start..end {
            // SAFETY: chunks partition 0..n, so each slot is written once;
            // the buffer has capacity n.
            unsafe { base.at(i).write(src.produce(i)) };
        }
    });
    // SAFETY: all n slots were initialized (a panic would have propagated
    // out of run_chunks before reaching here).
    unsafe { out.set_len(n) };
    out
}

/// Per-chunk partials in chunk order. The chunk shape depends only on the
/// length, so the partial sequence is identical at every thread count.
fn chunk_partials<S, T>(src: &S, fold_chunk: &(dyn Fn(Range<usize>) -> T + Sync)) -> Vec<T>
where
    S: ParallelSource,
    T: Send,
{
    let n = src.len();
    let chunk = chunk_len(n);
    let chunks = n.div_ceil(chunk.max(1));
    let mut partials: Vec<T> = Vec::with_capacity(chunks);
    let base = SharedPtr(partials.as_mut_ptr());
    run_chunks(&current_state(), chunks, &|c| {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        // SAFETY: one write per chunk index, capacity `chunks`.
        unsafe { base.at(c).write(fold_chunk(start..end)) };
    });
    // SAFETY: every chunk slot was written (panics propagate out of
    // run_chunks before this point).
    unsafe { partials.set_len(chunks) };
    partials
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The iterator's item.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Identity conversion: every parallel iterator converts to itself, so
/// adapters can be passed wherever `IntoParallelIterator` is expected
/// (e.g. as the `zip` argument).
impl<I: ParallelSource + Sized> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// Borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator's item (a shared reference).
    type Item: Send + 'data;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Mutably borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator's item (a mutable reference).
    type Item: Send + 'data;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self` from the iterator, preserving index order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>,
    {
        collect_vec(iter)
    }
}

/// The user-facing combinator surface. Implemented for every
/// [`ParallelSource`]; method semantics mirror `rayon`.
pub trait ParallelIterator: ParallelSource + Sized {
    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs items with equal indices of `other`; the length is the
    /// shorter of the two.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Calls `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let n = self.len();
        let chunk = chunk_len(n);
        let chunks = n.div_ceil(chunk.max(1));
        run_chunks(&current_state(), chunks, &|c| {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            for i in start..end {
                // SAFETY: chunks partition the index space.
                f(unsafe { self.produce(i) });
            }
        });
    }

    /// Collects into `C` preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items with a fixed-shape reduction tree: per-chunk
    /// sequential sums combined in chunk order — bit-identical at every
    /// thread count.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials = chunk_partials(&self, &|range| {
            // SAFETY: ranges partition the index space.
            range.map(|i| unsafe { self.produce(i) }).sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Reduces with `op` from `identity`, with the same fixed-shape
    /// chunk tree as [`ParallelIterator::sum`].
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let partials = chunk_partials(&self, &|range| {
            range
                // SAFETY: ranges partition the index space.
                .map(|i| unsafe { self.produce(i) })
                .fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }
}

impl<T: ParallelSource + Sized> ParallelIterator for T {}

/// Alias used by rayon for length-aware iterators; here every iterator is
/// indexed, so the traits coincide.
pub use self::ParallelIterator as IndexedParallelIterator;

// ── Sources ────────────────────────────────────────────────────────────

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

// SAFETY: shared references may be produced any number of times; `len`
// is exact.
unsafe impl<'data, T: Sync> ParallelSource for SliceIter<'data, T> {
    type Item = &'data T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: the trait contract bounds `index < len()`.
        unsafe { self.slice.get_unchecked(index) }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    marker: PhantomData<&'data mut [T]>,
}

// SAFETY: disjoint-index production hands out aliasing-free &mut.
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

// SAFETY: `len` is exact; the at-most-once-per-index contract makes the
// produced &mut references non-aliasing.
unsafe impl<'data, T: Send> ParallelSource for SliceIterMut<'data, T> {
    type Item = &'data mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: `index < len()` keeps the pointer in bounds, and the
        // at-most-once contract prevents aliasing &mut to the same slot.
        unsafe { &mut *self.ptr.add(index) }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut [T] {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            marker: PhantomData,
        }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        self.as_mut_slice().into_par_iter()
    }
}

/// Consuming parallel iterator over `Vec<T>`: items are moved out by
/// index; the buffer is freed (without dropping moved-out elements) when
/// the iterator drops.
pub struct VecIter<T> {
    vec: ManuallyDrop<Vec<T>>,
}

// SAFETY: items are moved out under the disjoint-index contract; T: Send
// is all that crossing threads requires.
unsafe impl<T: Send> Sync for VecIter<T> {}

// SAFETY: `len` is exact; the at-most-once-per-index contract prevents
// double-reading (double-dropping) any element.
unsafe impl<T: Send> ParallelSource for VecIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.vec.len()
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: `index < len()` is in bounds, and the at-most-once
        // contract means each element is moved out no more than once.
        unsafe { std::ptr::read(self.vec.as_ptr().add(index)) }
    }
}

impl<T> Drop for VecIter<T> {
    fn drop(&mut self) {
        // SAFETY: frees the buffer without dropping elements — produced
        // ones moved out; unproduced ones (drive panicked mid-way) are
        // leaked rather than risking a double drop.
        unsafe {
            self.vec.set_len(0);
            ManuallyDrop::drop(&mut self.vec);
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecIter {
            vec: ManuallyDrop::new(self),
        }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($t:ty) => {
        // SAFETY: `len` is exact and `produce` is pure arithmetic with no
        // interior state, so any index discipline is trivially sound.
        unsafe impl ParallelSource for RangeIter<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            unsafe fn produce(&self, index: usize) -> Self::Item {
                self.start + index as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter {
                    start: self.start,
                    len,
                }
            }
        }
    };
}

range_source!(usize);
range_source!(u32);
range_source!(u64);

// ── Adapters ───────────────────────────────────────────────────────────

/// See [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

// SAFETY: `len` delegates to the base source and the at-most-once index
// discipline is forwarded unchanged, so the base's contract is upheld.
unsafe impl<S, F, R> ParallelSource for Map<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: the caller's obligations (index < len, at most once per
        // index) are exactly the base source's obligations.
        (self.f)(unsafe { self.base.produce(index) })
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

// SAFETY: `len` is the min of the two sources, so a valid index for the
// zip is valid for both; the at-most-once discipline is forwarded to each.
unsafe impl<A, B> ParallelSource for Zip<A, B>
where
    A: ParallelSource,
    B: ParallelSource,
{
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: index < min(a.len, b.len) ≤ each source's len, and each
        // source sees the index at most once.
        (unsafe { self.a.produce(index) }, unsafe {
            self.b.produce(index)
        })
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<S> {
    base: S,
}

// SAFETY: `len` delegates to the base source and the index discipline is
// forwarded unchanged.
unsafe impl<S: ParallelSource> ParallelSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn produce(&self, index: usize) -> Self::Item {
        // SAFETY: the caller's obligations are exactly the base's.
        (index, unsafe { self.base.produce(index) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn par_iter_mut_zip_enumerate_collect_preserves_order() {
        let mut states = vec![0u64; 5];
        let inboxes: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64]).collect();
        let out: Vec<(usize, u64)> = states
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .enumerate()
            .map(|(id, (st, inbox))| {
                *st = inbox[0] * 10;
                (id, *st)
            })
            .collect();
        assert_eq!(out, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(states, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn par_iter_on_slice_and_vec() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 12);
        let s2: i32 = v[..].par_iter().sum();
        assert_eq!(s2, 6);
    }

    #[test]
    fn collect_is_order_preserving_at_any_thread_count() {
        let n = 10_000usize;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 5, 8] {
            let p = ThreadPool::new(threads);
            let got: Vec<usize> = p.install(|| (0..n).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Heterogeneous magnitudes so any reassociation changes the bits.
        let xs: Vec<f64> = (0..50_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1_000_003) as f64 * 1e-7 + 1e3)
            .collect();
        let baseline: f64 = ThreadPool::new(1).install(|| xs.par_iter().map(|x| x * 1.5).sum());
        for threads in [2, 3, 8] {
            let p = ThreadPool::new(threads);
            let s: f64 = p.install(|| xs.par_iter().map(|x| x * 1.5).sum());
            assert_eq!(s.to_bits(), baseline.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn reduce_uses_fixed_shape() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sqrt()).collect();
        let one = ThreadPool::new(1).install(|| {
            xs.par_iter()
                .map(|&x| x)
                .reduce(|| 0.0f64, |a, b| a * 0.5 + b)
        });
        let four = ThreadPool::new(4).install(|| {
            xs.par_iter()
                .map(|&x| x)
                .reduce(|| 0.0f64, |a, b| a * 0.5 + b)
        });
        assert_eq!(one.to_bits(), four.to_bits());
    }

    #[test]
    fn vec_into_par_iter_moves_and_frees() {
        let v: Vec<String> = (0..500).map(|i| format!("s{i}")).collect();
        let p = ThreadPool::new(4);
        let lens: Vec<usize> = p.install(|| v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 500);
        assert_eq!(lens[0], 2);
        assert_eq!(lens[499], 4);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..3000).map(|_| AtomicUsize::new(0)).collect();
        let p = ThreadPool::new(6);
        p.install(|| {
            (0..3000usize).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_sources_work() {
        let v: Vec<u32> = Vec::new();
        let s: u32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0);
        let out: Vec<u32> = (0u32..0).into_par_iter().collect();
        assert!(out.is_empty());
    }

    #[test]
    fn map_panic_propagates() {
        let p = ThreadPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..1000usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 617 {
                            panic!("bad item");
                        }
                        i
                    })
                    .collect::<Vec<_>>()
            })
        }));
        assert!(r.is_err());
    }

    /// Stress: collect/sum storms across pools; run via `-- --ignored`.
    #[test]
    #[ignore = "stress test: run explicitly with -- --ignored"]
    fn stress_collect_and_sum() {
        let iters: usize = std::env::var("RAYON_STRESS_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(500);
        let p = ThreadPool::new(8);
        let xs: Vec<u64> = (0..40_000).collect();
        let expect_sum: u64 = xs.iter().sum();
        for i in 0..iters {
            let s: u64 = p.install(|| xs.par_iter().map(|&x| x).sum());
            assert_eq!(s, expect_sum, "iter {i}");
            let doubled: Vec<u64> = p.install(|| xs.par_iter().map(|&x| x * 2).collect());
            assert_eq!(doubled[12345], 24690);
        }
    }
}
