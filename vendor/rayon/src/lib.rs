//! Offline stand-in for `rayon` — a real work-stealing host executor.
//!
//! # Contract
//!
//! This crate replaces the former sequential shim with a genuine
//! multi-threaded pool built on `std::thread` + `std::sync`:
//!
//! * **Pool** (`pool.rs`) — a persistent pool of `T` logical threads
//!   (`T - 1` spawned workers plus the driving caller), each worker with
//!   its own deque (own work popped LIFO from the back, stolen FIFO from
//!   the front). Waiting threads help-execute queued jobs, so nested
//!   parallelism cannot deadlock. `T` comes from
//!   [`ThreadPoolBuilder::num_threads`], else `RAYON_NUM_THREADS`, else
//!   the hardware parallelism; `T = 1` executes strictly inline with no
//!   worker threads.
//! * **Fork–join** (`scope.rs`) — [`join`] and
//!   [`scope`]/[`Scope::spawn`] with panic propagation to the forking
//!   caller.
//! * **Parallel iterators** ([`iter`]) — indexed sources (slices, vecs,
//!   ranges) with `map`/`zip`/`enumerate` adapters and
//!   `collect`/`for_each`/`sum`/`reduce` consumers, driven by chunked
//!   index-range splitting over the pool.
//!
//! # Determinism guarantee
//!
//! Results are **bit-identical at every thread count** (including 1) and
//! across runs: `collect` writes item `i` to slot `i`; `sum`/`reduce`
//! use a reduction tree whose shape depends only on the input length,
//! never on the thread count or scheduling. The MPC simulator's model
//! costs (rounds/traffic/memory) were already independent of host
//! threading; with this pool its host wall-clock now scales with cores
//! while every simulated quantity stays exactly reproducible.
//!
//! # Differences from real rayon
//!
//! Only the API surface this workspace uses is provided (see `iter.rs`
//! for caveats). Swapping in the real crate remains a one-line change in
//! the root manifest's `[workspace.dependencies]`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod iter;
mod pool;
mod scope;
mod sync;

pub use pool::{current_num_threads, GlobalPoolAlreadyInitialized, ThreadPool, ThreadPoolBuilder};
pub use scope::{join, scope, Scope};

/// The traits a caller needs in scope to use `par_iter` & friends,
/// mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}
