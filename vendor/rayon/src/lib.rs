//! Offline stand-in for `rayon`.
//!
//! Exposes the `par_iter` / `par_iter_mut` / `into_par_iter` entry points
//! as plain sequential `std` iterators, so all downstream combinators
//! (`zip`, `enumerate`, `map`, `collect`, …) are ordinary `Iterator`
//! methods. Results are bit-identical to a real rayon run for the usage
//! in this workspace (order-preserving indexed collects); only host
//! wall-clock parallelism is lost, never model-level semantics. The MPC
//! simulator charges model costs independently of host threading, so this
//! substitution is observationally equivalent apart from speed.

/// Consuming conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutably borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Number of host worker threads. The sequential stand-in always runs on
/// the calling thread.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_zip_enumerate_collect_preserves_order() {
        let mut states = vec![0u64; 5];
        let inboxes: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64]).collect();
        let out: Vec<(usize, u64)> = states
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .enumerate()
            .map(|(id, (st, inbox))| {
                *st = inbox[0] * 10;
                (id, *st)
            })
            .collect();
        assert_eq!(out, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(states, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn par_iter_on_slice_and_vec() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 12);
        let s2: i32 = v[..].par_iter().sum();
        assert_eq!(s2, 6);
    }
}
