//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property suites
//! use: the [`proptest!`] macro with `#![proptest_config(..)]`, range /
//! tuple / [`Just`] strategies, `prop_map` / `prop_flat_map` combinators,
//! [`collection::vec`], and the `prop_assert*` macros. Each test runs its
//! strategies over `cases` deterministic samples (seeded from the test
//! name, so runs are reproducible and thread-count independent) and
//! panics with the case number and failure message on the first failing
//! case. Shrinking is intentionally not implemented: failures report the
//! un-shrunk sample.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The deterministic sample source handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Derives a generator from the test's name, so each property gets an
    /// independent but stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Error type carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` samples of
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the rest of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(
                    let $pat = {
                        let strategy = $strategy;
                        $crate::Strategy::new_value(&strategy, &mut rng)
                    };
                )+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e.message()
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 0.5f64..2.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.5..2.0).contains(&c));
        }

        #[test]
        fn vec_and_flat_map(
            (n, xs) in (2usize..20).prop_flat_map(|n| {
                (Just(n), collection::vec(0..n as u32, 0..50))
            })
        ) {
            prop_assert!(n >= 2);
            for x in xs {
                prop_assert!((x as usize) < n);
            }
        }

        #[test]
        fn early_ok_return_works(x in 0u64..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |label: &str| {
            let mut rng = crate::TestRng::for_test(label);
            let s = collection::vec(0u64..1000, 3..6);
            Strategy::new_value(&s, &mut rng)
        };
        assert_eq!(sample("t"), sample("t"));
        assert_ne!(sample("t"), sample("u"));
    }
}
