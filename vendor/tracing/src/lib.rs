//! Offline stand-in for `tracing`: structured spans and events with
//! static callsite metadata, severity levels, and a single pluggable
//! process-wide [`Subscriber`].
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when compiled out.** With the `enabled` feature off,
//!    [`span!`] and [`event!`] expand to an uncalled closure that merely
//!    borrows their arguments — nothing is evaluated, nothing is
//!    reachable at runtime, and the binary carries no callsite metadata.
//! 2. **Allocation-free when compiled in.** Callsite metadata is a
//!    `static`; event fields are `(&'static str, u64)` pairs in a stack
//!    array; dispatch is one atomic load plus a branch when no
//!    subscriber is installed. The hot paths of the MPC fabric call
//!    these macros inside modules whose steady-state rounds are pinned
//!    to zero heap allocations, so nothing here may allocate.
//! 3. **Deterministic.** The crate itself never reads clocks or random
//!    state; any notion of time lives in the subscriber, keeping
//!    model-domain instrumentation bit-reproducible.
//!
//! Unlike the real `tracing`, fields are integers only (`u64`): that is
//! all the simulator needs (words, rounds, machine ids), and it is what
//! makes the no-allocation guarantee easy to audit.

use std::fmt;
use std::sync::OnceLock;

/// Severity of a span or event, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Finest-grained hot-path detail (per-route, per-spill).
    Trace,
    /// Diagnostic detail useful when debugging a subsystem.
    Debug,
    /// High-level progress (rounds, segments, phases).
    Info,
    /// Something surprising but recoverable.
    Warn,
    /// A failure the caller is about to surface.
    Error,
}

impl Level {
    /// The canonical uppercase name (`"TRACE"`, ..., `"ERROR"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of one callsite, baked into the binary by the
/// [`span!`] / [`event!`] macros. Subscribers receive a `&'static`
/// reference, so the pointer itself is a cheap unique callsite id.
#[derive(Debug)]
pub struct Metadata {
    /// The span or event name (a string literal at the callsite).
    pub name: &'static str,
    /// The enclosing module path (`module_path!` at the callsite).
    pub target: &'static str,
    /// Severity of the callsite.
    pub level: Level,
    /// Source file of the callsite.
    pub file: &'static str,
    /// Source line of the callsite.
    pub line: u32,
}

/// A sink for spans and events. Implementations must not assume they
/// are called from any particular thread: the fabric emits events from
/// worker threads inside `rayon` scopes.
///
/// Subscribers on the simulator's hot paths must not allocate — the
/// zero-allocation counting-allocator tests install one and pin exactly
/// that.
pub trait Subscriber: Sync {
    /// Level/target filter consulted before `enter`/`event`. The default
    /// accepts everything.
    fn enabled(&self, meta: &'static Metadata) -> bool {
        let _ = meta;
        true
    }

    /// A span was entered (guard construction).
    fn enter(&self, meta: &'static Metadata);

    /// A span was exited (guard drop).
    fn exit(&self, meta: &'static Metadata);

    /// An event fired with the given integer fields.
    fn event(&self, meta: &'static Metadata, fields: &[(&'static str, u64)]);
}

/// The process-wide subscriber slot. `OnceLock` gives the lock-free
/// read path: `get` is one atomic acquire load.
static SUBSCRIBER: OnceLock<&'static dyn Subscriber> = OnceLock::new();

/// Error returned by [`set_subscriber`] when a subscriber was already
/// installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetSubscriberError;

impl fmt::Display for SetSubscriberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global subscriber is already installed")
    }
}

impl std::error::Error for SetSubscriberError {}

/// Installs the process-wide subscriber. At most one ever wins; later
/// calls fail and leave the first installed (there is deliberately no
/// uninstall, so `&'static` borrows held by guards stay valid forever).
pub fn set_subscriber(sub: &'static dyn Subscriber) -> Result<(), SetSubscriberError> {
    SUBSCRIBER.set(sub).map_err(|_| SetSubscriberError)
}

/// The installed subscriber, if any. This is the branch every macro
/// takes first: `None` is the common fast path.
pub fn subscriber() -> Option<&'static dyn Subscriber> {
    SUBSCRIBER.get().copied()
}

/// RAII guard returned by [`span!`]: exits the span on drop. A guard
/// with no metadata (no subscriber at entry, or the compiled-out path)
/// does nothing on drop.
#[must_use = "a span is exited when its guard drops; binding to `_` exits immediately"]
pub struct SpanGuard {
    meta: Option<&'static Metadata>,
}

impl SpanGuard {
    /// A guard that never notifies anyone — the disabled/filtered path.
    pub fn disabled() -> Self {
        SpanGuard { meta: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(meta) = self.meta {
            if let Some(sub) = subscriber() {
                sub.exit(meta);
            }
        }
    }
}

/// Enters a span at `meta` if a subscriber is installed and accepts it.
/// Callers normally go through [`span!`], which supplies the static
/// metadata.
pub fn enter_span(meta: &'static Metadata) -> SpanGuard {
    match subscriber() {
        Some(sub) if sub.enabled(meta) => {
            sub.enter(meta);
            SpanGuard { meta: Some(meta) }
        }
        _ => SpanGuard { meta: None },
    }
}

/// Dispatches an event if a subscriber is installed and accepts it.
/// Callers normally go through [`event!`].
pub fn dispatch_event(meta: &'static Metadata, fields: &[(&'static str, u64)]) {
    if let Some(sub) = subscriber() {
        if sub.enabled(meta) {
            sub.event(meta, fields);
        }
    }
}

/// Opens a span: `let _span = span!(Level::Info, "round");`. Returns a
/// [`SpanGuard`] that exits the span when dropped. With the `enabled`
/// feature off this evaluates nothing and returns an inert guard.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(,)?) => {{
        static __CALLSITE: $crate::Metadata = $crate::Metadata {
            name: $name,
            target: ::core::module_path!(),
            level: $level,
            file: ::core::file!(),
            line: ::core::line!(),
        };
        $crate::enter_span(&__CALLSITE)
    }};
}

/// Compiled-out twin of [`span!`]: borrows its arguments inside an
/// uncalled closure (so they stay used and type-checked) and returns an
/// inert guard. No metadata is emitted, nothing runs.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(,)?) => {{
        let _ = || {
            let _ = &$level;
            let _ = &$name;
        };
        $crate::SpanGuard::disabled()
    }};
}

/// Emits an event with integer fields:
/// `event!(Level::Trace, "route", round = r, words = w);`. Field values
/// are cast `as u64`. With the `enabled` feature off this evaluates
/// nothing.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        static __CALLSITE: $crate::Metadata = $crate::Metadata {
            name: $name,
            target: ::core::module_path!(),
            level: $level,
            file: ::core::file!(),
            line: ::core::line!(),
        };
        $crate::dispatch_event(
            &__CALLSITE,
            &[$((::core::stringify!($key), ($value) as u64)),*],
        );
    }};
}

/// Compiled-out twin of [`event!`]: borrows its arguments inside an
/// uncalled closure — field expressions are never evaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let _ = || {
            let _ = &$level;
            let _ = &$name;
            $(let _ = &$value;)*
        };
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_render() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Info.as_str(), "INFO");
        assert_eq!(format!("{}", Level::Error), "ERROR");
    }

    // Subscriber-installation behavior lives in the integration tests
    // (`tests/subscriber.rs` and `tests/no_subscriber.rs`): the global
    // slot is process-wide, so each installation scenario needs its own
    // test binary.

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_macros_evaluate_nothing() {
        let mut calls = 0u32;
        let mut bump = || {
            calls += 1;
            0u64
        };
        event!(Level::Info, "off", value = bump());
        let _span = span!(Level::Info, "off");
        assert_eq!(calls, 0, "disabled event! must not evaluate its fields");
    }
}
