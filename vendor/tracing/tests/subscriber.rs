//! Subscriber dispatch: spans enter/exit, events deliver their static
//! metadata and integer fields, the `enabled` filter is honored, and
//! the global slot is install-once. Own test binary = own process, so
//! this test owns the global subscriber.
#![cfg(feature = "enabled")]

use std::sync::atomic::{AtomicU64, Ordering};
use tracing::{event, set_subscriber, span, Level, Metadata, Subscriber};

struct Counting {
    enters: AtomicU64,
    exits: AtomicU64,
    events: AtomicU64,
    field_sum: AtomicU64,
}

impl Subscriber for Counting {
    fn enabled(&self, meta: &'static Metadata) -> bool {
        meta.level >= Level::Info
    }

    fn enter(&self, meta: &'static Metadata) {
        assert_eq!(meta.name, "round");
        self.enters.fetch_add(1, Ordering::Relaxed);
    }

    fn exit(&self, meta: &'static Metadata) {
        assert_eq!(meta.name, "round");
        self.exits.fetch_add(1, Ordering::Relaxed);
    }

    fn event(&self, meta: &'static Metadata, fields: &[(&'static str, u64)]) {
        assert_eq!(meta.name, "route");
        assert_eq!(meta.level, Level::Info);
        assert!(
            meta.file.ends_with("subscriber.rs"),
            "callsite file: {}",
            meta.file
        );
        assert!(meta.line > 0);
        self.events.fetch_add(1, Ordering::Relaxed);
        for (key, value) in fields {
            assert!(*key == "round" || *key == "words", "unexpected field {key}");
            self.field_sum.fetch_add(*value, Ordering::Relaxed);
        }
    }
}

static SUB: Counting = Counting {
    enters: AtomicU64::new(0),
    exits: AtomicU64::new(0),
    events: AtomicU64::new(0),
    field_sum: AtomicU64::new(0),
};

#[test]
fn spans_and_events_reach_the_subscriber() {
    set_subscriber(&SUB).expect("first install wins");
    assert!(set_subscriber(&SUB).is_err(), "second install must fail");

    {
        let _span = span!(Level::Info, "round");
        event!(Level::Info, "route", round = 3u64, words = 4u64);
        // Below the subscriber's level filter: must not be delivered.
        event!(Level::Trace, "route", round = 100u64);
    }

    assert_eq!(SUB.enters.load(Ordering::Relaxed), 1);
    assert_eq!(
        SUB.exits.load(Ordering::Relaxed),
        1,
        "guard drop must exit the span"
    );
    assert_eq!(
        SUB.events.load(Ordering::Relaxed),
        1,
        "filtered event must not count"
    );
    assert_eq!(SUB.field_sum.load(Ordering::Relaxed), 7);
}
