//! The no-subscriber fast path: with nothing installed, spans and
//! events are inert — safe to fire from any thread, no panics, no
//! observable effect. This runs in its own test binary (own process) so
//! no other test can have installed a global subscriber first.

use tracing::{event, span, subscriber, Level};

#[test]
fn macros_are_inert_without_a_subscriber() {
    assert!(
        subscriber().is_none(),
        "fresh process must have no subscriber"
    );
    for i in 0..4u64 {
        let _span = span!(Level::Info, "round");
        event!(Level::Trace, "route", round = i, words = i * 3);
    }
    // Firing callsites must not have installed anything as a side effect.
    assert!(subscriber().is_none());
}
