//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! and sample-size knobs, `bench_function` / `bench_with_input`,
//! `Bencher::iter`) on top of a deliberately simple harness: each
//! benchmark runs a short warmup, then a fixed number of timed
//! iterations, and prints mean wall-clock per iteration. No statistics,
//! plots, or baselines — enough to smoke-run and compare orders of
//! magnitude offline. Honors `CRITERION_STUB_ITERS` to override the
//! iteration count (set it to 1 for compile-and-run CI smoke checks).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque re-export parity: prevents the optimizer from eliding values.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup round, untimed.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn stub_iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Top-level benchmark registry handle.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: stub_iters(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iters, None, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sample-size knob: accepted for API parity. The stub's iteration
    /// count is controlled by `CRITERION_STUB_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.iters, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.iters, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(id: &str, iters: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {id:<50} {:>12.6} ms/iter{rate}", per_iter * 1e3);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        std::env::set_var("CRITERION_STUB_ITERS", "2");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut count = 0u64;
        group.throughput(Throughput::Elements(10));
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(count >= 2);
    }
}
