//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! Unlike the other vendored stand-ins, the core here is a faithful
//! ChaCha implementation (Bernstein's quarter-round over the standard
//! "expand 32-byte k" state, 8 rounds): the workspace's round-compression
//! algorithms lean on stream independence of seeded generators, so the
//! generator must actually be a PRF and not a toy. Word output order may
//! differ from upstream `rand_chacha`; all workspace determinism tests
//! pin self-consistency, not upstream streams.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 keystream generator seeded from 32 bytes of key material.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Initial block state; words 12..14 hold the 64-bit block counter.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter (words 12, 13).
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants, then the 256-bit key, then
        // counter and nonce zeroed.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_quarter_round_test_vector() {
        // RFC 7539 section 2.1.1 test vector.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        // 40 > 16 words: must have crossed block boundaries without repeats.
        assert_ne!(&first[..16], &first[16..32]);
    }
}
