//! Self-validation of the model checker on classic litmus shapes: the
//! correct variants must pass, and each seeded defect (weakened
//! ordering, missing notify, missing synchronization) must be caught.
//! If these hold, a green `loom_pool` run over in `vendor/rayon` is
//! evidence, not vacuity.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::panic::{self, AssertUnwindSafe};

/// Runs a model expected to fail, swallowing the (intentional) panic
/// noise, and returns the failure message.
fn expect_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    panic::set_hook(prev);
    let payload = result.expect_err("model unexpectedly passed every schedule");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn message_passing_release_acquire_passes() {
    let report = loom::Builder::new().check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale read through acquire"
            );
        }
        t.join().unwrap();
    });
    assert!(!report.truncated);
    assert!(report.schedules >= 3, "explored {}", report.schedules);
}

#[test]
fn message_passing_relaxed_flag_is_caught() {
    // The seeded-mutation shape: same test, flag store weakened from
    // Release to Relaxed — the reader may now see flag=true yet stale
    // data, and the explorer must find that execution.
    let msg = expect_failure(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale read through acquire"
            );
        }
        t.join().unwrap();
    });
    assert!(msg.contains("replay seed"), "message: {msg}");
}

#[test]
fn seqcst_flags_read_latest() {
    // Fully-SeqCst code must not see stale values: dropping the notify
    // equivalence here would make the pool tests explode with false
    // positives.
    let report = loom::Builder::new().check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        t.join().unwrap();
        assert!(flag.load(Ordering::SeqCst), "join must publish the store");
    });
    assert!(!report.truncated);
}

#[test]
fn concurrent_fetch_add_is_atomic() {
    let report = loom::Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(!report.truncated);
}

#[test]
fn mutex_protects_cell() {
    loom::model(|| {
        let cell = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *cell.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*cell.lock().unwrap(), 2);
    });
}

#[test]
fn unsynchronized_cell_race_is_caught() {
    let msg = expect_failure(|| {
        struct Shared(UnsafeCell<u64>);
        // SAFETY: this claim is deliberately WRONG — nothing synchronizes
        // the two writes — and the detector must say so.
        unsafe impl Sync for Shared {}
        // SAFETY: the cell's contents are `Send`; ownership transfer is fine
        // (only the bogus `Sync` claim above is under test).
        unsafe impl Send for Shared {}
        let shared = Arc::new(Shared(UnsafeCell::new(0)));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            s2.0.with_mut(|p| {
                // SAFETY: exclusive access is the property being tested.
                unsafe { *p += 1 }
            });
        });
        shared.0.with_mut(|p| {
            // SAFETY: exclusive access is the property being tested.
            unsafe { *p += 1 }
        });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "message: {msg}");
}

#[test]
fn cell_guarded_by_done_flag_passes() {
    loom::model(|| {
        struct Shared {
            cell: UnsafeCell<u64>,
            done: AtomicBool,
        }
        // SAFETY: the done-flag protocol below serializes access; the
        // checker verifies the claim in every schedule.
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared {
            cell: UnsafeCell::new(0),
            done: AtomicBool::new(false),
        });
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            s2.cell.with_mut(|p| {
                // SAFETY: writer runs before `done` is released.
                unsafe { *p = 7 }
            });
            s2.done.store(true, Ordering::Release);
        });
        if shared.done.load(Ordering::Acquire) {
            let v = shared.cell.with(|p| {
                // SAFETY: acquire on `done` orders this read after the write.
                unsafe { *p }
            });
            assert_eq!(v, 7);
        }
        t.join().unwrap();
    });
}

#[test]
fn lost_condvar_wakeup_is_caught_as_deadlock() {
    // A waiter that nobody notifies: real condvars would be saved by a
    // timeout; the model has none, so this must be reported as deadlock.
    let msg = expect_failure(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            // Flip the flag but "forget" to notify — the mutated-pool shape.
            *p2.0.lock().unwrap() = true;
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "message: {msg}");
}

#[test]
fn condvar_with_notify_passes() {
    let report = loom::Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            *p2.0.lock().unwrap() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(!report.truncated);
}

#[test]
fn ab_ba_lock_order_deadlock_is_caught() {
    let msg = expect_failure(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "message: {msg}");
}

#[test]
fn replay_seed_reruns_the_failing_schedule() {
    // The seed printed on failure, fed back in (LOOM_REPLAY or
    // Builder::replay), must deterministically reproduce the same
    // failure in a single iteration.
    fn racy_increment() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        // Non-atomic increment: some schedule loses an update.
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }
    let msg = expect_failure(racy_increment);
    let seed = msg
        .rsplit("replay seed ")
        .next()
        .and_then(|s| s.strip_suffix(')'))
        .expect("failure message carries a seed")
        .to_string();
    assert!(!seed.is_empty() && seed.chars().all(|c| c.is_ascii_hexdigit()));

    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let replay = panic::catch_unwind(AssertUnwindSafe(|| {
        loom::Builder::new().replay(&seed, racy_increment)
    }));
    panic::set_hook(prev);
    let payload = replay.expect_err("replaying the failing seed must fail again");
    let replay_msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        replay_msg.contains("loom model failed"),
        "message: {replay_msg}"
    );
}

#[test]
fn exhaustive_exploration_counts_schedules() {
    // Two independent single-op threads under a generous bound: the
    // explorer must find more than one schedule and must terminate.
    let report = loom::Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(!report.truncated);
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}
