//! Model-thread spawning and joining, mirroring `std::thread`'s surface.

use crate::rt::{self, Run};
use std::any::Any;
use std::panic;
use std::sync::{Arc, Mutex as HostMutex};

/// Handle to a spawned model thread, compatible with the subset of
/// `std::thread::JoinHandle` the workspace uses.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<HostMutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread. The closure runs under the explorer's schedule
/// control; the backing OS thread is created fresh per iteration, so
/// thread-locals in the checked code start clean every time.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = match rt::register_thread() {
        Some(tid) => tid,
        None => {
            // Thread budget exceeded: the execution is already failed and
            // aborting; tear this thread down.
            panic::panic_any(rt::AbortExecution);
        }
    };
    let slot = Arc::new(HostMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec = rt::current_execution();
    let os = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            rt::thread_main(exec, tid, move || {
                let r = f();
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            })
        })
        .expect("spawn loom model thread");
    JoinHandle {
        tid,
        slot,
        os: Some(os),
    }
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish, then returns its
    /// result — `Err` if it panicked, like `std::thread`. A panicking
    /// model thread also fails the whole execution, so the `Err` arm is
    /// mostly exercised during teardown.
    pub fn join(mut self) -> Result<T, Box<dyn Any + Send + 'static>> {
        let target = self.tid;
        rt::synchronize_blocking(|g, tid| {
            if g.threads[target].run == Run::Finished || g.aborting {
                g.threads[tid].clock.bump(tid);
                let child_clock = g.threads[target].clock;
                g.threads[tid].clock.join(&child_clock);
                Ok(())
            } else {
                g.threads[tid].run = Run::BlockedJoin(target);
                Err(())
            }
        });
        // Join the backing OS thread too (it exits promptly once the
        // model thread is Finished) — but never while unwinding through
        // an abort, where other threads may still be parked.
        if !std::thread::panicking() {
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
        }
        match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("loom model thread panicked")),
        }
    }
}

/// A spin-loop annotation and scheduling point with no memory effect:
/// the calling thread is deprioritized until the other runnable threads
/// have had a chance to run. Busy-wait loops in checked code must call
/// this (or a facade wrapping it) once per spin, or the explorer finds
/// the unfair schedule that runs the spinner forever and reports a
/// livelock.
pub fn yield_now() {
    rt::yield_now();
}
