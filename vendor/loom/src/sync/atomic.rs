//! Model-checked atomics with a C11-approximating weak-memory simulation.
//!
//! Every atomic keeps its full **store history**. A load does not simply
//! return the newest value: the explorer *branches over every visible
//! store* — those not hidden by coherence (a thread never reads older
//! than it already read) or by happens-before. Release stores carry the
//! writer's vector clock; acquire loads that read them join it.
//! `SeqCst` operations additionally join a global `sc_clock` in both
//! directions, which makes fully-`SeqCst` code read the latest values —
//! so weakening an ordering (e.g. `Release` → `Relaxed`) genuinely
//! widens the set of explored outcomes, and stale reads that the
//! weakened code admits are found, not assumed away.
//!
//! Read-modify-write operations always read the coherence-latest store
//! (atomicity) and continue the release sequence of the store they
//! replace, per C11.

pub use std::sync::atomic::Ordering;

use crate::rt::{self, VClock, MAX_LOAD_CANDIDATES};
use std::sync::Mutex as HostMutex;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_sc(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

struct Store {
    value: u64,
    /// Clock acquiring readers synchronize with; `None` for plain
    /// relaxed stores (which also break any release sequence).
    release: Option<VClock>,
    writer: usize,
    /// Writer's own clock component at the store, for happens-before
    /// visibility tests.
    wseq: u32,
}

struct AtomicState {
    stores: Vec<Store>,
    /// Per-thread coherence floor: index of the newest store each thread
    /// has read or written (a thread never goes back before it).
    last_seen: [usize; rt::MAX_THREADS],
}

/// Untyped core shared by all the atomic wrappers; values are widened to
/// `u64`.
struct AtomicCore {
    state: HostMutex<AtomicState>,
}

impl AtomicCore {
    fn new(value: u64) -> AtomicCore {
        // Creation counts as a release store by the creating thread, so
        // every thread that sees the atomic at all may read the initial
        // value, and doing so synchronizes benignly.
        let (writer, wseq, clock) = rt::with_current_quiet(|g, tid| {
            g.threads[tid].clock.bump(tid);
            (tid, g.threads[tid].clock.0[tid], g.threads[tid].clock)
        });
        AtomicCore {
            state: HostMutex::new(AtomicState {
                stores: vec![Store {
                    value,
                    release: Some(clock),
                    writer,
                    wseq,
                }],
                last_seen: [0; rt::MAX_THREADS],
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AtomicState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn load(&self, order: Ordering) -> u64 {
        rt::synchronize(|g, tid| {
            let mut a = self.lock();
            if is_sc(order) {
                let sc = g.sc_clock;
                g.threads[tid].clock.join(&sc);
            }
            g.threads[tid].clock.bump(tid);
            // Happens-before floor: the newest store this thread is
            // guaranteed to see (any store hb-before us hides all older
            // ones).
            let mut floor = 0;
            for (i, s) in a.stores.iter().enumerate().rev() {
                if s.wseq <= g.threads[tid].clock.0[s.writer] {
                    floor = i;
                    break;
                }
            }
            let lo = floor
                .max(a.last_seen[tid])
                .max(a.stores.len().saturating_sub(MAX_LOAD_CANDIDATES));
            // Branch over the candidates, newest first (index 0 = the
            // coherence-latest store, which is the only choice for
            // SeqCst-vs-SeqCst code).
            let n = a.stores.len() - lo;
            let idx = a.stores.len() - 1 - g.branch(n);
            a.last_seen[tid] = idx;
            let s = &a.stores[idx];
            let value = s.value;
            if is_acquire(order) {
                if let Some(rel) = s.release {
                    g.threads[tid].clock.join(&rel);
                }
            }
            if is_sc(order) {
                let clock = g.threads[tid].clock;
                g.sc_clock.join(&clock);
            }
            value
        })
    }

    fn store(&self, value: u64, order: Ordering) {
        rt::synchronize(|g, tid| {
            let mut a = self.lock();
            if is_sc(order) {
                let sc = g.sc_clock;
                g.threads[tid].clock.join(&sc);
            }
            g.threads[tid].clock.bump(tid);
            let release = is_release(order).then_some(g.threads[tid].clock);
            let wseq = g.threads[tid].clock.0[tid];
            a.stores.push(Store {
                value,
                release,
                writer: tid,
                wseq,
            });
            let idx = a.stores.len() - 1;
            a.last_seen[tid] = idx;
            if is_sc(order) {
                let clock = g.threads[tid].clock;
                g.sc_clock.join(&clock);
            }
        });
    }

    /// Atomic read-modify-write: reads the coherence-latest store,
    /// writes `f(old)`, and continues the replaced store's release
    /// sequence. Returns the old value.
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        rt::synchronize(|g, tid| {
            let mut a = self.lock();
            if is_sc(order) {
                let sc = g.sc_clock;
                g.threads[tid].clock.join(&sc);
            }
            g.threads[tid].clock.bump(tid);
            let latest = a.stores.len() - 1;
            let (old, prev_release) = {
                let s = &a.stores[latest];
                (s.value, s.release)
            };
            if is_acquire(order) {
                if let Some(rel) = prev_release {
                    g.threads[tid].clock.join(&rel);
                }
            }
            let release = if is_release(order) {
                let mut c = g.threads[tid].clock;
                if let Some(prev) = prev_release {
                    c.join(&prev);
                }
                Some(c)
            } else {
                prev_release
            };
            let wseq = g.threads[tid].clock.0[tid];
            a.stores.push(Store {
                value: f(old),
                release,
                writer: tid,
                wseq,
            });
            let idx = a.stores.len() - 1;
            a.last_seen[tid] = idx;
            if is_sc(order) {
                let clock = g.threads[tid].clock;
                g.sc_clock.join(&clock);
            }
            old
        })
    }

    /// Non-schedule-point read of the coherence-latest value, for
    /// consuming the atomic by ownership.
    fn unsync_load(&self) -> u64 {
        let a = self.lock();
        a.stores.last().map(|s| s.value).unwrap_or(0)
    }
}

macro_rules! atomic_int {
    ($name:ident, $ty:ty) => {
        /// Model-checked counterpart of the std atomic of the same name.
        pub struct $name {
            core: AtomicCore,
        }

        impl $name {
            pub fn new(value: $ty) -> $name {
                $name {
                    core: AtomicCore::new(value as u64),
                }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.core.load(order) as $ty
            }

            pub fn store(&self, value: $ty, order: Ordering) {
                self.core.store(value as u64, order);
            }

            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |_| value as u64) as $ty
            }

            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.core
                    .rmw(order, |old| (old as $ty).wrapping_add(value) as u64) as $ty
            }

            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.core
                    .rmw(order, |old| (old as $ty).wrapping_sub(value) as u64) as $ty
            }

            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |old| (old as $ty | value) as u64) as $ty
            }

            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |old| (old as $ty & value) as u64) as $ty
            }

            pub fn into_inner(self) -> $ty {
                self.core.unsync_load() as $ty
            }
        }
    };
}

atomic_int!(AtomicUsize, usize);
atomic_int!(AtomicU64, u64);
atomic_int!(AtomicU32, u32);

/// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    core: AtomicCore,
}

impl AtomicBool {
    pub fn new(value: bool) -> AtomicBool {
        AtomicBool {
            core: AtomicCore::new(value as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.core.load(order) != 0
    }

    pub fn store(&self, value: bool, order: Ordering) {
        self.core.store(value as u64, order);
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.core.rmw(order, |_| value as u64) != 0
    }

    pub fn into_inner(self) -> bool {
        self.core.unsync_load() != 0
    }
}
