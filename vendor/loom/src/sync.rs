//! Model-checked synchronization primitives mirroring `std::sync`.
//!
//! `Arc` is re-exported from std unchanged: reference counting has no
//! schedule-visible behavior worth modeling, and keeping the real type
//! preserves `Arc::ptr_eq`-style identity semantics in checked code.
//!
//! `Mutex` and `Condvar` participate in the explorer: acquiring is a
//! scheduling point that may block (deterministically), releasing
//! publishes the holder's vector clock to the next acquirer, and condvar
//! waits have **no spurious wakeups and no timeouts** — a thread that is
//! never notified stays blocked, so a lost wakeup shows up as a detected
//! deadlock instead of being papered over by a timeout.

pub mod atomic;

pub use std::sync::Arc;
pub use std::sync::{LockResult, TryLockError, TryLockResult};

use crate::rt::{self, Run, VClock};
use std::cell::UnsafeCell as StdUnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as HostMutex;

// ── Mutex ──────────────────────────────────────────────────────────────

struct MutexMeta {
    owner: Option<usize>,
    /// Vector clock released by the last unlock; joined by the next
    /// acquirer (mutexes synchronize like release/acquire pairs).
    clock: VClock,
}

/// A model-checked mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    uid: u64,
    meta: HostMutex<MutexMeta>,
    data: StdUnsafeCell<T>,
}

// SAFETY: the model grants ownership to one thread at a time (and the
// token serializes all model threads at the host level besides), so the
// usual Mutex Send/Sync bounds apply.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — exclusive access is enforced by the model.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// Guard returned by [`Mutex::lock`]; unlocks (and publishes the
/// holder's clock) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            uid: rt::new_object_id(),
            meta: HostMutex::new(MutexMeta {
                owner: None,
                clock: VClock::default(),
            }),
            data: StdUnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let uid = self.uid;
        rt::synchronize_blocking(|g, tid| {
            let mut meta = self.meta.lock().unwrap_or_else(|e| e.into_inner());
            if meta.owner.is_none() || g.aborting {
                meta.owner = Some(tid);
                let clock = meta.clock;
                drop(meta);
                g.threads[tid].clock.bump(tid);
                g.threads[tid].clock.join(&clock);
                Ok(())
            } else {
                drop(meta);
                g.threads[tid].run = Run::BlockedMutex(uid);
                Err(())
            }
        });
        Ok(MutexGuard { lock: self })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }

    /// Releases the lock: publishes the clock, clears ownership, and
    /// readies blocked acquirers. Not a scheduling point (like a real
    /// unlock, contention is resolved at the *acquirers'* schedule
    /// points), and must never panic — it runs from guard drops during
    /// abort unwinding.
    fn unlock(&self) {
        rt::with_current_quiet(|g, tid| self.unlock_effects(g, tid));
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the model granted this thread exclusive ownership of
        // the mutex until the guard drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — ownership is exclusive for the guard's
        // lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

// ── Condvar ────────────────────────────────────────────────────────────

/// Result of [`Condvar::wait_timeout`]; the model never times out, so
/// `timed_out()` is always false.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(());

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        false
    }
}

/// A model-checked condition variable. Waiter order is FIFO and wakeups
/// are never spurious, so every wakeup in a passing model is accounted
/// for by a notify.
pub struct Condvar {
    uid: u64,
    waiters: HostMutex<Vec<usize>>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            uid: rt::new_object_id(),
            waiters: HostMutex::new(Vec::new()),
        }
    }

    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        // The wait itself releases the mutex (atomically with blocking,
        // under the execution lock); the incoming guard must not unlock
        // a second time when it goes out of scope.
        let guard = std::mem::ManuallyDrop::new(guard);
        let lock = guard.lock;
        let uid = self.uid;
        let mut enqueued = false;
        rt::synchronize_blocking(|g, tid| {
            if g.aborting {
                return Ok(());
            }
            if !enqueued {
                // First pass: atomically release the mutex and enqueue.
                enqueued = true;
                lock.unlock_effects(g, tid);
                self.waiters
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(tid);
                g.threads[tid].run = Run::BlockedCondvar(uid);
                Err(())
            } else {
                // Woken by a notify; hand back Ok so the caller reacquires.
                Ok(())
            }
        });
        lock.lock()
    }

    /// Identical to [`wait`](Self::wait) in the model: there are no
    /// timeouts, so code relying on the timeout (rather than a notify)
    /// for liveness deadlocks under the checker — by design.
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match self.wait(guard) {
            Ok(guard) => Ok((guard, WaitTimeoutResult(()))),
            Err(poison) => {
                let guard = poison.into_inner();
                Ok((guard, WaitTimeoutResult(())))
            }
        }
    }

    pub fn notify_one(&self) {
        rt::synchronize(|g, tid| {
            g.threads[tid].clock.bump(tid);
            let mut w = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            if !w.is_empty() {
                let t = w.remove(0);
                if g.threads[t].run == Run::BlockedCondvar(self.uid) {
                    g.threads[t].run = Run::Ready;
                }
            }
        });
    }

    pub fn notify_all(&self) {
        rt::synchronize(|g, tid| {
            g.threads[tid].clock.bump(tid);
            let mut w = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            for t in w.drain(..) {
                if g.threads[t].run == Run::BlockedCondvar(self.uid) {
                    g.threads[t].run = Run::Ready;
                }
            }
        });
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Unlock effects under an already-held execution lock (condvar wait
    /// releases the mutex atomically with blocking).
    fn unlock_effects(&self, g: &mut rt::ExecState, tid: usize) {
        let mut meta = self.meta.lock().unwrap_or_else(|e| e.into_inner());
        g.threads[tid].clock.bump(tid);
        meta.clock.join(&g.threads[tid].clock);
        meta.owner = None;
        drop(meta);
        let uid = self.uid;
        for t in 0..g.threads.len() {
            if g.threads[t].run == Run::BlockedMutex(uid) {
                g.threads[t].run = Run::Ready;
            }
        }
    }
}
