//! The model-checking runtime: deterministic scheduling, the DFS schedule
//! explorer, and the vector-clock machinery shared by every shim.
//!
//! # Execution model
//!
//! Each *iteration* of the explorer runs the user closure once, on real OS
//! threads, but serialized by token passing: exactly one model thread holds
//! the token (is `active`) at any moment; everyone else parks on the
//! execution's host condvar. Before every visible operation (atomic access,
//! mutex acquire, condvar op, spawn, join) the token holder reaches a
//! *scheduling point* where the explorer decides who runs next. Decisions
//! are recorded on a [`Path`]; between iterations the last not-yet-exhausted
//! decision is advanced (depth-first), so the tree of schedules is walked
//! exhaustively — up to the preemption bound and iteration cap.
//!
//! Serializing on a token means model threads never touch user data
//! concurrently at the host level, so the checker itself cannot introduce
//! undefined behavior no matter how broken the checked code's
//! synchronization is; weak-memory effects are simulated instead (see
//! `sync::atomic`).
//!
//! # Failure handling
//!
//! A failure (assertion panic in the model, deadlock, data race, livelock)
//! records a replay seed and flips the execution into *abort* mode: the
//! token is then passed from live thread to live thread, each of which
//! unwinds via an [`AbortExecution`] panic that the thread wrappers
//! swallow. Unwinding stays token-serialized, so destructors of user data
//! also never run concurrently.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as HostOrdering};
use std::sync::{Arc, Condvar as HostCondvar, Mutex as HostMutex, MutexGuard as HostGuard};

/// Maximum model threads per execution (vector clocks are fixed-size).
pub(crate) const MAX_THREADS: usize = 8;

/// An atomic load chooses among at most this many youngest visible stores,
/// which keeps every branch arity below 16 — one hex digit per decision in
/// the replay seed.
pub(crate) const MAX_LOAD_CANDIDATES: usize = 15;

/// Panic payload used to tear down the threads of an aborted execution;
/// swallowed by the thread wrappers, never user-visible.
pub(crate) struct AbortExecution;

/// Allocator for model-object identities (mutexes, condvars).
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn new_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, HostOrdering::Relaxed)
}

// ── Vector clocks ──────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct VClock(pub(crate) [u32; MAX_THREADS]);

impl VClock {
    pub(crate) fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// `self` happens-before-or-equals `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] <= other.0[i])
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
}

// ── The DFS path ───────────────────────────────────────────────────────

#[derive(Clone, Copy)]
struct Step {
    chosen: u8,
    options: u8,
}

/// The sequence of scheduler/memory decisions of one execution. A prefix
/// is replayed from the previous iteration; past it, every new decision
/// takes its default (index 0) and is recorded so [`Path::advance`] can
/// bump it depth-first later.
#[derive(Default)]
pub(crate) struct Path {
    steps: Vec<Step>,
    pos: usize,
    /// True when replaying a user-supplied seed: options counts in
    /// `steps` are not trusted and the path must not be advanced.
    replay: bool,
}

impl Path {
    pub(crate) fn from_seed(seed: &str) -> Path {
        let steps = seed
            .trim()
            .chars()
            .map(|c| {
                let chosen = c.to_digit(16).unwrap_or_else(|| {
                    panic!("LOOM_REPLAY: invalid seed character {c:?} (want hex digits)")
                }) as u8;
                Step {
                    chosen,
                    options: chosen + 1,
                }
            })
            .collect();
        Path {
            steps,
            pos: 0,
            replay: true,
        }
    }

    /// The replay seed: one hex digit per recorded decision.
    pub(crate) fn seed(&self) -> String {
        self.steps
            .iter()
            .take(self.pos)
            .map(|s| char::from_digit(s.chosen as u32, 16).unwrap_or('?'))
            .collect()
    }

    fn branch(&mut self, options: usize) -> usize {
        debug_assert!((2..=16).contains(&options));
        if self.pos < self.steps.len() {
            let step = &mut self.steps[self.pos];
            self.pos += 1;
            assert!(
                (step.chosen as usize) < options,
                "schedule replay diverged: recorded choice {} of {} options",
                step.chosen,
                options
            );
            step.options = options as u8;
            step.chosen as usize
        } else {
            self.steps.push(Step {
                chosen: 0,
                options: options as u8,
            });
            self.pos += 1;
            0
        }
    }

    /// Rewinds to the start of the next unexplored schedule. Returns
    /// false when the whole tree has been explored.
    pub(crate) fn advance(&mut self) -> bool {
        if self.replay {
            return false;
        }
        self.steps.truncate(self.pos);
        while let Some(last) = self.steps.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                self.pos = 0;
                return true;
            }
            self.steps.pop();
        }
        false
    }
}

// ── Execution state ────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Run {
    Ready,
    BlockedMutex(u64),
    BlockedCondvar(u64),
    BlockedJoin(usize),
    Finished,
}

pub(crate) struct ThreadSt {
    pub(crate) run: Run,
    pub(crate) clock: VClock,
    /// Set by [`yield_now`]: the thread announced it is spinning on
    /// another thread's progress. Schedulers deprioritize it until it
    /// next receives the token (which clears the flag), so an unfair
    /// "run the spinner forever" schedule is never explored.
    pub(crate) yielded: bool,
}

#[derive(Clone)]
pub(crate) struct Config {
    pub(crate) preemption_bound: usize,
    pub(crate) max_branches: usize,
}

#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub(crate) message: String,
    pub(crate) seed: String,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) active: usize,
    path: Path,
    preemptions: usize,
    steps: usize,
    pub(crate) sc_clock: VClock,
    pub(crate) failure: Option<Failure>,
    pub(crate) aborting: bool,
    cfg: Config,
}

impl ExecState {
    /// Records a failure (first one wins) and flips into abort mode.
    pub(crate) fn fail(&mut self, message: &str) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                message: message.to_string(),
                seed: self.path.seed(),
            });
        }
        self.aborting = true;
    }

    /// One explorer decision with `options` alternatives; 0 is the
    /// default. Non-decisions (one option) and post-failure teardown are
    /// never recorded.
    pub(crate) fn branch(&mut self, options: usize) -> usize {
        if self.aborting || options <= 1 {
            return 0;
        }
        self.path.branch(options)
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.run == Run::Finished)
    }
}

pub(crate) struct Execution {
    mx: HostMutex<ExecState>,
    cv: HostCondvar,
}

impl Execution {
    pub(crate) fn new(path: Path, cfg: Config) -> Execution {
        let mut root_clock = VClock::default();
        root_clock.bump(0);
        Execution {
            mx: HostMutex::new(ExecState {
                threads: vec![ThreadSt {
                    run: Run::Ready,
                    clock: root_clock,
                    yielded: false,
                }],
                active: 0,
                path,
                preemptions: 0,
                steps: 0,
                sc_clock: VClock::default(),
                failure: None,
                aborting: false,
                cfg,
            }),
            cv: HostCondvar::new(),
        }
    }

    pub(crate) fn lock_state(&self) -> HostGuard<'_, ExecState> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks until this thread holds the token again. On wake into an
    /// aborting execution, tears the thread down via [`AbortExecution`]
    /// (unless it is already unwinding).
    pub(crate) fn wait_for_token<'a>(
        &'a self,
        mut g: HostGuard<'a, ExecState>,
        tid: usize,
    ) -> HostGuard<'a, ExecState> {
        while g.active != tid {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        // Receiving the token means the thread gets to re-check whatever
        // it was spinning on; its yield deprioritization ends here.
        g.threads[tid].yielded = false;
        if g.aborting && !std::thread::panicking() {
            drop(g);
            panic::panic_any(AbortExecution);
        }
        g
    }

    /// A pre-operation scheduling point for the (Ready, token-holding)
    /// thread `tid`: chooses who performs the next visible operation.
    /// Returns with `tid` active again (i.e. after any preemption has run
    /// its course).
    pub(crate) fn schedule<'a>(
        &'a self,
        mut g: HostGuard<'a, ExecState>,
        tid: usize,
    ) -> HostGuard<'a, ExecState> {
        debug_assert_eq!(g.active, tid);
        debug_assert_eq!(g.threads[tid].run, Run::Ready);
        g.steps += 1;
        if g.steps > g.cfg.max_branches {
            g.fail("livelock: execution exceeded the step budget");
            self.cv.notify_all();
            drop(g);
            panic::panic_any(AbortExecution);
        }
        let mut order = Vec::with_capacity(g.threads.len());
        order.push(tid);
        // Yielded threads are not preemption targets: they announced they
        // are spinning, so running them early only re-checks a condition
        // nobody has changed yet. They run again via `pass_token` or a
        // peer's yield.
        order.extend(
            (0..g.threads.len())
                .filter(|&t| t != tid && g.threads[t].run == Run::Ready && !g.threads[t].yielded),
        );
        let options = if g.preemptions >= g.cfg.preemption_bound {
            1
        } else {
            order.len()
        };
        let next = order[g.branch(options)];
        if next != tid {
            g.preemptions += 1;
            g.active = next;
            self.cv.notify_all();
            g = self.wait_for_token(g, tid);
        }
        g
    }

    /// A voluntary yield of the (Ready, token-holding) thread `tid`: it
    /// is marked [`ThreadSt::yielded`] and the token moves to another
    /// Ready thread — preferring non-yielded ones — without consuming any
    /// preemption budget. With no other Ready thread the yield is a
    /// no-op. Spin loops annotated this way cannot monopolize the
    /// schedule, yet a genuine livelock (every runnable thread spinning
    /// with nothing to wake them) still walks into the step budget and is
    /// reported.
    pub(crate) fn yield_token<'a>(
        &'a self,
        mut g: HostGuard<'a, ExecState>,
        tid: usize,
    ) -> HostGuard<'a, ExecState> {
        debug_assert_eq!(g.active, tid);
        g.steps += 1;
        if g.steps > g.cfg.max_branches {
            g.fail("livelock: execution exceeded the step budget");
            self.cv.notify_all();
            drop(g);
            panic::panic_any(AbortExecution);
        }
        let fresh: Vec<usize> = (0..g.threads.len())
            .filter(|&t| t != tid && g.threads[t].run == Run::Ready && !g.threads[t].yielded)
            .collect();
        let spinning: Vec<usize> = (0..g.threads.len())
            .filter(|&t| t != tid && g.threads[t].run == Run::Ready && g.threads[t].yielded)
            .collect();
        let order = if fresh.is_empty() { spinning } else { fresh };
        if order.is_empty() {
            return g;
        }
        g.threads[tid].yielded = true;
        let next = order[g.branch(order.len())];
        g.active = next;
        self.cv.notify_all();
        self.wait_for_token(g, tid)
    }

    /// Hands the token onward when the current thread can no longer run
    /// (it blocked or finished). Detects deadlock: live threads but no
    /// runnable one. In abort mode, passes the token to any live thread
    /// so the teardown procession visits everyone.
    pub(crate) fn pass_token(&self, g: &mut ExecState) {
        if g.aborting {
            if let Some(t) = (0..g.threads.len()).find(|&t| g.threads[t].run != Run::Finished) {
                g.active = t;
            }
            self.cv.notify_all();
            return;
        }
        let mut ready: Vec<usize> = (0..g.threads.len())
            .filter(|&t| g.threads[t].run == Run::Ready)
            .collect();
        if ready.iter().any(|&t| !g.threads[t].yielded) {
            // Spinners wait their turn while some thread can make real
            // progress; if everyone Ready has yielded they all stay in.
            ready.retain(|&t| !g.threads[t].yielded);
        }
        if ready.is_empty() {
            if !g.all_finished() {
                let blocked: Vec<String> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.run != Run::Finished)
                    .map(|(i, t)| format!("thread {i} {:?}", t.run))
                    .collect();
                g.fail(&format!(
                    "deadlock: every live thread is blocked ({})",
                    blocked.join(", ")
                ));
                // Start the abort procession at some live thread.
                if let Some(t) = (0..g.threads.len()).find(|&t| g.threads[t].run != Run::Finished) {
                    g.active = t;
                }
            }
            self.cv.notify_all();
            return;
        }
        let n = ready.len();
        g.active = ready[g.branch(n)];
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut g = self.lock_state();
        while !g.all_finished() {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// ── Current-thread context ─────────────────────────────────────────────

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model thread's execution handle and id.
/// Panics if called from outside `loom::model`.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let (exec, tid) = borrow
            .as_ref()
            .expect("loom primitive used outside loom::model");
        f(exec, *tid)
    })
}

/// Non-scheduling access to the execution state, for effects that are
/// not scheduling points (mutex release, object creation, cell access
/// tracking). Never panics on its own — callers run it from destructors
/// during abort unwinding.
pub(crate) fn with_current_quiet<R>(f: impl FnOnce(&mut ExecState, usize) -> R) -> R {
    with_current(|exec, tid| {
        let mut g = exec.lock_state();
        f(&mut g, tid)
    })
}

/// Tears the current thread down if the execution has failed (and the
/// thread is not already unwinding). Used after quiet-mode effects that
/// may themselves record a failure, e.g. the cell race detector.
pub(crate) fn abort_if_failing() {
    let aborting = with_current(|exec, _| exec.lock_state().aborting);
    if aborting && !std::thread::panicking() {
        panic::panic_any(AbortExecution);
    }
}

/// One visible operation of the current thread: a scheduling point, then
/// `op` under the execution lock while holding the token. During abort
/// teardown the scheduling point is skipped and `op` still runs (with
/// [`ExecState::branch`] pinned to defaults) so destructors see coherent
/// state.
pub(crate) fn synchronize<R>(op: impl FnOnce(&mut ExecState, usize) -> R) -> R {
    with_current(|exec, tid| {
        let mut g = exec.lock_state();
        if g.aborting {
            if !std::thread::panicking() {
                drop(g);
                panic::panic_any(AbortExecution);
            }
            return op(&mut g, tid);
        }
        g = exec.schedule(g, tid);
        op(&mut g, tid)
    })
}

/// Like [`synchronize`], but the operation may need to block: `op`
/// returns `Ok(result)` to complete, or `Err(())` after marking the
/// thread blocked, in which case the token is passed on and `op` is
/// retried once the thread is made Ready and scheduled again.
pub(crate) fn synchronize_blocking<R>(
    mut op: impl FnMut(&mut ExecState, usize) -> Result<R, ()>,
) -> R {
    with_current(|exec, tid| {
        let mut g = exec.lock_state();
        if g.aborting {
            if !std::thread::panicking() {
                drop(g);
                panic::panic_any(AbortExecution);
            }
            // Quiet mode: ops must not block; callers guarantee their
            // blocking preconditions are waived when aborting.
            return match op(&mut g, tid) {
                Ok(r) => r,
                Err(()) => unreachable!("blocking op refused to complete during abort"),
            };
        }
        g = exec.schedule(g, tid);
        loop {
            match op(&mut g, tid) {
                Ok(r) => return r,
                Err(()) => {
                    debug_assert_ne!(g.threads[tid].run, Run::Ready);
                    exec.pass_token(&mut g);
                    g = exec.wait_for_token(g, tid);
                }
            }
        }
    })
}

// ── Thread lifecycle ───────────────────────────────────────────────────

/// Body of every model OS thread (including the root): waits for its
/// first token, runs `f` under `catch_unwind`, then marks itself
/// finished, wakes joiners, and passes the token on.
pub(crate) fn thread_main(exec: Arc<Execution>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let run = {
        let mut g = exec.lock_state();
        while g.active != tid {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        !g.aborting
    };
    let result = if run {
        panic::catch_unwind(AssertUnwindSafe(f))
    } else {
        Ok(())
    };
    let mut g = exec.lock_state();
    match result {
        Err(payload) if payload.is::<AbortExecution>() => {}
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            g.fail(&format!("thread {tid} panicked: {msg}"));
        }
        Ok(()) => {}
    }
    g.threads[tid].clock.bump(tid);
    g.threads[tid].run = Run::Finished;
    for t in 0..g.threads.len() {
        if g.threads[t].run == Run::BlockedJoin(tid) {
            g.threads[t].run = Run::Ready;
        }
    }
    exec.pass_token(&mut g);
    drop(g);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Registers a new model thread (spawn is a visible operation of the
/// parent) and returns its id, or `None` when the thread budget is
/// exhausted (the execution is then already failed and aborting).
pub(crate) fn register_thread() -> Option<usize> {
    synchronize(|g, tid| {
        if g.threads.len() >= MAX_THREADS {
            g.fail(&format!("model spawned more than {MAX_THREADS} threads"));
            return None;
        }
        // The child inherits the parent's clock as of the spawn, then
        // the parent bumps past it: parent events *after* the spawn are
        // concurrent with the child, not ordered before it.
        let mut child_clock = g.threads[tid].clock;
        let child = g.threads.len();
        child_clock.bump(child);
        g.threads.push(ThreadSt {
            run: Run::Ready,
            clock: child_clock,
            yielded: false,
        });
        g.threads[tid].clock.bump(tid);
        Some(child)
    })
}

pub(crate) fn current_execution() -> Arc<Execution> {
    with_current(|exec, _| Arc::clone(exec))
}

/// `thread::yield_now`: a spin-loop annotation. The current thread is
/// deprioritized until every other runnable thread has had a chance to
/// run (see [`Execution::yield_token`]). No memory effect.
pub(crate) fn yield_now() {
    with_current(|exec, tid| {
        let g = exec.lock_state();
        if g.aborting {
            if !std::thread::panicking() {
                drop(g);
                panic::panic_any(AbortExecution);
            }
            return;
        }
        let mut g = exec.yield_token(g, tid);
        g.threads[tid].clock.bump(tid);
    });
}

// ── The explorer driver ────────────────────────────────────────────────

pub(crate) struct RunOutcome {
    pub(crate) iterations: u64,
    pub(crate) truncated: bool,
    pub(crate) failure: Option<Failure>,
}

/// Runs the explorer: iterates schedules depth-first until the tree is
/// exhausted, a failure is found, or `max_iterations` is hit.
pub(crate) fn explore(
    f: Arc<dyn Fn() + Send + Sync>,
    cfg: Config,
    max_iterations: u64,
    mut path: Path,
) -> RunOutcome {
    let mut iterations = 0u64;
    loop {
        let exec = Arc::new(Execution::new(std::mem::take(&mut path), cfg.clone()));
        let exec2 = Arc::clone(&exec);
        let f2 = Arc::clone(&f);
        let root = std::thread::Builder::new()
            .name("loom-root".to_string())
            .spawn(move || thread_main(exec2, 0, move || f2()))
            .expect("spawn loom root thread");
        exec.wait_all_finished();
        let _ = root.join();
        iterations += 1;
        let mut g = exec.lock_state();
        let failure = g.failure.take();
        path = std::mem::take(&mut g.path);
        drop(g);
        if failure.is_some() {
            return RunOutcome {
                iterations,
                truncated: false,
                failure,
            };
        }
        if !path.advance() {
            return RunOutcome {
                iterations,
                truncated: false,
                failure: None,
            };
        }
        if iterations >= max_iterations {
            return RunOutcome {
                iterations,
                truncated: true,
                failure: None,
            };
        }
    }
}
