//! A checked `UnsafeCell`: access is performed through `with`/`with_mut`
//! closures, and every access is checked against a FastTrack-style
//! read/write vector-clock pair. Two accesses to the same cell, at least
//! one a write, with neither happening-before the other, are a data race
//! — the execution fails with a replay seed, exactly like an assertion.
//!
//! Cell accesses are *not* scheduling points: the interleavings that
//! matter are those of the surrounding synchronization, which the
//! explorer already branches on, and the happens-before relation the
//! clocks compute is schedule-independent for any schedule that reaches
//! both accesses.

use crate::rt::{self, VClock};
use std::cell::UnsafeCell as StdUnsafeCell;
use std::sync::Mutex as HostMutex;

#[derive(Default)]
struct AccessClocks {
    reads: VClock,
    writes: VClock,
}

/// Model-checked counterpart of `std::cell::UnsafeCell`.
pub struct UnsafeCell<T: ?Sized> {
    clocks: HostMutex<AccessClocks>,
    data: StdUnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    pub fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell {
            clocks: HostMutex::new(AccessClocks::default()),
            data: StdUnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Shared (read) access. Races with any concurrent write.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.track(false);
        f(self.data.get() as *const T)
    }

    /// Exclusive (write) access. Races with any concurrent access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.track(true);
        f(self.data.get())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn track(&self, write: bool) {
        rt::with_current_quiet(|g, tid| {
            if g.aborting {
                return;
            }
            let clock = g.threads[tid].clock;
            let mut c = self.clocks.lock().unwrap_or_else(|e| e.into_inner());
            let race = if write {
                !c.reads.le(&clock) || !c.writes.le(&clock)
            } else {
                !c.writes.le(&clock)
            };
            if race {
                drop(c);
                let kind = if write { "write" } else { "read" };
                g.fail(&format!(
                    "data race: unsynchronized {kind} of an UnsafeCell by thread {tid}"
                ));
                return;
            }
            if write {
                c.writes.join(&clock);
                c.reads.join(&clock);
            } else {
                c.reads.join(&clock);
            }
        });
        // Failing marked the execution aborting; unwind this thread now
        // (unless it is already unwinding).
        rt::abort_if_failing();
    }
}

// SAFETY: like std's UnsafeCell, Send requires only T: Send; the model
// serializes all real access on the token anyway.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
// SAFETY: checked code asserts its own synchronization discipline (that
// is what the race detector verifies); host-level access stays
// token-serialized regardless.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}
