//! Offline stand-in for the `loom` model checker, built in-tree because
//! the workspace's stable, no-network toolchain rules out both the real
//! crate and Miri/TSan (see `rust-toolchain.toml` and the vendored-deps
//! policy in the workspace README).
//!
//! # What it does
//!
//! [`model`] runs a closure many times, exploring the tree of thread
//! interleavings depth-first. Threads are real OS threads but execute
//! one at a time under a scheduler token; before every visible operation
//! (atomic access, lock, condvar op, spawn/join) the explorer picks who
//! runs next. Preemptive switches are bounded per execution
//! ([`Builder::preemption_bound`], default 2) — the classic CHESS result
//! is that almost all concurrency bugs manifest within two preemptions —
//! so the schedule space stays tractable while exhaustively covering
//! everything below the bound.
//!
//! Atomics simulate weak memory: loads branch over every store not ruled
//! out by coherence or happens-before, so an ordering weakened from
//! `Release` to `Relaxed` admits real stale-read executions and the
//! checker finds them (see `sync::atomic`). Condvars have no timeouts
//! and no spurious wakeups, so a lost wakeup becomes a detected
//! deadlock. [`cell::UnsafeCell`] accesses are race-checked with vector
//! clocks.
//!
//! # Failures and replay
//!
//! Any failure — assertion panic, deadlock, data race, livelock — stops
//! exploration and panics with a **replay seed**: a hex string encoding
//! every scheduler/memory decision of the failing execution. Re-running
//! the same test with `LOOM_REPLAY=<seed>` replays exactly that
//! schedule, turning a 1-in-10,000 interleaving into a deterministic
//! unit test.
//!
//! # API-compatible subset
//!
//! `loom::model`, `loom::thread::{spawn, yield_now}`,
//! `loom::sync::{Arc, Mutex, Condvar, atomic::*}`, `loom::cell::UnsafeCell`
//! — the surface `vendor/rayon`'s `sync` facade swaps in under
//! `cfg(loom)`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Exploration statistics returned by [`Builder::check`].
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct complete schedules explored.
    pub schedules: u64,
    /// True when exploration stopped at `max_iterations` rather than
    /// exhausting the (bounded) schedule tree.
    pub truncated: bool,
}

/// Configures and runs a model-checking session.
///
/// Environment overrides (all optional): `LOOM_MAX_PREEMPTIONS`,
/// `LOOM_MAX_ITERATIONS`, `LOOM_MAX_BRANCHES`, and `LOOM_REPLAY` (a seed
/// from a previous failure; runs exactly that one schedule).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum preemptive context switches per execution. Switches at
    /// blocking points are free.
    pub preemption_bound: usize,
    /// Step budget per execution; exceeding it is reported as a livelock.
    pub max_branches: usize,
    /// Maximum schedules to explore before truncating.
    pub max_iterations: u64,
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: env_parse("LOOM_MAX_PREEMPTIONS").unwrap_or(2),
            max_branches: env_parse("LOOM_MAX_BRANCHES").unwrap_or(20_000),
            max_iterations: env_parse("LOOM_MAX_ITERATIONS").unwrap_or(200_000),
        }
    }

    /// Explores `f` under every schedule within the bounds. Panics on
    /// the first failing schedule, printing its replay seed; otherwise
    /// returns how much was explored.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let path = match std::env::var("LOOM_REPLAY") {
            Ok(seed) => rt::Path::from_seed(&seed),
            Err(_) => rt::Path::default(),
        };
        self.run(Arc::new(f), path)
    }

    /// Replays exactly the one schedule a failure seed encodes — the
    /// programmatic form of `LOOM_REPLAY=<seed>`. Panics (like
    /// [`check`](Self::check)) if that schedule fails.
    pub fn replay<F>(&self, seed: &str, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.run(Arc::new(f), rt::Path::from_seed(seed))
    }

    fn run(&self, f: Arc<dyn Fn() + Send + Sync>, path: rt::Path) -> Report {
        let cfg = rt::Config {
            preemption_bound: self.preemption_bound,
            max_branches: self.max_branches,
        };
        let outcome = rt::explore(f, cfg, self.max_iterations, path);
        if let Some(failure) = outcome.failure {
            eprintln!(
                "loom: failing schedule found on iteration {} — replay with LOOM_REPLAY={}",
                outcome.iterations, failure.seed
            );
            panic!(
                "loom model failed: {} (replay seed {})",
                failure.message, failure.seed
            );
        }
        Report {
            schedules: outcome.iterations,
            truncated: outcome.truncated,
        }
    }
}

/// Checks `f` with the default [`Builder`]. Panics (with a replay seed)
/// if any explored schedule fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}
