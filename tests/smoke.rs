//! Smoke test (workspace-bootstrap satellite): the distributed executor
//! and the centralized algorithm must both produce *feasible* covers on a
//! 1k-vertex G(n, m) instance, their dual certificates must validate the
//! lower bounds they report, and a fixed seed must reproduce the
//! distributed run exactly.

use mwvc_repro::core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_repro::core::mpc::MpcMwvcConfig;
use mwvc_repro::core::solve_centralized;
use mwvc_repro::core::DualCertificate;
use mwvc_repro::graph::generators::gnm;
use mwvc_repro::graph::{EdgeIndex, WeightModel, WeightedGraph};

const EPS: f64 = 0.1;
const SEED: u64 = 2026;

fn instance() -> WeightedGraph {
    let g = gnm(1000, 8000, SEED);
    let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, SEED);
    WeightedGraph::new(g, w)
}

/// Checks that the certificate's reported lower bound is exactly what its
/// dual values witness: the rescaled matching is feasible, its objective
/// matches the reported bound, and the bound never exceeds the weight of
/// any concrete cover.
fn validate_lower_bound(
    wg: &WeightedGraph,
    eidx: &EdgeIndex,
    cert: &DualCertificate,
    covers: &[f64],
) {
    let lb = cert.lower_bound(wg, eidx);
    assert!(
        lb > 0.0,
        "certificate must carry information on a nonempty graph"
    );
    let factor = cert.feasibility_factor(wg, eidx).max(1.0);
    let rescaled = DualCertificate::new(cert.x.iter().map(|x| x / factor).collect());
    assert!(
        rescaled.is_feasible(wg, eidx, 1e-9),
        "rescaled dual must be a feasible fractional matching"
    );
    assert!(
        (rescaled.value() - lb).abs() <= 1e-9 * (1.0 + lb),
        "reported bound {lb} does not match the rescaled dual objective {}",
        rescaled.value()
    );
    for &cw in covers {
        assert!(
            lb <= cw + 1e-7,
            "lower bound {lb} exceeds a concrete cover of weight {cw}"
        );
    }
}

#[test]
fn distributed_and_centralized_agree_on_feasibility() {
    let wg = instance();
    let eidx = EdgeIndex::build(&wg.graph);
    let cfg = MpcMwvcConfig::practical(EPS, SEED);

    let dist = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    dist.cover
        .verify(&wg.graph)
        .expect("distributed cover leaves an edge uncovered");

    let central = solve_centralized(&wg, EPS, SEED);
    central
        .cover
        .verify(&wg.graph)
        .expect("centralized cover leaves an edge uncovered");

    let w_dist = dist.cover.weight(&wg);
    let w_central = central.cover.weight(&wg);
    validate_lower_bound(&wg, &eidx, &dist.certificate, &[w_dist, w_central]);
    validate_lower_bound(&wg, &eidx, &central.certificate, &[w_dist, w_central]);

    // The model run must stay within its own audited budget.
    assert!(
        dist.trace.violations.is_empty(),
        "distributed run violated the MPC model: {:?}",
        dist.trace.violations
    );
}

#[test]
fn distributed_run_is_reproducible_for_a_fixed_seed() {
    let wg = instance();
    let cfg = MpcMwvcConfig::practical(EPS, SEED);
    let a = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    let b = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    assert_eq!(
        a.cover, b.cover,
        "same seed + config must give identical covers"
    );
    assert_eq!(a.certificate, b.certificate);
    assert_eq!(a.phases, b.phases);
}
