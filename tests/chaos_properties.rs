//! Chaos properties: randomly drawn deterministic fault plans driven
//! through **both** flagship executors (distributed, roundcompress) on
//! pools of 1, 2, and 5 threads, under **both** round schedulers.
//!
//! The contract under test is the recovery half of the determinism
//! story:
//!
//! * every *handled* fault plan yields `Ok` with gated outputs — cover,
//!   dual certificate, phase/round counts, per-round stats, critical
//!   path, violations — **bit-identical** to the fault-free run, at
//!   every pool width,
//! * a plan that exceeds the recovery budget yields the same typed
//!   [`ClusterError`] at every pool width — a clean `Err`, never a
//!   panic.
//!
//! Two seeded mutation gates ride along: with `CHAOS_MUTATE=skip-retry`
//! the spill retry loop is disabled and
//! [`spill_retry_recovers_transient_errors`] must fail; with
//! `CHAOS_MUTATE=stale-checkpoint` crash replay restores a stale
//! snapshot and [`crash_replay_restores_from_checkpoints`] must fail.
//! CI runs the suite under both mutations and requires a non-zero exit —
//! proving these assertions can actually see a broken recovery engine.
//! The proptest sweeps skip themselves under a mutation (the dedicated
//! gates carry the failure) so shrink loops never chew CI time.

use mwvc_repro::core::mpc::{DistributedExecutor, Executor, ExecutorOutcome, MpcMwvcConfig};
use mwvc_repro::graph::generators::gnm;
use mwvc_repro::graph::{WeightModel, WeightedGraph};
use mwvc_repro::roundcompress::{RoundCompressConfig, RoundCompressExecutor};
use mwvc_repro::sim::{
    Cluster, ClusterError, FaultConfig, MachineCtx, MpcConfig, RoundScheduler, Words,
};
use proptest::prelude::*;
use rayon::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

const EPS: f64 = 0.25;

/// The pool widths every faulted run is checked across (same contract as
/// `tests/determinism.rs`).
const POOL_WIDTHS: [usize; 3] = [1, 2, 5];

fn pools() -> Vec<(usize, ThreadPool)> {
    POOL_WIDTHS
        .iter()
        .map(|&t| {
            (
                t,
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .expect("build test pool"),
            )
        })
        .collect()
}

/// True when a seeded chaos mutation is active: the dedicated gate tests
/// carry the expected failure, the random sweeps stand down.
fn mutation_active() -> bool {
    std::env::var("CHAOS_MUTATE").is_ok()
}

fn instance(n: usize, seed: u64) -> WeightedGraph {
    let g = gnm(n, n * 10, seed);
    let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, seed ^ 0x5eed);
    WeightedGraph::new(g, w)
}

fn executors(
    seed: u64,
    scheduler: RoundScheduler,
    faults: FaultConfig,
) -> Vec<(&'static str, Box<dyn Executor>)> {
    vec![
        (
            "distributed",
            Box::new(DistributedExecutor::new(
                MpcMwvcConfig::practical(EPS, seed)
                    .with_scheduler(scheduler)
                    .with_faults(faults),
            )),
        ),
        (
            "roundcompress",
            Box::new(RoundCompressExecutor::new(
                RoundCompressConfig::practical(EPS, seed)
                    .with_scheduler(scheduler)
                    .with_faults(faults),
            )),
        ),
    ]
}

/// First gated-output divergence, or `None` when the recovery contract
/// holds. Fault accounting (`trace.faults`, fault events) is deliberately
/// excluded — it *must* differ between a faulted and a fault-free run.
fn gated_mismatch(base: &ExecutorOutcome, got: &ExecutorOutcome) -> Option<&'static str> {
    if got.solution.cover != base.solution.cover {
        return Some("cover diverged");
    }
    if got.solution.certificate != base.solution.certificate {
        return Some("dual certificate diverged");
    }
    if got.cost.phases != base.cost.phases || got.cost.mpc_rounds != base.cost.mpc_rounds {
        return Some("phase/round counts diverged");
    }
    if got.trace.rounds != base.trace.rounds {
        return Some("per-round stats diverged");
    }
    if got.trace.critical_path != base.trace.critical_path {
        return Some("critical path diverged");
    }
    if got.trace.violations != base.trace.violations {
        return Some("violations diverged");
    }
    None
}

/// One faulted run at one pool width: `Err(())` when the recovery path
/// panicked, otherwise the executor's own `Result`.
type PoolRun = (usize, Result<Result<ExecutorOutcome, ClusterError>, ()>);

/// Runs `exec.try_run` on every pool width with panics contained, so a
/// panicking recovery path fails the property with a message instead of
/// aborting the shrink loop.
fn run_across_pools(exec: &dyn Executor, wg: &WeightedGraph) -> Vec<PoolRun> {
    pools()
        .iter()
        .map(|(t, p)| {
            let r =
                catch_unwind(AssertUnwindSafe(|| p.install(|| exec.try_run(wg)))).map_err(|_| ());
            (*t, r)
        })
        .collect()
}

/// Recoverable fault plans: rates low enough that the default replay and
/// retry budgets of [`FaultConfig::none`] *can* absorb them — though the
/// property does not assume they always do; it only demands each plan
/// resolves the same way (bit-identical `Ok` or one typed `Err`) at
/// every pool width.
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        0u64..u64::MAX,
        0.0..0.10f64,
        0.0..0.12f64,
        0.0..0.12f64,
        0.0..0.25f64,
        1usize..4,
    )
        .prop_map(
            |(seed, crash, drop, dup, straggler, checkpoint_every)| FaultConfig {
                seed,
                crash_rate: crash,
                drop_rate: drop,
                dup_rate: dup,
                straggler_rate: straggler,
                checkpoint_every,
                ..FaultConfig::none()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random recoverable fault plans, both executors, both schedulers,
    /// pool widths 1/2/5: gated outputs bit-identical to fault-free, or
    /// one consistent typed error. Never a panic.
    #[test]
    fn random_fault_plans_preserve_gated_outputs(
        faults in arb_faults(),
        inst_seed in 0u64..1_000,
        algo_seed in 0u64..1_000,
    ) {
        if mutation_active() {
            return Ok(());
        }
        let wg = instance(160, inst_seed);
        for scheduler in [RoundScheduler::Barrier, RoundScheduler::Pipelined] {
            for (name, exec) in executors(algo_seed, scheduler, faults) {
                let baseline = executors(algo_seed, scheduler, FaultConfig::none())
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .expect("baseline executor")
                    .1
                    .try_run(&wg)
                    .expect("fault-free baseline never errs");
                let runs = run_across_pools(exec.as_ref(), &wg);
                // Every width resolves; classify against the 1-thread run.
                let shape: Vec<Option<String>> = runs
                    .iter()
                    .map(|(t, r)| match r {
                        Err(()) => panic!(
                            "{name}/{scheduler:?} panicked at {t} threads under {faults:?}"
                        ),
                        Ok(Ok(out)) => {
                            if let Some(why) = gated_mismatch(&baseline, out) {
                                panic!(
                                    "{name}/{scheduler:?} at {t} threads: {why} under {faults:?}"
                                );
                            }
                            None
                        }
                        Ok(Err(e)) => Some(e.to_string()),
                    })
                    .collect();
                for (i, s) in shape.iter().enumerate().skip(1) {
                    prop_assert_eq!(
                        s,
                        &shape[0],
                        "{}/{:?}: widths {} and {} disagreed on the outcome under {:?}",
                        name,
                        scheduler,
                        runs[0].0,
                        runs[i].0,
                        faults
                    );
                }
            }
        }
    }
}

/// A plan past any budget — certain crash, zero replays — must be a
/// clean typed error at every width, for both executors and schedulers,
/// with an identical message. Never a panic.
#[test]
fn unrecoverable_plans_err_cleanly_at_all_widths() {
    if mutation_active() {
        return;
    }
    let faults = FaultConfig {
        seed: 0xdead,
        crash_rate: 1.0,
        checkpoint_every: 1,
        max_replays: 0,
        ..FaultConfig::none()
    };
    let wg = instance(160, 77);
    for scheduler in [RoundScheduler::Barrier, RoundScheduler::Pipelined] {
        for (name, exec) in executors(7, scheduler, faults) {
            let mut messages = Vec::new();
            for (t, r) in run_across_pools(exec.as_ref(), &wg) {
                match r {
                    Err(()) => panic!("{name}/{scheduler:?} panicked at {t} threads"),
                    Ok(Ok(_)) => {
                        panic!("{name}/{scheduler:?} at {t} threads: expected a typed error")
                    }
                    Ok(Err(e)) => messages.push(e.to_string()),
                }
            }
            assert!(
                messages.windows(2).all(|w| w[0] == w[1]),
                "{name}/{scheduler:?}: error text differs across widths: {messages:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Seeded mutation gates. Each doubles as a positive recovery test when
// no mutation is active.
// ---------------------------------------------------------------------

/// Per-machine spill probe state (the flagship executors never spill at
/// these sizes, so the retry path gets its own cluster drive).
#[derive(Clone, Debug, Default, PartialEq)]
struct SpillProbe {
    read_back: Vec<u64>,
}

impl Words for SpillProbe {
    fn words(&self) -> usize {
        1 + self.read_back.len()
    }
}

const SPILL_BATCH: usize = 64;

fn spill_probe(faults: FaultConfig) -> Result<Vec<SpillProbe>, ClusterError> {
    let cfg = MpcConfig::new(4, 10_000).with_faults(faults);
    let mut c: Cluster<SpillProbe, u64> = Cluster::new(cfg, |_| SpillProbe::default());
    c.try_round(
        "spill-write",
        |ctx: &mut MachineCtx<u64>, _state, _inbox| {
            let base = (ctx.id as u64) << 32;
            let batch: Vec<u64> = (0..SPILL_BATCH as u64)
                .map(|k| base | k.wrapping_mul(0x9e37_79b9))
                .collect();
            let _ = ctx.spill().write_words(&batch);
            ctx.spill().rewind();
        },
    )?;
    c.try_round("spill-read", |ctx: &mut MachineCtx<u64>, state, _inbox| {
        let mut buf = vec![0u64; SPILL_BATCH];
        let got = ctx.spill().read_words(&mut buf).unwrap_or(0);
        buf.truncate(got);
        state.read_back = buf;
    })?;
    Ok(c.states().to_vec())
}

/// Transient spill-I/O faults are absorbed by the bounded retry loop:
/// the faulted read-back matches the fault-free one bit for bit. Under
/// `CHAOS_MUTATE=skip-retry` the loop gives up on the first injected
/// error and this test MUST fail (CI asserts it does).
#[test]
fn spill_retry_recovers_transient_errors() {
    let clean = spill_probe(FaultConfig::none()).expect("fault-free probe");
    let faults = FaultConfig {
        seed: 0xc4a05,
        spill_io_rate: 0.30,
        ..FaultConfig::none()
    };
    let faulted = catch_unwind(AssertUnwindSafe(|| spill_probe(faults)))
        .expect("the spill retry path must never panic")
        .expect("transient spill errors within the retry budget must recover");
    assert_eq!(
        faulted, clean,
        "spill read-back diverged from the fault-free run"
    );
}

/// Crash-restarts replay from the last checkpoint and land on gated
/// outputs bit-identical to the fault-free run. Under
/// `CHAOS_MUTATE=stale-checkpoint` the restore hands back a stale
/// snapshot and this test MUST fail (CI asserts it does).
#[test]
fn crash_replay_restores_from_checkpoints() {
    let wg = instance(160, 3);
    let faults = FaultConfig {
        seed: 0xc4a05 ^ 0xc4a5,
        crash_rate: 0.12,
        checkpoint_every: 2,
        ..FaultConfig::none()
    };
    for scheduler in [RoundScheduler::Barrier, RoundScheduler::Pipelined] {
        let baseline =
            DistributedExecutor::new(MpcMwvcConfig::practical(EPS, 11).with_scheduler(scheduler))
                .try_run(&wg)
                .expect("fault-free baseline never errs");
        let exec = DistributedExecutor::new(
            MpcMwvcConfig::practical(EPS, 11)
                .with_scheduler(scheduler)
                .with_faults(faults),
        );
        let out = catch_unwind(AssertUnwindSafe(|| exec.try_run(&wg)))
            .expect("crash replay must never panic")
            .expect("crashes within the replay budget must recover");
        assert!(
            out.trace.faults.injected > 0,
            "the crash plan injected nothing ({scheduler:?}); dead test"
        );
        assert!(
            out.trace.faults.replayed_rounds > 0,
            "recovery never replayed a round ({scheduler:?}); checkpoints untested"
        );
        if let Some(why) = gated_mismatch(&baseline, &out) {
            panic!("{scheduler:?}: {why} after crash replay");
        }
    }
}
