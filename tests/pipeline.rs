//! Cross-crate integration tests: the full pipeline (generator → weights →
//! algorithm → verification → certification) on every generator family
//! and weight model.

use mwvc_repro::baselines::{bar_yehuda_even, greedy_ratio_cover, lp_optimum};
use mwvc_repro::core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_repro::core::solve_centralized;
use mwvc_repro::graph::generators::{
    barbell, chung_lu, clique, disjoint_cliques, gnm, gnp, grid, planted_cover, random_bipartite,
    random_regular, rmat, star, star_composite, tree, RmatParams,
};
use mwvc_repro::graph::validate::check_structure;
use mwvc_repro::graph::{EdgeIndex, Graph, WeightModel, WeightedGraph};

const EPS: f64 = 0.1;

fn all_generators() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", gnp(400, 0.03, 1)),
        ("gnm", gnm(400, 3200, 2)),
        ("chung_lu", chung_lu(400, 2.3, 10.0, 3)),
        ("rmat", rmat(9, 8, RmatParams::default(), 4)),
        ("random_regular", random_regular(400, 8, 5)),
        ("bipartite", random_bipartite(150, 250, 0.04, 6)),
        ("grid", grid(20, 20)),
        ("tree", tree(400, 7)),
        ("star", star(200)),
        ("clique", clique(40)),
        ("disjoint_cliques", disjoint_cliques(20, 8)),
        ("barbell", barbell(15, 5)),
        ("star_composite", star_composite(5, 60, 0.01, 8)),
    ]
}

fn all_weight_models() -> Vec<WeightModel> {
    vec![
        WeightModel::Constant(1.0),
        WeightModel::Uniform { lo: 0.5, hi: 20.0 },
        WeightModel::Exponential { mean: 3.0 },
        WeightModel::Zipf {
            exponent: 1.3,
            scale: 50.0,
        },
        WeightModel::DegreeProportional {
            base: 1.0,
            slope: 1.0,
        },
        WeightModel::DegreeInverse { scale: 30.0 },
    ]
}

#[test]
fn every_generator_produces_valid_structure() {
    for (name, g) in all_generators() {
        check_structure(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn full_pipeline_on_every_generator() {
    for (name, g) in all_generators() {
        let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, 11);
        let wg = WeightedGraph::new(g, w);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 17));
        res.cover
            .verify(&wg.graph)
            .unwrap_or_else(|e| panic!("{name}: uncovered edge {e:?}"));
        if wg.num_edges() > 0 {
            let eidx = EdgeIndex::build(&wg.graph);
            let ratio = res
                .certificate
                .certified_ratio(&wg, &eidx, res.cover.weight(&wg));
            assert!(ratio <= 2.0 + 30.0 * EPS, "{name}: certified ratio {ratio}");
        }
    }
}

#[test]
fn full_pipeline_on_every_weight_model() {
    let g = gnm(600, 9600, 21);
    for model in all_weight_models() {
        let wg = WeightedGraph::new(g.clone(), model.sample(&g, 5));
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 23));
        res.cover
            .verify(&wg.graph)
            .unwrap_or_else(|e| panic!("{}: uncovered {e:?}", model.label()));
        let central = solve_centralized(&wg, EPS, 23);
        central.cover.verify(&wg.graph).unwrap();
        let eidx = EdgeIndex::build(&wg.graph);
        let lp = lp_optimum(&wg);

        // The centralized run's dual is tight enough to certify the
        // (2+30eps) guarantee directly.
        let w_central = central.cover.weight(&wg);
        let central_ratio = central.certificate.certified_ratio(&wg, &eidx, w_central);
        assert!(
            central_ratio <= 2.0 + 30.0 * EPS,
            "central/{}: certified ratio {central_ratio}",
            model.label()
        );

        // The MPC run's certificate is *sound* but not uniformly tight:
        // at eps = 0.1 (beyond the eps < 1/16 regime where the paper's
        // dual accounting is lossless) heavy-tailed weights such as Zipf
        // leave the dual well below LP*, so asserting the (2+30eps)
        // guarantee through the certificate alone is wrong. Assert the
        // guarantee on the *true* quality against LP* instead. The
        // theoretically implied bound is w <= (2+30eps)·OPT with
        // OPT <= 2·LP*; asserting w <= (2+30eps)·LP* is stronger than
        // the theorem guarantees, but it holds with > 2x margin on every
        // seeded instance here (observed max w/LP* ~ 2.1) and is the
        // regression guard that actually bites — the 2·LP* slack would
        // tolerate a 10x-LP* cover. Separately, the certificate must
        // stay a valid lower bound (never above LP* <= OPT).
        let w_mpc = res.cover.weight(&wg);
        assert!(
            w_mpc <= (2.0 + 30.0 * EPS) * lp.value + 1e-6,
            "mpc/{}: weight {w_mpc} vs LP* {} (ratio {:.3})",
            model.label(),
            lp.value,
            w_mpc / lp.value
        );
        let lb = res.certificate.lower_bound(&wg, &eidx);
        assert!(
            lb > 0.0 && lb <= lp.value + 1e-6,
            "mpc/{}: certificate lower bound {lb} exceeds LP* {}",
            model.label(),
            lp.value
        );
    }
}

#[test]
fn algorithms_ordered_by_quality_on_planted_instances() {
    // On planted instances the optimum is known exactly: every algorithm
    // must sit in [OPT, guarantee * OPT].
    let inst = planted_cover(120, 3, 0.08, 10.0, 31);
    let wg = &inst.graph;
    let mpc = run_reference(wg, &MpcMwvcConfig::practical(EPS, 37));
    let central = solve_centralized(wg, EPS, 37);
    let bye = bar_yehuda_even(wg);
    let greedy = greedy_ratio_cover(wg);
    for (name, w) in [
        ("mpc", mpc.cover.weight(wg)),
        ("central", central.cover.weight(wg)),
        ("bye", bye.cover.weight(wg)),
        ("greedy", greedy.weight(wg)),
    ] {
        assert!(w >= inst.opt_weight - 1e-9, "{name} beat OPT");
        assert!(
            w <= (2.0 + 30.0 * EPS) * inst.opt_weight,
            "{name}: {w} vs OPT {}",
            inst.opt_weight
        );
    }
}

#[test]
fn lp_bound_sandwiches_every_algorithm() {
    let g = gnm(500, 6000, 41);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Exponential { mean: 4.0 }.sample(&g, 13),
    );
    let lp = lp_optimum(&wg);
    assert!(lp.verify(&wg, 1e-7));
    let mpc = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 43));
    let w = mpc.cover.weight(&wg);
    assert!(w >= lp.value - 1e-6, "no cover can beat the LP bound");
    assert!(
        w <= 2.0 * (2.0 + 30.0 * EPS) * lp.value,
        "sanity: within guarantee of 2*LP >= OPT"
    );
}

#[test]
fn paper_and_practical_profiles_both_solve() {
    let g = gnm(800, 12800, 51);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Uniform { lo: 1.0, hi: 5.0 }.sample(&g, 3),
    );
    for cfg in [
        MpcMwvcConfig::paper(EPS, 1),
        MpcMwvcConfig::practical(EPS, 1),
    ] {
        let res = run_reference(&wg, &cfg);
        res.cover.verify(&wg.graph).unwrap();
    }
}

#[test]
fn unweighted_equals_weight_one() {
    // WeightedGraph::unweighted and Constant(1.0) must behave identically.
    let g = gnm(300, 2400, 61);
    let a = WeightedGraph::unweighted(g.clone());
    let b = WeightedGraph::new(g.clone(), WeightModel::Constant(1.0).sample(&g, 0));
    let cfg = MpcMwvcConfig::practical(EPS, 71);
    let ra = run_reference(&a, &cfg);
    let rb = run_reference(&b, &cfg);
    assert_eq!(ra.cover, rb.cover);
}
