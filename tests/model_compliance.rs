//! Integration tests of MPC-model compliance: the distributed executor
//! must genuinely fit the near-linear memory regime, and the simulator's
//! accounting must be self-consistent end-to-end.

use mwvc_repro::core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_repro::core::mpc::MpcMwvcConfig;
use mwvc_repro::graph::{generators::gnm, WeightModel, WeightedGraph};
use mwvc_repro::sim::congested_clique::simulate_on_clique;
use mwvc_repro::sim::{MemoryRegime, MpcConfig};

const EPS: f64 = 0.1;

fn instance(n: usize, d: usize, seed: u64) -> WeightedGraph {
    let g = gnm(n, n * d / 2, seed);
    let w = WeightModel::Uniform { lo: 1.0, hi: 8.0 }.sample(&g, seed);
    WeightedGraph::new(g, w)
}

#[test]
fn recommended_cluster_is_near_linear() {
    for &(n, d) in &[(500usize, 16usize), (2000, 32), (4000, 64)] {
        let wg = instance(n, d, 3);
        let cfg = MpcMwvcConfig::practical(EPS, 5);
        let cluster = recommended_cluster(&wg, &cfg);
        // S = O(n): the near-linear regime with a modest constant.
        assert!(cluster.memory_words >= n);
        assert!(
            cluster.memory_words <= 120 * n,
            "S = {} for n = {n} is not near-linear",
            cluster.memory_words
        );
        // The cluster can hold the input.
        assert!(cluster.total_memory_words() >= 3 * wg.num_edges());
    }
}

#[test]
fn strict_enforcement_passes_on_recommended_sizing() {
    let wg = instance(1500, 48, 7);
    let cfg = MpcMwvcConfig::practical(EPS, 9);
    // Strict mode: any violation panics. Completing the run *is* the test.
    let out = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    out.cover.verify(&wg.graph).unwrap();
    assert!(out.trace.is_clean());
}

#[test]
fn audit_mode_on_undersized_cluster_reports_violations() {
    let wg = instance(800, 32, 11);
    let cfg = MpcMwvcConfig::practical(EPS, 13);
    let mut cluster = recommended_cluster(&wg, &cfg);
    // Shrink memory below what the dataflow needs; audit mode must
    // complete and report the breaches instead of panicking.
    cluster.memory_words /= 20;
    let out = run_distributed(&wg, &cfg, cluster.audited());
    out.cover.verify(&wg.graph).unwrap();
    assert!(
        !out.trace.violations.is_empty(),
        "a 20x-undersized cluster cannot be violation-free"
    );
}

#[test]
fn trace_accounting_is_self_consistent() {
    let wg = instance(1000, 32, 17);
    let cfg = MpcMwvcConfig::practical(EPS, 19);
    let out = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    let trace = &out.trace;
    for r in &trace.rounds {
        // A machine's max send/receive cannot exceed the round's total.
        assert!(r.max_sent <= r.total_traffic);
        assert!(r.max_received <= r.total_traffic);
    }
    assert_eq!(
        trace.total_traffic(),
        trace.rounds.iter().map(|r| r.total_traffic).sum::<usize>()
    );
    assert!(trace.peak_resident() >= trace.rounds.iter().map(|r| r.max_resident).max().unwrap());
}

#[test]
fn congested_clique_translation_is_constant_overhead() {
    let n = 2000;
    let wg = instance(n, 32, 23);
    let cfg = MpcMwvcConfig::practical(EPS, 29);
    let out = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
    let clique = simulate_on_clique(&out.trace, n);
    // Semi-MPC ≡ congested clique with constant overhead [BDH18]: each
    // near-linear round costs O(S/n) = O(1) clique rounds.
    assert!(clique.rounds >= out.trace.num_rounds());
    assert!(
        clique.rounds <= 40 * out.trace.num_rounds(),
        "{} clique rounds for {} MPC rounds",
        clique.rounds,
        out.trace.num_rounds()
    );
}

#[test]
fn memory_regime_helpers_scale_as_documented() {
    let n = 1_000_000;
    let sub = MemoryRegime::StronglySublinear { beta: 0.5 }.memory_words(n);
    let lin = MemoryRegime::NearLinear { factor: 8.0 }.memory_words(n);
    let sup = MemoryRegime::StronglySuperlinear { beta: 0.5 }.memory_words(n);
    assert_eq!(sub, 1000); // n^0.5
    assert_eq!(lin, 8_000_000); // 8n
    assert_eq!(sup, 1_000_000_000); // n^1.5
    let cfg = MpcConfig::for_input(n, 64_000_000, MemoryRegime::NearLinear { factor: 8.0 });
    assert_eq!(cfg.num_machines, 8);
}
