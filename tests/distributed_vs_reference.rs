//! Integration test: the message-passing executor and the in-memory
//! reference executor run the *same algorithm* — same partitions, same
//! thresholds, same freezes — across instance families, profiles and
//! seeds, while staying inside the MPC model's memory budget.

use mwvc_repro::core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_repro::core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_repro::graph::generators::{chung_lu, gnm, planted_cover};
use mwvc_repro::graph::{WeightModel, WeightedGraph};

const EPS: f64 = 0.1;

fn assert_equivalent(wg: &WeightedGraph, cfg: &MpcMwvcConfig, label: &str) {
    let cluster = recommended_cluster(wg, cfg);
    let dist = run_distributed(wg, cfg, cluster);
    let reference = run_reference(wg, cfg);
    assert_eq!(dist.phases, reference.num_phases(), "{label}: phase count");
    assert_eq!(dist.cover, reference.cover, "{label}: covers");
    assert_eq!(dist.stalled, reference.stalled, "{label}: stall flag");
    for (i, (a, b)) in dist
        .certificate
        .x
        .iter()
        .zip(&reference.certificate.x)
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{label}: edge {i} dual {a} vs {b}"
        );
    }
    assert!(dist.trace.is_clean(), "{label}: model violations");
}

#[test]
fn equivalent_on_erdos_renyi_across_seeds() {
    for seed in [1u64, 2, 3] {
        let g = gnm(500, 8000, seed);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 6.0 }.sample(&g, seed),
        );
        let cfg = MpcMwvcConfig::practical(EPS, 100 + seed);
        assert_equivalent(&wg, &cfg, &format!("er seed {seed}"));
    }
}

#[test]
fn equivalent_on_power_law() {
    let g = chung_lu(800, 2.3, 24.0, 7);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Zipf {
            exponent: 1.2,
            scale: 40.0,
        }
        .sample(&g, 7),
    );
    assert_equivalent(&wg, &MpcMwvcConfig::practical(EPS, 7), "chung-lu");
}

#[test]
fn equivalent_on_planted_instances() {
    let inst = planted_cover(80, 3, 0.1, 6.0, 9);
    assert_equivalent(&inst.graph, &MpcMwvcConfig::practical(EPS, 9), "planted");
}

#[test]
fn equivalent_under_paper_profile() {
    let g = gnm(300, 3000, 13);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Exponential { mean: 2.0 }.sample(&g, 13),
    );
    assert_equivalent(&wg, &MpcMwvcConfig::paper(EPS, 5), "paper profile");
}

#[test]
fn equivalent_under_alternative_init_schemes() {
    use mwvc_repro::core::InitScheme;
    let g = gnm(400, 6400, 17);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Uniform { lo: 1.0, hi: 4.0 }.sample(&g, 17),
    );
    for init in [InitScheme::MaxDegree, InitScheme::Uniform] {
        let mut cfg = MpcMwvcConfig::practical(EPS, 19);
        cfg.init = init;
        assert_equivalent(&wg, &cfg, init.label());
    }
}

#[test]
fn equivalent_with_fixed_thresholds() {
    use mwvc_repro::core::ThresholdScheme;
    let g = gnm(400, 6400, 23);
    let wg = WeightedGraph::new(
        g.clone(),
        WeightModel::Uniform { lo: 1.0, hi: 4.0 }.sample(&g, 23),
    );
    let mut cfg = MpcMwvcConfig::practical(EPS, 29);
    cfg.thresholds = ThresholdScheme::FixedMidpoint;
    assert_equivalent(&wg, &cfg, "fixed thresholds");
}
