//! Thread-count determinism: the full pipeline — generators, reference
//! executor, distributed executor — must produce **bit-identical** output
//! on pools of 1, 2, and N threads, under **both** round schedulers
//! (barrier and dependency-pipelined).
//!
//! This is the contract the vendored work-stealing `rayon` promises
//! (order-preserving indexed collects, fixed-shape reductions) verified
//! end-to-end through every layer that uses it. Any scheduling
//! sensitivity anywhere in the tree fails these tests.

use mwvc_repro::core::mpc::{
    recommended_cluster, run_distributed, run_outofcore, run_reference, DistributedOutcome,
    MpcMwvcConfig, OocConfig,
};
use mwvc_repro::graph::generators::RmatParams;
use mwvc_repro::graph::generators::{chung_lu, gnm, gnp, random_bipartite, random_regular, rmat};
use mwvc_repro::graph::{StreamingGraphBuilder, WeightModel, WeightedGraph};
use mwvc_repro::roundcompress;
use mwvc_repro::sim::{MemoryBudget, MpcConfig, RoundScheduler};
use rayon::ThreadPool;

const EPS: f64 = 0.1;
const SEED: u64 = 4242;

/// The pool widths every artifact is checked across. 1 is the inline
/// sequential baseline; 2 and 5 exercise genuinely different stealing
/// patterns.
const POOL_WIDTHS: [usize; 3] = [1, 2, 5];

fn pools() -> Vec<(usize, ThreadPool)> {
    POOL_WIDTHS
        .iter()
        .map(|&t| {
            (
                t,
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .expect("build test pool"),
            )
        })
        .collect()
}

/// Runs `f` on every pool width and asserts all results equal the
/// 1-thread baseline under `check`.
fn assert_identical_across_pools<T>(f: impl Fn() -> T, check: impl Fn(&T, &T, usize)) {
    let runs: Vec<(usize, T)> = pools().iter().map(|(t, p)| (*t, p.install(&f))).collect();
    let (_, baseline) = &runs[0];
    for (t, run) in &runs[1..] {
        check(baseline, run, *t);
    }
}

fn instance() -> WeightedGraph {
    let g = gnm(2_000, 40_000, SEED); // d = 40: multiple phases under `practical`
    let w = WeightModel::Uniform { lo: 1.0, hi: 9.0 }.sample(&g, SEED ^ 1);
    WeightedGraph::new(g, w)
}

fn assert_outcomes_bit_identical(a: &DistributedOutcome, b: &DistributedOutcome, threads: usize) {
    assert_eq!(a.cover, b.cover, "covers diverged at {threads} threads");
    assert_eq!(
        a.certificate.x.len(),
        b.certificate.x.len(),
        "certificate length diverged at {threads} threads"
    );
    for (i, (x, y)) in a.certificate.x.iter().zip(&b.certificate.x).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "certificate edge {i} diverged at {threads} threads: {x} vs {y}"
        );
    }
    assert_eq!(
        a.phases, b.phases,
        "phase count diverged at {threads} threads"
    );
    // Name the observability streams before the whole-trace compare, so a
    // divergence there fails with a pointed message: the model-domain
    // event log and the per-machine critical-path rows are part of the
    // determinism contract (bit-identical across pool widths and across
    // both round schedulers).
    assert_eq!(
        a.trace.events, b.trace.events,
        "model-domain event streams diverged at {threads} threads"
    );
    assert_eq!(
        a.trace.critical_path.machine_rounds, b.trace.critical_path.machine_rounds,
        "per-machine critical-path rows diverged at {threads} threads"
    );
    assert_eq!(a.trace, b.trace, "traces diverged at {threads} threads");
}

#[test]
fn distributed_pipeline_is_bit_identical_across_thread_counts() {
    let wg = instance();
    let cfg = MpcMwvcConfig::practical(EPS, SEED);
    let cluster = recommended_cluster(&wg, &cfg);
    assert_identical_across_pools(
        || run_distributed(&wg, &cfg, cluster),
        assert_outcomes_bit_identical,
    );
}

#[test]
fn reference_executor_is_bit_identical_across_thread_counts() {
    let wg = instance();
    let cfg = MpcMwvcConfig::practical(EPS, SEED);
    assert_identical_across_pools(
        || run_reference(&wg, &cfg),
        |a, b, threads| {
            assert_eq!(a.cover, b.cover, "covers diverged at {threads} threads");
            for (i, (x, y)) in a.certificate.x.iter().zip(&b.certificate.x).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "certificate edge {i} diverged at {threads} threads"
                );
            }
            assert_eq!(
                a.phases, b.phases,
                "phase stats diverged at {threads} threads"
            );
        },
    );
}

#[test]
fn generators_reproduce_identically_across_thread_counts() {
    assert_identical_across_pools(
        || {
            (
                gnp(3_000, 0.01, SEED),
                gnm(3_000, 30_000, SEED),
                chung_lu(3_000, 2.3, 12.0, SEED),
                rmat(11, 10, RmatParams::default(), SEED),
                random_bipartite(1_500, 1_500, 0.008, SEED),
                random_regular(3_000, 10, SEED),
            )
        },
        |a, b, threads| {
            assert_eq!(a.0, b.0, "gnp diverged at {threads} threads");
            assert_eq!(a.1, b.1, "gnm diverged at {threads} threads");
            assert_eq!(a.2, b.2, "chung_lu diverged at {threads} threads");
            assert_eq!(a.3, b.3, "rmat diverged at {threads} threads");
            assert_eq!(a.4, b.4, "random_bipartite diverged at {threads} threads");
            assert_eq!(a.5, b.5, "random_regular diverged at {threads} threads");
        },
    );
}

#[test]
fn weights_reproduce_identically_across_thread_counts() {
    let g = gnm(2_000, 20_000, SEED);
    for model in [
        WeightModel::Uniform { lo: 0.5, hi: 20.0 },
        WeightModel::Exponential { mean: 4.0 },
    ] {
        assert_identical_across_pools(
            || model.sample(&g, SEED ^ 7),
            |a, b, threads| {
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "weight {i} diverged at {threads} threads"
                    );
                }
            },
        );
    }
}

/// The pipelined scheduler is a pure host optimization: at every pool
/// width, a pipelined distributed run is bit-identical — cover,
/// certificate, trace (including the critical path) — to the 1-thread
/// **barrier** baseline, which stays the reference oracle.
#[test]
fn pipelined_scheduler_is_bit_identical_to_barrier_across_thread_counts() {
    let wg = instance();
    let barrier_cfg = MpcMwvcConfig::practical(EPS, SEED);
    let pipelined_cfg =
        MpcMwvcConfig::practical(EPS, SEED).with_scheduler(RoundScheduler::Pipelined);
    let baseline_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("build baseline pool");
    let baseline = baseline_pool
        .install(|| run_distributed(&wg, &barrier_cfg, recommended_cluster(&wg, &barrier_cfg)));
    for (t, pool) in pools() {
        let run = pool.install(|| {
            run_distributed(
                &wg,
                &pipelined_cfg,
                recommended_cluster(&wg, &pipelined_cfg),
            )
        });
        assert_outcomes_bit_identical(&baseline, &run, t);
        assert_eq!(
            baseline.round_wall.len(),
            run.round_wall.len(),
            "round count diverged at {t} threads"
        );
    }
}

/// Same cross-scheduler contract for the round-compression executor:
/// pipelined runs at every pool width reproduce the 1-thread barrier
/// baseline bit-for-bit.
#[test]
fn roundcompress_pipelined_is_bit_identical_to_barrier_across_thread_counts() {
    let wg = instance();
    let barrier_cfg = roundcompress::RoundCompressConfig::practical(EPS, SEED);
    let pipelined_cfg = roundcompress::RoundCompressConfig::practical(EPS, SEED)
        .with_scheduler(RoundScheduler::Pipelined);
    let baseline_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("build baseline pool");
    let baseline = baseline_pool.install(|| {
        let cluster = roundcompress::recommended_cluster(&wg, &barrier_cfg);
        roundcompress::run_roundcompress(&wg, &barrier_cfg, cluster)
    });
    for (t, pool) in pools() {
        let run = pool.install(|| {
            let cluster = roundcompress::recommended_cluster(&wg, &pipelined_cfg);
            roundcompress::run_roundcompress(&wg, &pipelined_cfg, cluster)
        });
        assert_eq!(baseline.cover, run.cover, "covers diverged at {t} threads");
        for (i, (x, y)) in baseline
            .certificate
            .x
            .iter()
            .zip(&run.certificate.x)
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "certificate edge {i} diverged at {t} threads: {x} vs {y}"
            );
        }
        assert_eq!(baseline.trace, run.trace, "traces diverged at {t} threads");
    }
}

/// The enforced memory budget is invisible to everything the model
/// gates: an out-of-core run whose shards are forced into spill files
/// produces the same cover, the same dual loads **bit for bit**, and the
/// same per-round message statistics as a fully resident run — at every
/// pool width. Only the residency/spill statistics may differ.
#[test]
fn outofcore_spill_is_bit_identical_to_resident_across_thread_counts() {
    let n = 1_500;
    let g = gnm(n, 12_000, SEED);
    let path = std::env::temp_dir().join(format!("det-ooc-{}.ocsr", std::process::id()));
    let mut b = StreamingGraphBuilder::new(n, 1 << 16, None);
    for e in g.edges() {
        b.add_edge(e.u(), e.v());
    }
    let csr = b.finish(&path).expect("build streaming csr");
    let weights = WeightModel::Uniform { lo: 1.0, hi: 9.0 }
        .sample(&g, SEED ^ 3)
        .as_slice()
        .to_vec();
    let cfg = OocConfig {
        batch_words: 256,
        ..OocConfig::default()
    };
    // S = 16_000 holds the per-vertex state and the coordinator's inbox,
    // but not the ~8_000-word shards: every machine must spill. Enforced
    // turns any unspilled excess into a panic, so passing proves the
    // budget was honored, not merely recorded.
    let small = MpcConfig::new(3, 16_000).with_budget(MemoryBudget::Enforced);
    let big = MpcConfig::new(3, 1 << 20);

    let baseline_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("build baseline pool");
    let resident =
        baseline_pool.install(|| run_outofcore(&csr, &weights, &cfg, big).expect("resident run"));
    assert_eq!(resident.trace.total_spill(), 0, "big budget must not spill");

    for (t, pool) in pools() {
        let spilled =
            pool.install(|| run_outofcore(&csr, &weights, &cfg, small).expect("spilled run"));
        assert!(
            spilled.trace.total_spill() > 0,
            "small budget must spill at {t} threads"
        );
        assert!(spilled.trace.summary().peak_resident_words <= 16_000);
        assert_eq!(
            resident.cover, spilled.cover,
            "covers diverged under spill at {t} threads"
        );
        for (i, (x, y)) in resident.loads.iter().zip(&spilled.loads).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "dual load {i} diverged under spill at {t} threads"
            );
        }
        assert_eq!(resident.iterations, spilled.iterations);
        assert_eq!(resident.trace.rounds.len(), spilled.trace.rounds.len());
        for (a, b) in resident.trace.rounds.iter().zip(&spilled.trace.rounds) {
            // Everything message-side is budget-independent; only
            // max_resident and spill_words may (and do) differ.
            assert_eq!(a.label, b.label, "round labels diverged at {t} threads");
            assert_eq!(a.max_sent, b.max_sent, "{}: sent diverged at {t}", a.label);
            assert_eq!(
                a.max_received, b.max_received,
                "{}: received diverged at {t}",
                a.label
            );
            assert_eq!(
                a.total_traffic, b.total_traffic,
                "{}: traffic diverged at {t}",
                a.label
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn repeated_runs_in_one_pool_are_stable() {
    // Not just across pools: two runs inside the same multi-threaded pool
    // (different stealing schedules) must also agree bit-for-bit.
    let wg = instance();
    let cfg = MpcMwvcConfig::practical(EPS, SEED);
    let cluster = recommended_cluster(&wg, &cfg);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = pool.install(|| run_distributed(&wg, &cfg, cluster));
    let b = pool.install(|| run_distributed(&wg, &cfg, cluster));
    assert_outcomes_bit_identical(&a, &b, 4);
}
