//! Property-based tests (proptest) over random graphs, weights and
//! configurations: the invariants every component must hold for *any*
//! input, not just the curated unit-test instances.

use mwvc_repro::baselines::{bar_yehuda_even, exact_mwvc, lp_optimum};
use mwvc_repro::core::init::is_valid_fractional_matching;
use mwvc_repro::core::mpc::{run_outofcore, run_reference, MpcMwvcConfig, OocConfig};
use mwvc_repro::core::solve_centralized;
use mwvc_repro::graph::{
    EdgeIndex, Graph, StreamingGraphBuilder, VertexWeights, WeightModel, WeightedGraph,
};
use mwvc_repro::sim::MpcConfig;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per proptest case so shrink replays never race on
/// a shared file.
fn scratch_ocsr() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("prop-ooc-{}-{id}.ocsr", std::process::id()))
}

/// Random simple graph as (n, canonical edge set).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            Graph::from_edges(n, &edges)
        })
    })
}

fn arb_weighted(max_n: usize, max_m: usize) -> impl Strategy<Value = WeightedGraph> {
    arb_graph(max_n, max_m).prop_flat_map(|g| {
        let n = g.num_vertices();
        proptest::collection::vec(0.1f64..100.0, n)
            .prop_map(move |w| WeightedGraph::new(g.clone(), VertexWeights::from_vec(w)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The centralized algorithm always returns a valid cover with a
    /// feasible dual certificate within the (2+10eps) accounting.
    #[test]
    fn centralized_invariants(wg in arb_weighted(40, 160), seed in 0u64..1000) {
        let eps = 0.1;
        let res = solve_centralized(&wg, eps, seed);
        prop_assert!(res.cover.verify(&wg.graph).is_ok());
        let eidx = EdgeIndex::build(&wg.graph);
        prop_assert!(is_valid_fractional_matching(
            &wg.graph, &eidx, wg.weights.as_slice(), &res.certificate.x, 1e-7,
        ));
        if wg.num_edges() > 0 {
            let wc = res.cover.weight(&wg);
            prop_assert!(wc <= 2.0 / (1.0 - 4.0 * eps) * res.certificate.value() + 1e-7);
        }
    }

    /// Algorithm 2 always returns a valid cover whose certified ratio
    /// stays within the paper guarantee.
    #[test]
    fn mpc_invariants(wg in arb_weighted(40, 200), seed in 0u64..1000) {
        let eps = 0.1;
        let res = run_reference(&wg, &MpcMwvcConfig::practical(eps, seed));
        prop_assert!(res.cover.verify(&wg.graph).is_ok());
        if wg.num_edges() > 0 {
            let eidx = EdgeIndex::build(&wg.graph);
            let ratio = res.certificate.certified_ratio(&wg, &eidx, res.cover.weight(&wg));
            prop_assert!(ratio <= 2.0 + 30.0 * eps, "ratio {}", ratio);
        }
    }

    /// The exact optimum is sandwiched by the LP bound and undercuts
    /// every approximation.
    #[test]
    fn exact_lp_sandwich(wg in arb_weighted(24, 60), seed in 0u64..1000) {
        let opt = exact_mwvc(&wg).weight;
        let lp = lp_optimum(&wg);
        prop_assert!(lp.verify(&wg, 1e-6));
        prop_assert!(lp.value <= opt + 1e-6);
        prop_assert!(opt <= 2.0 * lp.value + 1e-6);
        let bye = bar_yehuda_even(&wg);
        prop_assert!(bye.cover.verify(&wg.graph).is_ok());
        prop_assert!(bye.cover.weight(&wg) <= 2.0 * opt + 1e-6);
        prop_assert!(bye.cover.weight(&wg) >= opt - 1e-6);
        let mpc = run_reference(&wg, &MpcMwvcConfig::practical(0.1, seed));
        prop_assert!(mpc.cover.weight(&wg) >= opt - 1e-6);
    }

    /// Graph construction invariants: CSR round-trips the edge set.
    #[test]
    fn graph_roundtrip(g in arb_graph(60, 300)) {
        let edges = g.edge_vec();
        let rebuilt = Graph::from_edges(
            g.num_vertices(),
            &edges.iter().map(|e| (e.u(), e.v())).collect::<Vec<_>>(),
        );
        prop_assert_eq!(g, rebuilt);
    }

    /// Edge-index invariants: every id maps back to its edge, incidence
    /// covers each edge exactly twice.
    #[test]
    fn edge_index_consistency(g in arb_graph(50, 250)) {
        let eidx = EdgeIndex::build(&g);
        prop_assert_eq!(eidx.num_edges(), g.num_edges());
        let mut seen = vec![0u32; eidx.num_edges()];
        for v in g.vertices() {
            for (u, eid) in eidx.incident(&g, v) {
                prop_assert!(eidx.edge(eid).is_incident(v));
                prop_assert!(eidx.edge(eid).is_incident(u));
                seen[eid as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 2));
    }

    /// The per-machine memory budget is invisible to every gated field:
    /// a random budget changes only residency/spill statistics, never
    /// the cover, the dual loads (bit for bit), the iteration count, or
    /// the per-round message traffic. Budgets too small to hold the
    /// mandatory per-vertex state are a clean `Err`, not a divergence.
    #[test]
    fn outofcore_budget_never_changes_gated_fields(
        g in arb_graph(36, 120),
        machines in 1usize..4,
        budget in 2_000usize..40_000,
        batch_shift in 3u32..8,
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let path = scratch_ocsr();
        let mut b = StreamingGraphBuilder::new(n, 1 << 12, None);
        for e in g.edge_vec() {
            b.add_edge(e.u(), e.v());
        }
        let csr = b.finish(&path).expect("build streaming csr");
        let weights = WeightModel::Uniform { lo: 1.0, hi: 9.0 }
            .sample(&g, seed)
            .as_slice()
            .to_vec();
        let cfg = OocConfig {
            batch_words: 1usize << batch_shift,
            ..OocConfig::default()
        };
        let baseline = run_outofcore(&csr, &weights, &cfg, MpcConfig::new(machines, 1 << 22))
            .expect("roomy budget must run");
        let capped = run_outofcore(&csr, &weights, &cfg, MpcConfig::new(machines, budget));
        std::fs::remove_file(path).ok();
        let capped = match capped {
            Ok(out) => out,
            // Below the floor the executor refuses to start; that is the
            // documented contract, not a property violation.
            Err(e) => {
                prop_assert!(e.contains("budget"), "unexpected error: {}", e);
                return Ok(());
            }
        };
        prop_assert_eq!(&baseline.cover, &capped.cover);
        prop_assert_eq!(baseline.iterations, capped.iterations);
        for (x, y) in baseline.loads.iter().zip(&capped.loads) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(baseline.trace.rounds.len(), capped.trace.rounds.len());
        for (a, b) in baseline.trace.rounds.iter().zip(&capped.trace.rounds) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(a.max_sent, b.max_sent);
            prop_assert_eq!(a.max_received, b.max_received);
            prop_assert_eq!(a.total_traffic, b.total_traffic);
        }
    }

    /// Certificates never overstate the lower bound: scaling the dual to
    /// feasibility keeps it below the exact optimum.
    #[test]
    fn certificate_lower_bounds_opt(wg in arb_weighted(22, 50), seed in 0u64..100) {
        if wg.num_edges() == 0 {
            return Ok(());
        }
        let opt = exact_mwvc(&wg).weight;
        let res = run_reference(&wg, &MpcMwvcConfig::practical(0.1, seed));
        let eidx = EdgeIndex::build(&wg.graph);
        let lb = res.certificate.lower_bound(&wg, &eidx);
        prop_assert!(lb <= opt + 1e-6, "lb {} vs opt {}", lb, opt);
    }
}
