#!/usr/bin/env bash
# Markdown link check: every relative link in the repo's tracked .md
# files must point at an existing file or directory. External URLs and
# pure anchors are skipped (this is an offline repo — nothing should
# depend on the network, and in-page anchors are rustdoc/GitHub's
# problem). Run from anywhere; CI runs it in the lint job.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

fail=0
while IFS= read -r file; do
    dir="$(dirname "$file")"
    # Pull out the (target) of every [text](target) on the page.
    while IFS= read -r link; do
        [ -n "$link" ] || continue
        case "$link" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        target="${link%%#*}"
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "broken link in $file: ($link)" >&2
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))$/\1/')
done < <(git ls-files '*.md' ':!vendor/**')

if [ "$fail" -ne 0 ]; then
    echo "link check failed" >&2
fi
exit "$fail"
