//! Fixture: `unsafe` uses without `// SAFETY:` justifications.

pub fn first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

pub struct RawPtr(pub *mut u8);

unsafe impl Send for RawPtr {}

pub fn documented(v: &[u8]) -> u8 {
    // SAFETY: the caller passed a non-empty slice... except this fixture
    // only demonstrates that a justified line is NOT flagged.
    unsafe { *v.as_ptr() }
}
