//! Fixture: the pipelined scheduler reaching for `std::sync` atomics
//! instead of the `crate::sync` facade — the loom build would silently
//! stop checking the readiness protocol.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Board {
    pub remaining: AtomicUsize,
}

impl Board {
    pub fn deliver(&self, n: usize) -> bool {
        self.remaining.fetch_sub(n, Ordering::AcqRel) == n
    }
}
