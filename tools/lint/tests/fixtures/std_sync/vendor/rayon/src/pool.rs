//! Fixture: the pool importing `std::sync` instead of the facade.

use std::sync::{Condvar, Mutex};

pub struct PoolState {
    pub lock: Mutex<usize>,
    pub cv: Condvar,
}
