//! Fixture: a hot message enum without its size const assert.

pub enum Msg {
    Degree(u64),
    Offer { weight: u64, round: u32 },
}
