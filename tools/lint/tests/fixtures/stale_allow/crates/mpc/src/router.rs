//! Fixture: a clean pinned module whose allowlist still carries an entry
//! for a line that no longer exists.

pub fn route_hot_path(staged: &mut [u64]) {
    staged.sort_unstable();
}
