//! Fixture: panicking result-taps in a recovery-critical module. The
//! `.unwrap()` and `.expect(...)` on I/O results fire; the allowlisted
//! infallible conversion and the test module do not.

use std::io::Write;

pub fn spill_hot_path(buf: &mut Vec<u8>) -> u32 {
    buf.write_all(&[1, 2, 3]).unwrap();
    buf.flush().expect("flush spill buffer");
    u32::from_le_bytes(buf[0..4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    // Test code may assert with unwrap freely: not flagged.
    #[test]
    fn tests_are_exempt() {
        let mut buf = Vec::new();
        super::spill_hot_path(&mut buf);
        assert_eq!(buf.len(), 3);
        "7".parse::<u32>().unwrap();
    }
}
