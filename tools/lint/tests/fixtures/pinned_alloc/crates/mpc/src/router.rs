//! Fixture: allocation constructs in a zero-allocation-pinned module,
//! with no allowlist covering them.

pub fn route_hot_path() -> Vec<u64> {
    let mut staged = Vec::new();
    staged.push(1);
    let also = staged.clone();
    let padding = vec![0u64; 4];
    staged.extend(also);
    staged.extend(padding);
    staged
}

#[cfg(test)]
mod tests {
    // Test code may allocate freely: not flagged.
    #[test]
    fn tests_are_exempt() {
        let v = vec![1, 2, 3];
        assert_eq!(v.clone(), v);
    }
}
