//! Fixture: the mpc crate root missing its unsafe-op deny attribute.

pub mod router {}
