//! Fixture: a trace invocation that builds an owned value per event in a
//! zero-allocation-pinned module.

pub fn route_hot_path(round: u64, words: u64) -> u64 {
    // Clean call: plain integer fields only, must not fire.
    tracing::event!(
        tracing::Level::Debug,
        "route.segment",
        round = round,
        words = words
    );
    // Allocating call: formats a string per event, must fire.
    tracing::event!(
        tracing::Level::Debug,
        "route.segment",
        label = format!("round {round}"),
        words = words
    );
    round + words
}

#[cfg(test)]
mod tests {
    // Test code may allocate in trace calls freely: not flagged.
    #[test]
    fn tests_are_exempt() {
        tracing::event!(tracing::Level::Debug, "t", s = format!("x"));
    }
}
