//! Fixture: allocation constructs on the pipelined scheduler's
//! steady-state path, with no allowlist covering them.

pub fn arm_round(region_lens: &[usize]) -> Vec<usize> {
    let mut counters = Vec::new();
    for &len in region_lens {
        counters.push(len + 1);
    }
    let snapshot = counters.clone();
    counters.extend(snapshot);
    counters
}

#[cfg(test)]
mod tests {
    // Test code may allocate freely: not flagged.
    #[test]
    fn tests_are_exempt() {
        let v = vec![1, 2, 3];
        assert_eq!(v.clone(), v);
    }
}
