//! The lint gate's own gate: every violation class fires on its fixture
//! tree, and the real repository tree is clean.

use repo_lint::{lint_tree, Rule, Violation};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // tools/lint -> tools -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/lint sits two levels under the repo root")
        .to_path_buf()
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    lint_tree(&root).expect("fixture tree must scan cleanly")
}

/// Asserts the fixture yields at least one violation of `rule` (so the
/// binary exits non-zero on it) and names the expected file.
fn assert_fires(name: &str, rule: Rule, file: &str) -> Vec<Violation> {
    let violations = lint_fixture(name);
    assert!(
        violations.iter().any(|v| v.rule == rule && v.file == file),
        "fixture {name:?} must trip {:?} in {file}; got: {violations:?}",
        rule.id(),
    );
    violations
}

#[test]
fn real_tree_is_clean() {
    let violations = lint_tree(&repo_root()).expect("repo tree must scan cleanly");
    assert!(
        violations.is_empty(),
        "the repository must pass its own lint gate:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn missing_safety_comment_fires() {
    let violations = assert_fires(
        "missing_safety",
        Rule::SafetyComment,
        "crates/fix/src/lib.rs",
    );
    // The unjustified block and the unjustified `unsafe impl` are both
    // flagged; the justified block is not.
    let lines: Vec<usize> = violations
        .iter()
        .filter(|v| v.rule == Rule::SafetyComment)
        .map(|v| v.line)
        .collect();
    assert_eq!(lines, vec![4, 9], "exactly the two unjustified sites");
}

#[test]
fn missing_deny_attr_fires() {
    assert_fires("missing_deny", Rule::DenyAttr, "crates/mpc/src/lib.rs");
}

#[test]
fn std_sync_import_fires() {
    assert_fires("std_sync", Rule::SyncFacade, "vendor/rayon/src/pool.rs");
}

#[test]
fn pinned_allocation_fires() {
    let violations = assert_fires(
        "pinned_alloc",
        Rule::PinnedAlloc,
        "crates/mpc/src/router.rs",
    );
    let count = violations
        .iter()
        .filter(|v| v.rule == Rule::PinnedAlloc)
        .count();
    // `Vec::new(`, `.clone()`, and `vec![` each fire once; the test
    // module's allocations are exempt.
    assert_eq!(count, 3, "got: {violations:?}");
}

#[test]
fn std_sync_in_pipeline_fires() {
    // The pipelined scheduler is sync-facade-pinned exactly like the
    // pool: a direct `std::sync` atomic would dodge the loom build.
    assert_fires(
        "std_sync_pipeline",
        Rule::SyncFacade,
        "crates/mpc/src/pipeline.rs",
    );
}

#[test]
fn pinned_allocation_in_pipeline_fires() {
    let violations = assert_fires(
        "pinned_alloc_pipeline",
        Rule::PinnedAlloc,
        "crates/mpc/src/pipeline.rs",
    );
    let count = violations
        .iter()
        .filter(|v| v.rule == Rule::PinnedAlloc)
        .count();
    // `Vec::new(` and `.clone()` each fire once; the test module's
    // allocations are exempt.
    assert_eq!(count, 2, "got: {violations:?}");
}

#[test]
fn trace_allocation_fires() {
    let violations = assert_fires("trace_alloc", Rule::TraceAlloc, "crates/mpc/src/router.rs");
    let count = violations
        .iter()
        .filter(|v| v.rule == Rule::TraceAlloc)
        .count();
    // Only the `format!` call inside the second `event!` invocation fires;
    // the integer-field call and the test module are exempt.
    assert_eq!(count, 1, "got: {violations:?}");
}

#[test]
fn stale_allowlist_entry_fires() {
    assert_fires("stale_allow", Rule::StaleAllow, repo_lint::ALLOWLIST_PATH);
}

#[test]
fn io_unwrap_fires_with_exact_line_allowlist() {
    let violations = assert_fires("io_unwrap", Rule::IoUnwrap, "crates/mpc/src/spill.rs");
    let lines: Vec<usize> = violations
        .iter()
        .filter(|v| v.rule == Rule::IoUnwrap)
        .map(|v| v.line)
        .collect();
    // The `.unwrap()` and `.expect(` on I/O results fire; the
    // allowlisted infallible conversion and the test module are exempt —
    // and the allowlist entry is in use, so `stale-allow` stays quiet.
    assert_eq!(lines, vec![8, 9], "got: {violations:?}");
    assert!(
        violations.iter().all(|v| v.rule != Rule::StaleAllow),
        "the consumed allowlist entry must not be reported stale: {violations:?}"
    );
}

#[test]
fn missing_msg_size_assert_fires() {
    assert_fires(
        "missing_size_assert",
        Rule::MsgSizeAssert,
        "crates/fix/src/msg.rs",
    );
}
