//! `repo-lint` — the workspace's source-level policy gate.
//!
//! A deliberately simple line/token scanner (no `syn`, no parsing): each
//! rule is a textual invariant strong enough to catch the regressions we
//! care about and simple enough that a violation message points at the
//! exact line to fix. The rules:
//!
//! 1. **`safety-comment`** — every `unsafe` block or `unsafe impl` must
//!    be justified by a `// SAFETY:` comment on the same line or in the
//!    comment block immediately above. (`unsafe fn` declarations are
//!    exempt: their obligations are carried by `# Safety` doc sections
//!    and rule 2's `unsafe_op_in_unsafe_fn`, which forces justified
//!    interior blocks. `unsafe trait` contracts live in doc comments.)
//! 2. **`deny-attr`** — `crates/mpc/src/lib.rs` and
//!    `vendor/rayon/src/lib.rs` must keep
//!    `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 3. **`sync-facade`** — `vendor/rayon/src/pool.rs`,
//!    `vendor/rayon/src/scope.rs`, and `crates/mpc/src/pipeline.rs` must
//!    never name `std::sync` directly: all synchronization goes through
//!    the `crate::sync` facade so the loom build checks the exact
//!    primitives production uses.
//! 4. **`pinned-alloc`** — the zero-allocation-pinned fabric modules
//!    (`crates/mpc/src/router.rs`, `crates/mpc/src/cluster.rs`,
//!    `crates/mpc/src/pipeline.rs`) must not
//!    use `Vec::new(` / `Box::new(` / `vec![` / `.clone()` outside the
//!    entries of the allowlist file `tools/lint/zero_alloc_allow.txt`
//!    (setup paths and the naive oracle are allowlisted; steady-state
//!    paths are not).
//! 5. **`stale-allow`** — every allowlist entry must still match a line,
//!    so the allowlist shrinks with the code instead of rotting.
//! 6. **`msg-size-assert`** — any file declaring a hot message enum
//!    named exactly `Msg` must keep a `size_of::<Msg>() <= 24` const
//!    assertion (matched with whitespace stripped).
//! 7. **`trace-alloc`** — inside the pinned modules of rule 4, a
//!    `span!(`/`event!(` invocation must not contain an allocating
//!    construct (`format!`, `.to_string(`, `String::from(`, `.to_owned(`,
//!    `vec![`, `Vec::new(`, `Box::new(`, `.clone()`): instrumentation on
//!    the hot paths carries `&'static` metadata and integer fields only,
//!    and anything richer goes through the preallocated event rings.
//! 8. **`io-unwrap`** — the recovery-critical modules
//!    (`crates/mpc/src/spill.rs`, `crates/mpc/src/checkpoint.rs`,
//!    `crates/graph/src/outofcore.rs`) must not use `.unwrap(` /
//!    `.expect(` outside the entries of
//!    `tools/lint/io_unwrap_allow.txt`: an I/O failure on these paths is
//!    a *handled fault* (typed `ClusterError` / `Err(String)`), never a
//!    panic. The allowlist carries only infallible conversions (e.g.
//!    fixed-width `try_into().unwrap()` on header slices).
//!
//! Inline `#[cfg(test)]` modules are exempt from rules 3–4 and 8 (tests
//! may allocate, may use `std::sync`, and assert with `unwrap`); rule 1
//! applies there too, matching `clippy::undocumented_unsafe_blocks`
//! which this rule backstops.
//!
//! The scanner walks `crates/` and `vendor/` under the given root;
//! `tools/` is configuration and fixtures, not a lint target.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The allowlist consulted by [`Rule::PinnedAlloc`], relative to the
/// lint root.
pub const ALLOWLIST_PATH: &str = "tools/lint/zero_alloc_allow.txt";

/// The allowlist consulted by [`Rule::IoUnwrap`], relative to the lint
/// root.
pub const IO_ALLOWLIST_PATH: &str = "tools/lint/io_unwrap_allow.txt";

/// Files that must carry `#![deny(unsafe_op_in_unsafe_fn)]`.
const DENY_ATTR_FILES: &[&str] = &["crates/mpc/src/lib.rs", "vendor/rayon/src/lib.rs"];

/// Files that must route all synchronization through `crate::sync`.
const SYNC_FACADE_FILES: &[&str] = &[
    "vendor/rayon/src/pool.rs",
    "vendor/rayon/src/scope.rs",
    "crates/mpc/src/pipeline.rs",
];

/// Zero-allocation-pinned modules.
const PINNED_ALLOC_FILES: &[&str] = &[
    "crates/mpc/src/router.rs",
    "crates/mpc/src/cluster.rs",
    "crates/mpc/src/pipeline.rs",
];

/// Allocation constructs banned in pinned modules.
const BANNED_ALLOC: &[&str] = &["Vec::new(", "Box::new(", "vec![", ".clone()"];

/// Recovery-critical modules: every I/O failure must flow out as a typed
/// error, so panicking result-taps are banned ([`Rule::IoUnwrap`]).
const IO_UNWRAP_FILES: &[&str] = &[
    "crates/mpc/src/spill.rs",
    "crates/mpc/src/checkpoint.rs",
    "crates/graph/src/outofcore.rs",
];

/// Panicking result-taps banned in recovery-critical modules.
const BANNED_IO_UNWRAP: &[&str] = &[".unwrap(", ".expect("];

/// Allocating constructs banned *inside* `span!`/`event!` invocations in
/// pinned modules ([`Rule::TraceAlloc`]) — a superset of [`BANNED_ALLOC`]
/// because string formatting is the classic way instrumentation smuggles
/// allocation onto a hot path.
const TRACE_ALLOC: &[&str] = &[
    "format!",
    ".to_string(",
    "String::from(",
    ".to_owned(",
    "vec![",
    "Vec::new(",
    "Box::new(",
    ".clone()",
];

/// One lint rule; the kebab-case id is what violation output prints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    SafetyComment,
    DenyAttr,
    SyncFacade,
    PinnedAlloc,
    StaleAllow,
    MsgSizeAssert,
    TraceAlloc,
    IoUnwrap,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::DenyAttr => "deny-attr",
            Rule::SyncFacade => "sync-facade",
            Rule::PinnedAlloc => "pinned-alloc",
            Rule::StaleAllow => "stale-allow",
            Rule::MsgSizeAssert => "msg-size-assert",
            Rule::TraceAlloc => "trace-alloc",
            Rule::IoUnwrap => "io-unwrap",
        }
    }
}

/// A single policy violation, pointing at a root-relative file and
/// 1-based line (line 0 = whole-file finding).
#[derive(Debug)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule.id(), self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file,
                self.line,
                self.rule.id(),
                self.message
            )
        }
    }
}

/// Lints the tree rooted at `root`, returning every violation found
/// (empty = gate passes). Errors only on I/O failure.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let mut allowlist = load_allowlist(root, ALLOWLIST_PATH)?;
    let mut io_allowlist = load_allowlist(root, IO_ALLOWLIST_PATH)?;

    for rel in collect_rust_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        lint_file(
            &rel,
            &text,
            &mut allowlist,
            &mut io_allowlist,
            &mut violations,
        );
    }

    for required in DENY_ATTR_FILES {
        let path = root.join(required);
        if !path.is_file() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        if !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            violations.push(Violation {
                file: (*required).into(),
                line: 0,
                rule: Rule::DenyAttr,
                message: "missing `#![deny(unsafe_op_in_unsafe_fn)]`".into(),
            });
        }
    }

    for (list, path) in [
        (&allowlist, ALLOWLIST_PATH),
        (&io_allowlist, IO_ALLOWLIST_PATH),
    ] {
        for (entry, used) in list {
            if !used {
                violations.push(Violation {
                    file: path.into(),
                    line: 0,
                    rule: Rule::StaleAllow,
                    message: format!(
                        "stale allowlist entry (no matching line): `{}: {}`",
                        entry.0, entry.1
                    ),
                });
            }
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

/// Allowlist entries `(root-relative path, trimmed line content)` mapped
/// to whether a matching line was seen during the scan.
type Allowlist = BTreeMap<(String, String), bool>;

fn load_allowlist(root: &Path, rel_path: &str) -> io::Result<Allowlist> {
    let path = root.join(rel_path);
    let mut entries = BTreeMap::new();
    if !path.is_file() {
        return Ok(entries);
    }
    for line in fs::read_to_string(&path)?.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((file, content)) = line.split_once(": ") else {
            // Malformed entries are themselves stale: they can never match.
            entries.insert((line.to_string(), String::new()), false);
            continue;
        };
        entries.insert((file.trim().to_string(), content.trim().to_string()), false);
    }
    Ok(entries)
}

/// All `.rs` files under `root/crates` and `root/vendor`, root-relative
/// with `/` separators, sorted for deterministic output.
fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn lint_file(
    rel: &str,
    text: &str,
    allowlist: &mut Allowlist,
    io_allowlist: &mut Allowlist,
    out: &mut Vec<Violation>,
) {
    let lines: Vec<&str> = text.lines().collect();
    // Paren depth of an open `span!(`/`event!(` invocation carried across
    // lines (rule 7); 0 = not inside a trace call.
    let mut trace_depth = 0usize;
    // Everything from the first inline `#[cfg(test)]` on is test code
    // (the workspace keeps test modules at end of file); rules 3–4 stop
    // there, rule 1 keeps going.
    let test_start = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());

    let sync_pinned = SYNC_FACADE_FILES.contains(&rel);
    let alloc_pinned = PINNED_ALLOC_FILES.contains(&rel);
    let io_pinned = IO_UNWRAP_FILES.contains(&rel);

    let mut declares_msg_enum = None;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let trimmed = line.trim();
        let in_tests = i >= test_start;

        check_unsafe_tokens(rel, &lines, i, out);

        if trimmed.starts_with("//") || in_tests {
            continue;
        }

        if sync_pinned && line.contains("std::sync") {
            out.push(Violation {
                file: rel.into(),
                line: lineno,
                rule: Rule::SyncFacade,
                message: "names `std::sync` directly; go through the `crate::sync` facade \
                          so the loom build checks this primitive"
                    .into(),
            });
        }

        if alloc_pinned {
            // Rule 7: trace calls on the pinned hot paths must record plain
            // integers; anything that builds an owned value inside the
            // invocation allocates per event. Track paren depth so multi-line
            // `span!(...)`/`event!(...)` bodies are covered, and stop matching
            // at the closing paren so code after the call on the same line is
            // judged by rules 3–4 only.
            let mut segment_start = line.len();
            if trace_depth == 0 {
                let open = ["span!(", "event!("]
                    .iter()
                    .filter_map(|pat| line.find(pat).map(|p| p + pat.len()))
                    .min();
                if let Some(pos) = open {
                    trace_depth = 1;
                    segment_start = pos;
                }
            } else {
                segment_start = 0;
            }
            if trace_depth > 0 {
                let rest = &line[segment_start..];
                let mut end = rest.len();
                for (off, c) in rest.char_indices() {
                    match c {
                        '(' => trace_depth += 1,
                        ')' => {
                            trace_depth -= 1;
                            if trace_depth == 0 {
                                end = off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let in_call = &rest[..end];
                for pat in TRACE_ALLOC {
                    if in_call.contains(pat) {
                        out.push(Violation {
                            file: rel.into(),
                            line: lineno,
                            rule: Rule::TraceAlloc,
                            message: format!(
                                "`{pat}` inside a `span!`/`event!` call in a \
                                 zero-allocation-pinned module; record plain integers \
                                 through the preallocated event rings instead"
                            ),
                        });
                        break;
                    }
                }
            }
            for pat in BANNED_ALLOC {
                if !line.contains(pat) {
                    continue;
                }
                let key = (rel.to_string(), trimmed.to_string());
                if let Some(used) = allowlist.get_mut(&key) {
                    *used = true;
                } else {
                    out.push(Violation {
                        file: rel.into(),
                        line: lineno,
                        rule: Rule::PinnedAlloc,
                        message: format!(
                            "`{pat}` in a zero-allocation-pinned module; move it off the \
                             steady-state path or allowlist the exact line in {ALLOWLIST_PATH}"
                        ),
                    });
                }
                break;
            }
        }

        if io_pinned {
            for pat in BANNED_IO_UNWRAP {
                if !line.contains(pat) {
                    continue;
                }
                let key = (rel.to_string(), trimmed.to_string());
                if let Some(used) = io_allowlist.get_mut(&key) {
                    *used = true;
                } else {
                    out.push(Violation {
                        file: rel.into(),
                        line: lineno,
                        rule: Rule::IoUnwrap,
                        message: format!(
                            "`{pat}` in a recovery-critical module; surface the failure as \
                             a typed error or allowlist the exact line in {IO_ALLOWLIST_PATH}"
                        ),
                    });
                }
                break;
            }
        }

        if declares_msg_enum.is_none()
            && (trimmed.contains("enum Msg {") || trimmed.contains("enum Msg{"))
        {
            declares_msg_enum = Some(lineno);
        }
    }

    if let Some(lineno) = declares_msg_enum {
        let stripped: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        if !stripped.contains("size_of::<Msg>()<=24") {
            out.push(Violation {
                file: rel.into(),
                line: lineno,
                rule: Rule::MsgSizeAssert,
                message: "declares `enum Msg` without a `size_of::<Msg>() <= 24` const \
                          assertion pinning the hot message size"
                    .into(),
            });
        }
    }
}

/// Rule 1: each `unsafe` block/impl on line `i` needs a `// SAFETY:`
/// justification on the same line or in the comment block directly above.
fn check_unsafe_tokens(rel: &str, lines: &[&str], i: usize, out: &mut Vec<Violation>) {
    let line = lines[i];
    let trimmed = line.trim();
    if trimmed.starts_with("//") {
        return;
    }
    // Code portion only: a trailing `// ...` comment cannot introduce an
    // unsafe block (it can carry the justification, checked below).
    let code = match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    };

    let mut search = 0;
    while let Some(pos) = code[search..].find("unsafe") {
        let at = search + pos;
        search = at + "unsafe".len();
        let before = code[..at].chars().next_back();
        let after = code[search..].chars().next();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_')
            || after.is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue; // part of a longer identifier, e.g. `unsafe_op_in_unsafe_fn`
        }
        if inside_string(&code[..at]) {
            continue;
        }
        let next_word: String = code[search..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if next_word == "fn" || next_word == "trait" {
            continue; // declaration obligations live in `# Safety` docs
        }
        if line.contains("SAFETY:") || preceded_by_safety_comment(lines, i) {
            continue;
        }
        out.push(Violation {
            file: rel.into(),
            line: i + 1,
            rule: Rule::SafetyComment,
            message: "`unsafe` without a `// SAFETY:` comment on this line or the comment \
                      block directly above"
                .into(),
        });
        return; // one finding per line is enough
    }
}

/// Whether the comment/attribute block immediately above line `i`
/// contains a `// SAFETY:` line.
fn preceded_by_safety_comment(lines: &[&str], i: usize) -> bool {
    for j in (0..i).rev() {
        let t = lines[j].trim();
        if t.starts_with("// SAFETY:") || t.starts_with("//SAFETY:") {
            return true;
        }
        // Attributes and further comment lines extend the block upward.
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            continue;
        }
        return false;
    }
    false
}

/// Crude but sufficient: whether `prefix` ends inside a string literal
/// (odd number of unescaped quotes).
fn inside_string(prefix: &str) -> bool {
    let mut open = false;
    let mut chars = prefix.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                chars.next();
            }
            '"' => open = !open,
            _ => {}
        }
    }
    open
}
