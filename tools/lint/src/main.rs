//! `repo-lint` CLI: lints the tree and reports violations.
//!
//! ```text
//! repo-lint [ROOT]      # ROOT defaults to the current directory
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => ".".to_string(),
        [root] if !root.starts_with('-') => root.clone(),
        _ => {
            eprintln!("usage: repo-lint [ROOT]");
            return ExitCode::from(2);
        }
    };

    let violations = match repo_lint::lint_tree(Path::new(&root)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("repo-lint: error scanning {root}: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("repo-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("repo-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
