//! Structural validator for the Chrome Trace Event Format files that
//! `experiments trace` emits (see `crates/bench/src/tracefmt.rs`).
//!
//! The CI perf-gate runs this over a freshly captured trace: it proves
//! the file is loadable (strict JSON via the bench crate's parser), that
//! every entry is a well-formed complete (`"ph": "X"`) event with the
//! fields Perfetto needs, and — under `--expect-overlap` — that the
//! pipelined scheduler's cross-machine segment overlap is actually
//! visible in the timeline (two events on different machine tracks whose
//! `[ts, ts+dur)` intervals intersect).

use mwvc_bench::json::Json;

/// One parsed complete event, reduced to what the checks need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompleteEvent {
    /// Machine track (thread id in the Chrome trace model).
    pub tid: i64,
    /// Start timestamp (model cost units).
    pub ts: f64,
    /// Duration (model cost units).
    pub dur: f64,
}

/// Summary of a validated trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of complete events.
    pub events: usize,
    /// Number of distinct machine tracks.
    pub machines: usize,
    /// Whether any two events on *different* tracks overlap in time.
    pub cross_machine_overlap: bool,
}

/// Validates the trace text, returning a summary or the first defect.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let root = Json::parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }

    let mut complete: Vec<CompleteEvent> = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => {}
            Some("M") => continue, // metadata rows (process/thread names) are fine
            other => return Err(format!("event {i}: bad `ph` {other:?}")),
        }
        let num = |key: &str| {
            ev.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: missing numeric `{key}`"))
        };
        let (ts, dur, tid) = (num("ts")?, num("dur")?, num("tid")?);
        num("pid")?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing string `name`"));
        }
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur ({ts}, {dur})"));
        }
        complete.push(CompleteEvent {
            tid: tid as i64,
            ts,
            dur,
        });
    }
    if complete.is_empty() {
        return Err("no complete (`ph: X`) events".into());
    }

    let mut tids: Vec<i64> = complete.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut overlap = false;
    'outer: for (i, a) in complete.iter().enumerate() {
        for b in &complete[i + 1..] {
            if a.tid != b.tid && a.ts < b.ts + b.dur && b.ts < a.ts + a.dur {
                overlap = true;
                break 'outer;
            }
        }
    }

    Ok(TraceSummary {
        events: complete.len(),
        machines: tids.len(),
        cross_machine_overlap: overlap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tid: i64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"pid\": 0, \"tid\": {tid}, \"ph\": \"X\", \"ts\": {ts:?}, \"dur\": {dur:?}, \"name\": \"r\"}}"
        )
    }

    fn trace(events: &[String]) -> String {
        format!("{{\"traceEvents\": [{}]}}", events.join(", "))
    }

    #[test]
    fn accepts_overlapping_two_machine_trace() {
        let t = trace(&[event(0, 0.0, 10.0), event(1, 5.0, 10.0)]);
        let s = check_trace(&t).expect("valid trace");
        assert_eq!(s.events, 2);
        assert_eq!(s.machines, 2);
        assert!(s.cross_machine_overlap);
    }

    #[test]
    fn detects_no_overlap_on_disjoint_tracks() {
        let t = trace(&[event(0, 0.0, 4.0), event(1, 4.0, 4.0)]);
        let s = check_trace(&t).expect("valid trace");
        assert!(
            !s.cross_machine_overlap,
            "touching intervals do not overlap"
        );
    }

    #[test]
    fn same_track_overlap_does_not_count() {
        let t = trace(&[event(0, 0.0, 10.0), event(0, 5.0, 10.0)]);
        let s = check_trace(&t).expect("valid trace");
        assert!(!s.cross_machine_overlap);
    }

    #[test]
    fn metadata_rows_are_skipped() {
        let meta = "{\"ph\": \"M\", \"pid\": 0, \"name\": \"thread_name\"}".to_string();
        let t = trace(&[meta, event(0, 0.0, 1.0)]);
        assert_eq!(check_trace(&t).expect("valid trace").events, 1);
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!(check_trace("[]").is_err(), "top level must be an object");
        assert!(check_trace("{\"traceEvents\": []}").is_err(), "empty trace");
        let bad_ph = trace(&[
            "{\"pid\": 0, \"tid\": 0, \"ph\": \"B\", \"ts\": 0.0, \"dur\": 1.0, \"name\": \"r\"}"
                .into(),
        ]);
        assert!(check_trace(&bad_ph).is_err(), "only X/M phases allowed");
        let no_dur = trace(&[
            "{\"pid\": 0, \"tid\": 0, \"ph\": \"X\", \"ts\": 0.0, \"name\": \"r\"}".into(),
        ]);
        assert!(check_trace(&no_dur).is_err(), "dur required");
    }
}
