//! CLI wrapper over [`tracecheck::check_trace`].
//!
//! ```text
//! tracecheck TRACE.json [--expect-overlap]
//! ```
//!
//! Exits non-zero if the file is not a well-formed Chrome trace, or if
//! `--expect-overlap` is given and no two events on different machine
//! tracks overlap in time (i.e. the pipelined Gantt chart would show no
//! cross-machine concurrency).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut path = None;
    let mut expect_overlap = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-overlap" => expect_overlap = true,
            "--help" | "-h" => {
                println!("usage: tracecheck TRACE.json [--expect-overlap]");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() => path = Some(arg),
            other => {
                eprintln!("tracecheck: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: tracecheck TRACE.json [--expect-overlap]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match tracecheck::check_trace(&text) {
        Ok(summary) => {
            println!(
                "tracecheck: {path}: {} events across {} machines, cross-machine overlap: {}",
                summary.events, summary.machines, summary.cross_machine_overlap
            );
            if expect_overlap && !summary.cross_machine_overlap {
                eprintln!("tracecheck: expected cross-machine overlap, found none");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tracecheck: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
