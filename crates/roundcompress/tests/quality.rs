//! The round-compression executor's quality and determinism contract:
//!
//! * feasible covers on all five standard preset families,
//! * `(2+O(ε))` quality against the *exact* LP lower bound (`LP* ≤ OPT`),
//! * certificate soundness — the emitted dual never overstates the lower
//!   bound (it stays at or below `LP*`),
//! * bit-identical covers, certificates, and traces at host pool widths
//!   1 and 3.

use mwvc_baselines::lp_optimum;
use mwvc_core::mpc::Executor;
use mwvc_graph::{EdgeIndex, GraphPreset, WeightModel, WeightedGraph};
use mwvc_roundcompress::{
    recommended_cluster, run_roundcompress, RoundCompressConfig, RoundCompressExecutor,
};

const EPS: f64 = 0.0625; // the tight end of the bench matrix's ε axis

fn preset_instance(preset: &GraphPreset, seed: u64) -> WeightedGraph {
    let g = preset.build(seed);
    let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, seed ^ 0xABCD);
    WeightedGraph::new(g, w)
}

/// Feasibility, (2+O(ε)) quality vs LP*, and certificate soundness on
/// every standard family. The provable bound is `2/(1-4ε)` (threshold
/// freezing backs every cover vertex with `(1-4ε)` of its weight in
/// exactly feasible duals), which is `2 + O(ε)`.
#[test]
fn all_five_families_feasible_certified_and_within_two_plus_o_eps() {
    for (i, preset) in GraphPreset::standard_families(512, 16).iter().enumerate() {
        let wg = preset_instance(preset, 1000 + i as u64);
        let eidx = EdgeIndex::build(&wg.graph);
        let lp = lp_optimum(&wg).value;
        let cfg = RoundCompressConfig::practical(EPS, 77 + i as u64);
        let out = run_roundcompress(&wg, &cfg, recommended_cluster(&wg, &cfg));
        out.cover
            .verify(&wg.graph)
            .unwrap_or_else(|e| panic!("{}: uncovered edge {e:?}", preset.family()));
        assert!(
            out.trace.is_clean(),
            "{}: model violations",
            preset.family()
        );

        let weight = out.cover.weight(&wg);
        let bound = 2.0 / (1.0 - 4.0 * EPS);
        // True quality against the exact LP lower bound.
        assert!(
            weight <= bound * lp + 1e-9,
            "{}: weight {weight} > (2+O(eps)) * LP* = {bound} * {lp}",
            preset.family()
        );
        // Certificate soundness: the dual is feasible (no rescaling
        // needed) and its value never overstates the LP optimum.
        let factor = out.certificate.feasibility_factor(&wg, &eidx);
        assert!(factor <= 1.0 + 1e-9, "{}: infeasible dual", preset.family());
        let lb = out.certificate.lower_bound(&wg, &eidx);
        assert!(
            lb <= lp + 1e-6 * lp.max(1.0),
            "{}: certified lower bound {lb} overstates LP* {lp}",
            preset.family()
        );
        assert!(lb > 0.0, "{}: vacuous certificate", preset.family());
        // And the a-posteriori certified ratio matches the a-priori bound.
        let certified = out.certificate.certified_ratio(&wg, &eidx, weight);
        assert!(
            certified <= bound + 1e-9,
            "{}: certified ratio {certified} > {bound}",
            preset.family()
        );
    }
}

/// The ε-free pricing solver certifies a plain factor 2 on every family.
#[test]
fn pricing_solver_certifies_factor_two_on_all_families() {
    for (i, preset) in GraphPreset::standard_families(256, 8).iter().enumerate() {
        let wg = preset_instance(preset, 2000 + i as u64);
        let eidx = EdgeIndex::build(&wg.graph);
        let cfg = RoundCompressConfig::pricing(5 + i as u64);
        let out = run_roundcompress(&wg, &cfg, recommended_cluster(&wg, &cfg));
        out.cover.verify(&wg.graph).expect("valid cover");
        let ratio = out
            .certificate
            .certified_ratio(&wg, &eidx, out.cover.weight(&wg));
        assert!(ratio <= 2.0 + 1e-9, "{}: ratio {ratio}", preset.family());
    }
}

/// The determinism contract behind the perf gate: covers, certificates,
/// and the full execution trace are bit-identical whether the host pool
/// has 1 or 3 threads.
#[test]
fn bit_identical_covers_and_traces_at_pool_widths_1_and_3() {
    let preset = GraphPreset::Gnm {
        n: 512,
        avg_degree: 16,
    };
    let wg = preset_instance(&preset, 99);
    let cfg = RoundCompressConfig::practical(EPS, 31);
    let cluster = recommended_cluster(&wg, &cfg);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        pool.install(|| run_roundcompress(&wg, &cfg, cluster))
    };
    let a = run(1);
    let b = run(3);
    assert_eq!(a.cover, b.cover, "covers must not see host threading");
    assert_eq!(a.certificate, b.certificate);
    assert_eq!(a.trace, b.trace, "traces must not see host threading");
    assert_eq!(a.levels, b.levels);

    // Same through the Executor trait (what the bench harness calls).
    let exec = RoundCompressExecutor::new(cfg);
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let pool3 = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .unwrap();
    let ra = pool1.install(|| exec.run(&wg));
    let rb = pool3.install(|| exec.run(&wg));
    assert_eq!(ra.solution, rb.solution);
    assert_eq!(ra.cost, rb.cost);
}
