//! Configuration of the round-compression executor: the local solver, the
//! per-machine budget that drives the part-count schedule, and the level
//! cap. All randomness (partitions, thresholds) derives from one seed.

use mpc_sim::RoundScheduler;
use mwvc_core::{InitScheme, ThresholdScheme};
use serde::{Deserialize, Serialize};

/// Which complete solver each part machine (and the final centralized
/// phase) runs on its induced residual instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalSolver {
    /// Algorithm 1 of Ghaffari–Jin–Nilis (`mwvc_core::run_centralized_raw`)
    /// with freeze thresholds in `[1-4ε, 1-2ε]`: every frozen vertex
    /// carries incident dual `≥ (1-4ε)·w'`, so the global certificate
    /// proves a `2/(1-4ε) = 2+O(ε)` ratio.
    PrimalDual,
    /// Bar-Yehuda–Even pricing (`mwvc_baselines::bar_yehuda_even`): frozen
    /// vertices are exactly tight, certifying a plain factor 2; ε plays no
    /// role.
    Pricing,
}

impl LocalSolver {
    /// Stable label for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            LocalSolver::PrimalDual => "primal-dual",
            LocalSolver::Pricing => "pricing",
        }
    }
}

/// How many induced edges one part machine may be asked to hold — the
/// quantity the part-count schedule ([`parts_for`]) keeps bounded, and the
/// switch point of the final centralized phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetRule {
    /// `budget = ceil(factor · n)` edges — the near-linear-memory regime
    /// (`S = Θ(n)` words) the source paper targets.
    EdgesPerVertex(f64),
    /// A fixed edge budget, independent of the instance.
    FixedEdges(usize),
}

impl BudgetRule {
    /// The edge budget for an `n`-vertex instance (never below 64 so tiny
    /// instances go straight to the final solve).
    pub fn budget_edges(&self, n: usize) -> usize {
        let b = match *self {
            BudgetRule::EdgesPerVertex(f) => (f * n as f64).ceil() as usize,
            BudgetRule::FixedEdges(e) => e,
        };
        b.max(64)
    }
}

/// Full configuration of the round-compression executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundCompressConfig {
    /// Accuracy parameter `ε ∈ (0, 1/4]` of the [`LocalSolver::PrimalDual`]
    /// solver (threshold window `[1-4ε, 1-2ε]`). Ignored by
    /// [`LocalSolver::Pricing`].
    pub epsilon: f64,
    /// Seed for all randomness (per-level partitions, thresholds).
    pub seed: u64,
    /// The local solver run on every part and on the final residual.
    pub solver: LocalSolver,
    /// Initial-matching scheme of the primal-dual solver.
    pub init: InitScheme,
    /// Threshold scheme of the primal-dual solver.
    pub thresholds: ThresholdScheme,
    /// Per-machine induced-edge budget (drives `m` and the final switch).
    pub budget: BudgetRule,
    /// Hard cap on compression levels (stall guard). A cap low enough to
    /// fire before the residual shrinks under the budget forces a final
    /// gather larger than [`crate::recommended_cluster`]'s sizing assumes
    /// — under strict enforcement that run panics rather than degrading
    /// (same policy as the baseline executor's stall path); size the
    /// cluster yourself or use an audited config when experimenting with
    /// tiny caps.
    pub max_levels: usize,
    /// Host round-execution engine for the simulator cluster. No effect
    /// on model costs, covers, or certificates — only on how the host
    /// overlaps placement and compute.
    pub scheduler: RoundScheduler,
    /// Deterministic fault-injection plan for the simulator cluster
    /// ([`mpc_sim::FaultConfig::none`] by default). Under any handled
    /// plan the gated outputs are bit-identical to the fault-free run.
    pub faults: mpc_sim::FaultConfig,
}

impl RoundCompressConfig {
    /// The default profile: Algorithm 1 local solves (ε-parameterized,
    /// certified `2+O(ε)`), degree-weighted initialization, a `2n`-edge
    /// machine budget.
    pub fn practical(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            solver: LocalSolver::PrimalDual,
            init: InitScheme::DegreeWeighted,
            thresholds: ThresholdScheme::UniformRandom,
            budget: BudgetRule::EdgesPerVertex(2.0),
            max_levels: 100,
            scheduler: RoundScheduler::Barrier,
            faults: mpc_sim::FaultConfig::none(),
        }
    }

    /// The ε-free variant: Bar-Yehuda–Even pricing local solves, certified
    /// factor 2.
    pub fn pricing(seed: u64) -> Self {
        Self {
            solver: LocalSolver::Pricing,
            ..Self::practical(0.25, seed)
        }
    }

    /// Switches the simulator to the given host round scheduler.
    pub fn with_scheduler(mut self, scheduler: RoundScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Arms the given fault-injection plan on the simulator cluster.
    pub fn with_faults(mut self, faults: mpc_sim::FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The configured edge budget for an `n`-vertex instance.
    pub fn budget_edges(&self, n: usize) -> usize {
        self.budget.budget_edges(n)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon <= 0.25,
            "epsilon must lie in (0, 1/4]"
        );
        assert!(self.max_levels >= 1, "need at least one level");
        if let BudgetRule::EdgesPerVertex(f) = self.budget {
            assert!(f > 0.0 && f.is_finite(), "budget factor must be positive");
        }
    }
}

/// The part-count schedule: the smallest `m ≥ 2` keeping the *expected*
/// induced subgraph of one random part (`E/m²` edges) at or below half the
/// machine budget — the factor-2 slack absorbs partition fluctuations.
pub fn parts_for(active_edges: usize, budget_edges: usize) -> usize {
    if active_edges == 0 {
        return 1;
    }
    let m = (2.0 * active_edges as f64 / budget_edges.max(1) as f64)
        .sqrt()
        .ceil() as usize;
    m.max(2)
}

/// Domain-separated partition seed of a compression level. Pure in
/// `(seed, level)` so every machine derives it without communication.
pub fn level_seed(seed: u64, level: u32) -> u64 {
    seed ^ (level as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x006c_6576_656c
    // "level"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_validate() {
        RoundCompressConfig::practical(0.1, 1).validate();
        RoundCompressConfig::practical(0.25, 2).validate();
        RoundCompressConfig::pricing(3).validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        RoundCompressConfig::practical(0.3, 1).validate();
    }

    #[test]
    fn budget_scales_with_n_and_floors() {
        let b = BudgetRule::EdgesPerVertex(2.0);
        assert_eq!(b.budget_edges(1024), 2048);
        assert_eq!(b.budget_edges(4), 64, "tiny instances floor at 64");
        assert_eq!(BudgetRule::FixedEdges(500).budget_edges(10_000), 500);
    }

    #[test]
    fn parts_keep_expected_induced_size_within_half_budget() {
        for &(e, b) in &[(8192usize, 2048usize), (100_000, 4096), (65, 64)] {
            let m = parts_for(e, b);
            assert!(m >= 2);
            assert!(
                e as f64 / (m * m) as f64 <= b as f64 / 2.0 + 1e-9,
                "E={e} B={b} m={m}"
            );
            // And m is the smallest such (schedule is not overly cautious).
            if m > 2 {
                let m1 = m - 1;
                assert!(e as f64 / (m1 * m1) as f64 > b as f64 / 2.0);
            }
        }
        assert_eq!(parts_for(0, 64), 1);
    }

    #[test]
    fn level_seeds_are_distinct() {
        let s: Vec<u64> = (0..32).map(|l| level_seed(7, l)).collect();
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), s.len());
        assert_ne!(level_seed(7, 0), level_seed(8, 0));
    }
}
