//! The round-compression executor as message-passing dataflow on an
//! audited [`mpc_sim`] cluster.
//!
//! # Roles
//!
//! As in the `mwvc_core` distributed executor, every machine plays up to
//! four roles:
//!
//! * **edge home** — edge `e` lives on `owner_of_key(edge_id)`; homes hold
//!   the edge's frozen flag and finalized dual value,
//! * **vertex owner** — vertex `v` lives on `owner_of_key(v)`; owners hold
//!   the residual weight, the frozen flag, and the static list of homes
//!   subscribed to `v`,
//! * **solver** — during a level with `m` parts, machines `0..m` receive
//!   the induced subgraphs of the random vertex parts and run the
//!   configured [`LocalSolver`] to completion,
//! * **coordinator** — machine 0 aggregates the active-edge count, decides
//!   the level plan, and runs the final centralized solve.
//!
//! # Round schedule
//!
//! One startup round, six rounds per compression level, five closing
//! rounds ([`round_cost`]):
//!
//! ```text
//! subscribe  homes → owners       (v, home); builds notice fan-out lists
//! ── per level ───────────────────────────────────────────────────────────
//! stats      homes → coord        active-edge partial counts
//! plan       coord → all          RunLevel{m} or Finish
//! scatter    owners → solvers     (v, w') of nonfrozen vertices
//!            homes → solvers      part-internal active edges
//! solve      solvers → owners     (v, y, frozen) per touched vertex
//!            solvers → homes      finalized dual per part-internal edge
//! apply      owners → homes       freeze notices (fan-out to subscribers)
//! finalize   homes                cross edges at frozen vertices → x = 0
//! ── closing ─────────────────────────────────────────────────────────────
//! stats, plan (coord decides Finish)
//! gather     homes, owners → coord  residual instance
//! solve      coord → owners         final freezes + edge duals
//! apply      owners                 flags applied
//! ```
//!
//! The host only schedules closures and reads machine 0's broadcast
//! decision; all data flows through the audited router, so rounds,
//! traffic, and resident memory are measured (and enforced) exactly as
//! for the baseline executor.

use crate::config::{level_seed, parts_for, LocalSolver, RoundCompressConfig};
use mpc_sim::{owner_of_key, Cluster, ExecutionTrace, MpcConfig, SegmentRound, Words};
use mwvc_baselines::bar_yehuda_even;
use mwvc_core::centralized::run_centralized_raw;
use mwvc_core::mpc::{CostReport, CoverCertificate, Executor, ExecutorOutcome, FinalPhaseStats};
use mwvc_core::{CentralizedParams, DualCertificate, VertexCover};
use mwvc_graph::{
    EdgeIndex, GraphBuilder, VertexId, VertexPartition, VertexWeights, WeightedGraph,
};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// Cost model of this executor (mirrors
/// [`mwvc_core::mpc::stats::round_cost`] for the baseline): rounds per
/// compression level and fixed rounds outside the level loop.
pub mod round_cost {
    /// stats, plan, scatter, solve, apply, finalize.
    pub const PER_LEVEL: usize = 6;
    /// The startup subscribe round plus the closing stats, plan, gather,
    /// solve and apply rounds.
    pub const FINAL: usize = 6;
}

/// Plan broadcast by the coordinator each level.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlanMsg {
    level: u32,
    kind: PlanKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanKind {
    RunLevel { m: u32 },
    Finish,
}

/// All messages of the dataflow.
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    Subscribe { v: u32, home: u32 },
    ActiveCount { count: u64 },
    Plan(PlanMsg),
    SolveVertex { v: u32, w_prime: f64 },
    SolveEdge { geid: u32, u: u32, v: u32 },
    VertexOutcome { v: u32, y: f64, frozen: bool },
    EdgeDual { geid: u32, x: f64 },
    FrozenNotice { v: u32 },
    FinalEdge { geid: u32, u: u32, v: u32 },
    FinalVertex { v: u32, w_prime: f64 },
}

impl Words for Msg {
    fn words(&self) -> usize {
        match self {
            Msg::Subscribe { .. } => 2,
            Msg::ActiveCount { .. } => 1,
            Msg::Plan(_) => 3,
            Msg::SolveVertex { .. } => 2,
            Msg::SolveEdge { .. } => 3,
            Msg::VertexOutcome { .. } => 3,
            Msg::EdgeDual { .. } => 2,
            Msg::FrozenNotice { .. } => 1,
            Msg::FinalEdge { .. } => 3,
            Msg::FinalVertex { .. } => 2,
        }
    }
}

// The message ABI this executor puts on the fabric: every variant is a
// handful of scalars, so the whole enum must stay within 24 bytes — at
// least two messages per cache line. Checked at compile time so a
// growing variant fails the build instead of silently fattening the
// hottest buffers in the system.
const _: () = {
    assert!(
        std::mem::size_of::<Msg>() <= 24,
        "hot Msg variants must stay <= 24 bytes"
    );
};

/// An edge, as held by its home machine.
#[derive(Debug, Clone)]
struct HomeEdge {
    geid: u32,
    u: u32,
    v: u32,
    frozen: bool,
    x_final: f64,
}

const HOME_EDGE_WORDS: usize = 6;

/// A vertex, as held by its owner machine.
#[derive(Debug, Clone)]
struct OwnedVertex {
    v: u32,
    w_prime: f64,
    frozen: bool,
    subscribers: Vec<u32>,
}

const OWNED_BASE_WORDS: usize = 4;

/// Coordinator-only state (machine 0).
#[derive(Debug, Clone, Default)]
struct CoordState {
    level: u32,
    prev_active: Option<u64>,
    /// Times the part count has been halved after a no-progress level.
    shrink: u32,
    last_m: u32,
    decision: Option<PlanKind>,
    stalled: bool,
    hit_max_levels: bool,
    /// `(active edges at level start, parts)` per executed level.
    level_log: Vec<(u64, u32)>,
    /// Active edges when the Finish decision fired.
    final_active: u64,
    final_edges: Vec<(u32, u32, u32)>,
    final_vertices: Vec<(u32, f64)>,
    final_edge_x: Vec<(u32, f64)>,
    final_stats: Option<FinalPhaseStats>,
}

impl CoordState {
    fn words(&self) -> usize {
        10 + 2 * self.level_log.len()
            + 3 * self.final_edges.len()
            + 2 * self.final_vertices.len()
            + 2 * self.final_edge_x.len()
    }
}

/// Full per-machine state. `Clone` is the snapshot operation of the
/// crash-recovery engine ([`mpc_sim::checkpoint`]): checkpoints clone the
/// state, and replay restores the clone.
#[derive(Clone)]
struct MachineState {
    home_edges: Vec<HomeEdge>,
    /// vertex id → indices into `home_edges` (static).
    endpoint_index: HashMap<u32, Vec<u32>>,
    /// Owned vertices, ascending by id.
    owned: Vec<OwnedVertex>,
    active_edges_local: u64,
    plan: Option<PlanMsg>,
    sim_vertices: Vec<(u32, f64)>,
    sim_edges: Vec<(u32, u32, u32)>,
    coord: Option<Box<CoordState>>,
}

impl Words for MachineState {
    fn words(&self) -> usize {
        let idx_words: usize = self.endpoint_index.values().map(|v| 1 + v.len()).sum();
        HOME_EDGE_WORDS * self.home_edges.len()
            + idx_words
            + self
                .owned
                .iter()
                .map(|o| OWNED_BASE_WORDS + o.subscribers.len())
                .sum::<usize>()
            + 2 * self.sim_vertices.len()
            + 3 * self.sim_edges.len()
            + self.plan.map_or(0, |_| 3)
            + self.coord.as_ref().map_or(0, |c| c.words())
            + 3
    }
}

impl MachineState {
    fn owned_mut(&mut self, v: u32) -> &mut OwnedVertex {
        let i = self
            .owned
            .binary_search_by_key(&v, |o| o.v)
            .expect("message for vertex not owned here");
        &mut self.owned[i]
    }
}

/// Statistics of one compression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Level index, 0-based.
    pub level: usize,
    /// Random vertex parts (solver machines) used.
    pub parts: usize,
    /// Active edges when the level started.
    pub active_edges_before: usize,
    /// Active edges after the level (the residual the recursion sees).
    pub active_edges_after: usize,
}

/// Result of a round-compression run.
#[derive(Debug, Clone)]
pub struct RoundCompressOutcome {
    /// The vertex cover (all frozen vertices).
    pub cover: VertexCover,
    /// Finalized dual values in global edge-id order — an exactly feasible
    /// fractional matching (see the crate docs for why).
    pub certificate: DualCertificate,
    /// Per-level statistics.
    pub levels: Vec<LevelStats>,
    /// Final centralized solve statistics (`None` if no edges remained).
    pub final_stats: Option<FinalPhaseStats>,
    /// Whether the recursion stopped on the no-progress condition.
    pub stalled: bool,
    /// Whether the level cap fired.
    pub hit_max_levels: bool,
    /// The audited execution trace: rounds, traffic, memory, violations.
    pub trace: ExecutionTrace,
    /// Host wall-clock seconds per MPC round, in execution order. Purely
    /// informational: host- and scheduler-dependent, never gated.
    pub round_wall: Vec<f64>,
    /// Host wall-clock per round split by phase (compute / route /
    /// spill), in execution order. Informational, like `round_wall`.
    pub host_phases: Vec<mpc_sim::HostPhase>,
}

impl RoundCompressOutcome {
    /// Number of compression levels executed.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The structured model-cost report, measured by the router of
    /// `cluster` (the config the run executed on). `phases` counts
    /// compression levels.
    pub fn cost_report(&self, cluster: &MpcConfig) -> CostReport {
        CostReport::from_trace(self.num_levels(), &self.trace, cluster)
    }
}

/// A cluster sizing that keeps the dataflow within the near-linear-memory
/// model: `S = Θ(n + B)` words (`B` the per-machine induced-edge budget,
/// which also bounds the final gathered residual), and enough machines
/// both to hold the input and to host the first level's part count.
///
/// The final-gather headroom assumes the run finishes through the budget
/// switch. A `Finish` forced early — a `max_levels` cap that fires while
/// the residual is still above budget, or a (probability ≈ `2^-E`) stall
/// at `m = 2` — can exceed it and panic under strict enforcement, exactly
/// like the baseline executor's stall path.
pub fn recommended_cluster(wg: &WeightedGraph, config: &RoundCompressConfig) -> MpcConfig {
    let n = wg.num_vertices();
    let e = wg.num_edges();
    let budget_e = config.budget_edges(n);
    let s = (16 * n + 16 * budget_e).max(1024);
    let input_words = 7 * e + 4 * n;
    let m0 = parts_for(e, budget_e);
    let machines = (8 * input_words).div_ceil(s).max(m0).max(2);
    MpcConfig::new(machines, s)
        .with_scheduler(config.scheduler)
        .with_faults(config.faults)
}

/// Output of one complete local solve (a part's induced instance, or the
/// final residual).
struct LocalSolve {
    /// Per local vertex: joined the cover.
    frozen: Vec<bool>,
    /// Per local vertex: incident dual sum `y_v`.
    y: Vec<f64>,
    /// Per local edge (canonical order, positionally aligned with the
    /// caller's ascending-global-id edge list): finalized dual value.
    x: Vec<f64>,
    iterations: usize,
}

/// Runs the configured local solver to completion on an induced residual
/// instance. `vertices` are ascending global ids, `edges` local-id pairs
/// in ascending global-edge-id order (which the monotone remap keeps
/// canonical). Local computation is free in the model.
fn solve_instance(
    cfg: &RoundCompressConfig,
    stream_key: u64,
    vertices: &[VertexId],
    wp: &[f64],
    edges: &[(u32, u32)],
) -> LocalSolve {
    let mut builder = GraphBuilder::new(vertices.len());
    for &(u, v) in edges {
        builder.add_edge(u, v);
    }
    let graph = builder.build();
    let eidx = EdgeIndex::build(&graph);
    debug_assert_eq!(eidx.num_edges(), edges.len());
    if cfg!(debug_assertions) {
        for (i, e) in eidx.edges().iter().enumerate() {
            let (u, v) = edges[i];
            debug_assert_eq!(
                (e.u(), e.v()),
                (u.min(v), u.max(v)),
                "canonical edge orders must align"
            );
        }
    }
    let (cover, x, iterations) = match cfg.solver {
        LocalSolver::Pricing => {
            let lwg = WeightedGraph::new(graph, VertexWeights::from_vec(wp.to_vec()));
            let res = bar_yehuda_even(&lwg);
            (res.cover, res.certificate.x, 1)
        }
        LocalSolver::PrimalDual => {
            let degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
            let x0 = cfg.init.initial_values(&graph, &eidx, wp, &degrees);
            let (eps, seed, thresholds) = (cfg.epsilon, cfg.seed, cfg.thresholds);
            let res = run_centralized_raw(
                &graph,
                &eidx,
                wp,
                x0,
                CentralizedParams::new(eps),
                |lv, t| thresholds.threshold(eps, seed, stream_key, vertices[lv as usize], t),
            );
            (res.cover, res.certificate.x, res.iterations)
        }
    };
    let mut y = vec![0.0f64; vertices.len()];
    for (eid, e) in eidx.edges().iter().enumerate() {
        y[e.u() as usize] += x[eid];
        y[e.v() as usize] += x[eid];
    }
    let mut frozen = vec![false; vertices.len()];
    for &lv in cover.vertices() {
        frozen[lv as usize] = true;
    }
    LocalSolve {
        frozen,
        y,
        x,
        iterations,
    }
}

/// Runs the round-compression executor as message-passing dataflow on
/// `cluster_cfg`.
///
/// Panics (in strict enforcement) if any machine exceeds its memory or
/// per-round traffic budget; use [`recommended_cluster`] for a sizing that
/// stays within the model, or an audited config to measure violations.
/// Also panics on an unrecoverable injected fault — fault-tolerant callers
/// should use [`try_run_roundcompress`] instead.
pub fn run_roundcompress(
    wg: &WeightedGraph,
    config: &RoundCompressConfig,
    cluster_cfg: MpcConfig,
) -> RoundCompressOutcome {
    try_run_roundcompress(wg, config, cluster_cfg)
        .unwrap_or_else(|e| panic!("unrecoverable cluster fault: {e}"))
}

/// Fault-tolerant form of [`run_roundcompress`]: identical execution, but
/// unrecoverable injected faults surface as a typed
/// [`mpc_sim::ClusterError`] instead of panicking. Under any *handled*
/// fault plan the outcome's gated fields (cover, certificate, model
/// costs) are bit-identical to the fault-free run.
pub fn try_run_roundcompress(
    wg: &WeightedGraph,
    config: &RoundCompressConfig,
    cluster_cfg: MpcConfig,
) -> Result<RoundCompressOutcome, mpc_sim::ClusterError> {
    config.validate();
    let n = wg.num_vertices();
    let eidx = EdgeIndex::build(&wg.graph);
    let m_total = eidx.num_edges();
    let w = cluster_cfg.num_machines;
    let budget_edges = config.budget_edges(n);

    // ── Input distribution (free): edges to owner_of_key(edge id),
    // vertices with their weights to owner_of_key(vertex id).
    let mut states: Vec<MachineState> = (0..w)
        .map(|id| MachineState {
            home_edges: Vec::new(),
            endpoint_index: HashMap::new(),
            owned: Vec::new(),
            active_edges_local: 0,
            plan: None,
            sim_vertices: Vec::new(),
            sim_edges: Vec::new(),
            coord: (id == 0).then(|| Box::new(CoordState::default())),
        })
        .collect();
    for (geid, e) in eidx.edges().iter().enumerate() {
        let home = owner_of_key(geid as u64, w);
        let st = &mut states[home];
        let idx = st.home_edges.len() as u32;
        st.home_edges.push(HomeEdge {
            geid: geid as u32,
            u: e.u(),
            v: e.v(),
            frozen: false,
            x_final: 0.0,
        });
        st.endpoint_index.entry(e.u()).or_default().push(idx);
        st.endpoint_index.entry(e.v()).or_default().push(idx);
        st.active_edges_local += 1;
    }
    for v in 0..n as u32 {
        let owner = owner_of_key(v as u64, w);
        states[owner].owned.push(OwnedVertex {
            v,
            w_prime: wg.weights[v],
            frozen: false,
            subscribers: Vec::new(),
        });
    }
    // `owned` is ascending by construction (vertex ids visited in order).
    let mut cluster: Cluster<MachineState, Msg> = {
        let mut it = states.into_iter();
        Cluster::new(cluster_cfg, move |_| {
            it.next().expect("one state per machine")
        })
    };

    // ── Startup: homes announce themselves to every endpoint's owner.
    cluster.try_round("subscribe", move |ctx, st, _inbox| {
        let mut endpoints: BTreeSet<u32> = BTreeSet::new();
        for e in &st.home_edges {
            endpoints.insert(e.u);
            endpoints.insert(e.v);
        }
        ctx.reserve_sends(endpoints.len());
        for v in endpoints {
            ctx.send(
                owner_of_key(v as u64, ctx.num_machines()),
                Msg::Subscribe {
                    v,
                    home: ctx.id as u32,
                },
            );
        }
    })?;

    let cfg = *config;
    loop {
        // stats+plan ride one segment: the host reads the coordinator's
        // decision only after both rounds have completed.
        let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();
        // ── stats: owners fold in subscriptions (level 0); homes report
        // active-edge counts to the coordinator.
        seg.push(SegmentRound::new(
            "stats",
            move |ctx, st: &mut MachineState, inbox| {
                for msg in inbox {
                    match msg {
                        Msg::Subscribe { v, home } => st.owned_mut(v).subscribers.push(home),
                        other => unreachable!("stats round got {other:?}"),
                    }
                }
                ctx.send(
                    0,
                    Msg::ActiveCount {
                        count: st.active_edges_local,
                    },
                );
            },
        ));

        // ── plan: the coordinator runs the compression schedule and
        // broadcasts the level parameters or Finish.
        let max_levels = cfg.max_levels;
        seg.push(SegmentRound::new(
            "plan",
            move |ctx, st: &mut MachineState, inbox| {
                let Some(coord) = st.coord.as_mut() else {
                    assert!(inbox.is_empty());
                    return;
                };
                let mut total: u64 = 0;
                for m in inbox {
                    match m {
                        Msg::ActiveCount { count } => total += count,
                        other => unreachable!("plan round got {other:?}"),
                    }
                }
                // No-progress fallback: a level that froze nothing (all parts
                // happened to induce zero internal edges) halves the part
                // count, doubling the internal fraction; if even m = 2 cannot
                // progress, hand the residual to the final solve.
                let stalled_now = coord.prev_active == Some(total) && total > 0;
                if stalled_now {
                    coord.shrink += 1;
                }
                let kind = if total <= budget_edges as u64 {
                    PlanKind::Finish
                } else if coord.level as usize >= max_levels {
                    coord.hit_max_levels = true;
                    PlanKind::Finish
                } else if stalled_now && coord.last_m <= 2 {
                    coord.stalled = true;
                    PlanKind::Finish
                } else {
                    let m = (parts_for(total as usize, budget_edges) >> coord.shrink).max(2);
                    assert!(
                        m <= ctx.num_machines(),
                        "level needs {m} solver machines but the cluster has {}; \
                     use recommended_cluster()",
                        ctx.num_machines()
                    );
                    coord.last_m = m as u32;
                    coord.level_log.push((total, m as u32));
                    PlanKind::RunLevel { m: m as u32 }
                };
                if kind == PlanKind::Finish {
                    coord.final_active = total;
                }
                coord.prev_active = Some(total);
                coord.decision = Some(kind);
                let level = coord.level;
                ctx.broadcast(Msg::Plan(PlanMsg { level, kind }));
            },
        ));
        cluster.try_run_segment(seg)?;

        let decision = cluster
            .state(0)
            .coord
            .as_ref()
            .and_then(|c| c.decision)
            .expect("coordinator always decides");

        match decision {
            PlanKind::RunLevel { .. } => run_level_rounds(&mut cluster, &cfg)?,
            PlanKind::Finish => {
                run_final_rounds(&mut cluster, &cfg)?;
                break;
            }
        }
    }

    // ── Assembly: gather the distributed output host-parallel by
    // ownership (every vertex has one owner, every edge one home; both
    // lists are kept ascending, so the gather is deterministic).
    let round_wall = cluster.round_wall().to_vec();
    let host_phases = cluster.host_phases().to_vec();
    let (states, trace) = cluster.finish();
    let membership: Vec<bool> = (0..n)
        .into_par_iter()
        .map(|v| {
            let st = &states[owner_of_key(v as u64, w)];
            let i = st
                .owned
                .binary_search_by_key(&(v as u32), |o| o.v)
                .expect("every vertex has an owner");
            st.owned[i].frozen
        })
        .collect();
    let mut edge_x: Vec<f64> = (0..m_total)
        .into_par_iter()
        .map(|geid| {
            let st = &states[owner_of_key(geid as u64, w)];
            let i = st
                .home_edges
                .binary_search_by_key(&(geid as u32), |e| e.geid)
                .expect("every edge has a home");
            let e = &st.home_edges[i];
            if e.frozen {
                e.x_final
            } else {
                0.0
            }
        })
        .collect();
    let mut levels = Vec::new();
    let mut stalled = false;
    let mut hit_max_levels = false;
    let mut final_stats = None;
    if let Some(c) = states.iter().find_map(|st| st.coord.as_deref()) {
        stalled = c.stalled;
        hit_max_levels = c.hit_max_levels;
        final_stats = c.final_stats;
        for (i, &(before, parts)) in c.level_log.iter().enumerate() {
            let after = c
                .level_log
                .get(i + 1)
                .map(|&(b, _)| b)
                .unwrap_or(c.final_active);
            levels.push(LevelStats {
                level: i,
                parts: parts as usize,
                active_edges_before: before as usize,
                active_edges_after: after as usize,
            });
        }
        for &(geid, x) in &c.final_edge_x {
            edge_x[geid as usize] = x;
        }
    }
    Ok(RoundCompressOutcome {
        cover: VertexCover::from_membership(membership),
        certificate: DualCertificate::new(edge_x),
        levels,
        final_stats,
        stalled,
        hit_max_levels,
        trace,
        round_wall,
        host_phases,
    })
}

/// The four level rounds after `plan`.
fn run_level_rounds(
    cluster: &mut Cluster<MachineState, Msg>,
    cfg: &RoundCompressConfig,
) -> Result<(), mpc_sim::ClusterError> {
    let cfg = *cfg;
    let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();

    // ── scatter: owners ship nonfrozen vertices to their part's solver;
    // homes ship part-internal active edges. Parts are a shared pure
    // function of (seed, level, vertex) — no agreement round needed.
    seg.push(SegmentRound::new(
        "scatter",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::Plan(p) => st.plan = Some(p),
                    other => unreachable!("scatter got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan broadcast precedes scatter");
            let PlanKind::RunLevel { m } = plan.kind else {
                unreachable!("level rounds run only under RunLevel");
            };
            let lseed = level_seed(cfg.seed, plan.level);
            let m = m as usize;
            for o in &st.owned {
                if o.frozen {
                    continue;
                }
                let part = VertexPartition::part_of_vertex(o.v, m, lseed);
                ctx.send(
                    part,
                    Msg::SolveVertex {
                        v: o.v,
                        w_prime: o.w_prime,
                    },
                );
            }
            for e in &st.home_edges {
                if e.frozen {
                    continue;
                }
                let pu = VertexPartition::part_of_vertex(e.u, m, lseed);
                if pu == VertexPartition::part_of_vertex(e.v, m, lseed) {
                    ctx.send(
                        pu,
                        Msg::SolveEdge {
                            geid: e.geid,
                            u: e.u,
                            v: e.v,
                        },
                    );
                }
            }
        },
    ));

    // ── solve: each solver assembles its induced residual instance, runs
    // the local solver to completion (free in the model), and reports
    // per-vertex outcomes to owners and per-edge duals to homes.
    seg.push(SegmentRound::new(
        "solve",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::SolveVertex { v, w_prime } => st.sim_vertices.push((v, w_prime)),
                    Msg::SolveEdge { geid, u, v } => st.sim_edges.push((geid, u, v)),
                    other => unreachable!("solve got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan is set");
            if !st.sim_vertices.is_empty() {
                st.sim_vertices.sort_unstable_by_key(|&(v, _)| v);
                st.sim_edges.sort_unstable_by_key(|&(geid, ..)| geid);
                let vertices: Vec<VertexId> = st.sim_vertices.iter().map(|&(v, _)| v).collect();
                let wp: Vec<f64> = st.sim_vertices.iter().map(|&(_, w)| w).collect();
                let pos = |v: u32| -> u32 {
                    vertices
                        .binary_search(&v)
                        .expect("edge endpoint was announced by its owner")
                        as u32
                };
                let edges: Vec<(u32, u32)> = st
                    .sim_edges
                    .iter()
                    .map(|&(_, u, v)| (pos(u), pos(v)))
                    .collect();
                let out = solve_instance(&cfg, plan.level as u64, &vertices, &wp, &edges);
                ctx.reserve_sends(st.sim_edges.len() + vertices.len());
                for (i, &(geid, ..)) in st.sim_edges.iter().enumerate() {
                    ctx.send(
                        owner_of_key(geid as u64, ctx.num_machines()),
                        Msg::EdgeDual { geid, x: out.x[i] },
                    );
                }
                for (i, &v) in vertices.iter().enumerate() {
                    if out.frozen[i] || out.y[i] > 0.0 {
                        ctx.send(
                            owner_of_key(v as u64, ctx.num_machines()),
                            Msg::VertexOutcome {
                                v,
                                y: out.y[i],
                                frozen: out.frozen[i],
                            },
                        );
                    }
                }
            }
            st.sim_vertices.clear();
            st.sim_edges.clear();
        },
    ));

    // ── apply: owners charge incident duals against residual weights and
    // fan freeze notices out to subscribed homes; homes finalize the
    // part-internal edges at their local dual values.
    seg.push(SegmentRound::new(
        "apply",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::VertexOutcome { v, y, frozen } => {
                        let o = st.owned_mut(v);
                        o.w_prime = (o.w_prime - y).max(0.0);
                        if frozen {
                            o.frozen = true;
                            for &home in &o.subscribers {
                                ctx.send(home as usize, Msg::FrozenNotice { v });
                            }
                        }
                    }
                    Msg::EdgeDual { geid, x } => {
                        let i = st
                            .home_edges
                            .binary_search_by_key(&geid, |e| e.geid)
                            .expect("edge dual for an edge homed here");
                        let e = &mut st.home_edges[i];
                        debug_assert!(!e.frozen, "part-internal edge finalized twice");
                        e.frozen = true;
                        e.x_final = x;
                        st.active_edges_local -= 1;
                    }
                    other => unreachable!("apply got {other:?}"),
                }
            }
        },
    ));

    // ── finalize: homes zero-finalize the surviving (cross-part) edges of
    // newly frozen vertices; the coordinator advances its level counter.
    seg.push(SegmentRound::new(
        "finalize",
        move |_ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FrozenNotice { v } => {
                        // Split borrow: the static index is read-only while
                        // the edges it points at are finalized.
                        let MachineState {
                            endpoint_index,
                            home_edges,
                            active_edges_local,
                            ..
                        } = &mut *st;
                        if let Some(idxs) = endpoint_index.get(&v) {
                            for &i in idxs {
                                let e = &mut home_edges[i as usize];
                                if !e.frozen {
                                    e.frozen = true;
                                    e.x_final = 0.0;
                                    *active_edges_local -= 1;
                                }
                            }
                        }
                    }
                    other => unreachable!("finalize got {other:?}"),
                }
            }
            if let Some(coord) = st.coord.as_mut() {
                coord.level += 1;
            }
        },
    ));

    cluster.try_run_segment(seg)
}

/// The three closing rounds after a `Finish` plan.
fn run_final_rounds(
    cluster: &mut Cluster<MachineState, Msg>,
    cfg: &RoundCompressConfig,
) -> Result<(), mpc_sim::ClusterError> {
    let cfg = *cfg;
    let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();

    // ── gather: the residual instance moves to the coordinator.
    seg.push(SegmentRound::new(
        "gather",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::Plan(p) => st.plan = Some(p),
                    other => unreachable!("gather got {other:?}"),
                }
            }
            ctx.reserve_sends(st.active_edges_local as usize);
            for e in &st.home_edges {
                if !e.frozen {
                    ctx.send(
                        0,
                        Msg::FinalEdge {
                            geid: e.geid,
                            u: e.u,
                            v: e.v,
                        },
                    );
                }
            }
            for o in &st.owned {
                if !o.frozen {
                    ctx.send(
                        0,
                        Msg::FinalVertex {
                            v: o.v,
                            w_prime: o.w_prime,
                        },
                    );
                }
            }
        },
    ));

    // ── solve: the coordinator runs the configured solver on the residual
    // instance (local computation is free) and reports freezes.
    seg.push(SegmentRound::new(
        "solve",
        move |ctx, st: &mut MachineState, inbox| {
            let Some(coord) = st.coord.as_mut() else {
                assert!(inbox.is_empty());
                return;
            };
            for msg in inbox {
                match msg {
                    Msg::FinalEdge { geid, u, v } => coord.final_edges.push((geid, u, v)),
                    Msg::FinalVertex { v, w_prime } => coord.final_vertices.push((v, w_prime)),
                    other => unreachable!("solve got {other:?}"),
                }
            }
            if coord.final_edges.is_empty() {
                return;
            }
            coord.final_vertices.sort_unstable_by_key(|&(v, _)| v);
            coord.final_edges.sort_unstable_by_key(|&(geid, ..)| geid);
            let rest: Vec<u32> = coord.final_vertices.iter().map(|&(v, _)| v).collect();
            let wp: Vec<f64> = coord.final_vertices.iter().map(|&(_, w)| w).collect();
            let pos =
                |v: u32| -> u32 { rest.binary_search(&v).expect("endpoint is nonfrozen") as u32 };
            let edges: Vec<(u32, u32)> = coord
                .final_edges
                .iter()
                .map(|&(_, u, v)| (pos(u), pos(v)))
                .collect();
            let stream_key = coord.level as u64 + 1_000_000; // distinct stream
            let out = solve_instance(&cfg, stream_key, &rest, &wp, &edges);
            for (i, &(geid, ..)) in coord.final_edges.iter().enumerate() {
                coord.final_edge_x.push((geid, out.x[i]));
            }
            for (i, &v) in rest.iter().enumerate() {
                if out.frozen[i] {
                    ctx.send(
                        owner_of_key(v as u64, ctx.num_machines()),
                        Msg::FrozenNotice { v },
                    );
                }
            }
            coord.final_stats = Some(FinalPhaseStats {
                vertices: rest.len(),
                edges: edges.len(),
                iterations: out.iterations,
            });
        },
    ));

    // ── apply: owners flip the final frozen flags.
    seg.push(SegmentRound::new(
        "apply",
        move |_ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FrozenNotice { v } => st.owned_mut(v).frozen = true,
                    other => unreachable!("apply got {other:?}"),
                }
            }
        },
    ));

    cluster.try_run_segment(seg)
}

/// The round-compression algorithm behind the shared
/// [`Executor`] trait, sized by [`recommended_cluster`] at run time.
#[derive(Debug, Clone, Copy)]
pub struct RoundCompressExecutor {
    /// Algorithm configuration.
    pub config: RoundCompressConfig,
}

impl RoundCompressExecutor {
    /// Executor over `config`.
    pub fn new(config: RoundCompressConfig) -> Self {
        Self { config }
    }
}

impl Executor for RoundCompressExecutor {
    fn name(&self) -> &'static str {
        "roundcompress"
    }

    fn run(&self, wg: &WeightedGraph) -> ExecutorOutcome {
        let cluster = recommended_cluster(wg, &self.config);
        let out = run_roundcompress(wg, &self.config, cluster);
        Self::package(out, &cluster)
    }

    fn try_run(&self, wg: &WeightedGraph) -> Result<ExecutorOutcome, mpc_sim::ClusterError> {
        let cluster = recommended_cluster(wg, &self.config);
        let out = try_run_roundcompress(wg, &self.config, cluster)?;
        Ok(Self::package(out, &cluster))
    }
}

impl RoundCompressExecutor {
    fn package(out: RoundCompressOutcome, cluster: &MpcConfig) -> ExecutorOutcome {
        let cost = out.cost_report(cluster);
        ExecutorOutcome {
            solution: CoverCertificate::new(out.cover, out.certificate),
            cost,
            critical_path: out.trace.critical_path.clone(),
            round_wall: out.round_wall,
            trace: out.trace,
            host_phases: out.host_phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::{gnm, gnp};
    use mwvc_graph::{Graph, WeightModel};

    const EPS: f64 = 0.1;

    fn instance(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let g = gnm(n, m, seed);
        let w = WeightModel::Uniform { lo: 1.0, hi: 6.0 }.sample(&g, seed ^ 1);
        WeightedGraph::new(g, w)
    }

    fn check(wg: &WeightedGraph, out: &RoundCompressOutcome, eps_bound: Option<f64>) {
        out.cover.verify(&wg.graph).expect("valid cover");
        let eidx = EdgeIndex::build(&wg.graph);
        if wg.num_edges() > 0 {
            // The global dual is an exactly feasible fractional matching
            // (float tolerance only), so the certificate needs no rescue
            // rescaling.
            let factor = out.certificate.feasibility_factor(wg, &eidx);
            assert!(factor <= 1.0 + 1e-9, "dual constraints violated: {factor}");
            if let Some(eps) = eps_bound {
                let ratio = out
                    .certificate
                    .certified_ratio(wg, &eidx, out.cover.weight(wg));
                assert!(
                    ratio <= 2.0 / (1.0 - 4.0 * eps) + 1e-9,
                    "certified ratio {ratio} exceeds 2/(1-4eps)"
                );
            }
        }
    }

    #[test]
    fn multi_level_run_certifies_and_counts_rounds() {
        let wg = instance(600, 9_600, 5); // d = 32 > budget 2n/600... E=9600 > 1200
        let cfg = RoundCompressConfig::practical(EPS, 17);
        let cluster = recommended_cluster(&wg, &cfg);
        let out = run_roundcompress(&wg, &cfg, cluster);
        check(&wg, &out, Some(EPS));
        assert!(out.num_levels() >= 1, "expected at least one level");
        assert!(out.trace.is_clean(), "no model violations expected");
        assert_eq!(
            out.trace.num_rounds(),
            out.num_levels() * round_cost::PER_LEVEL + round_cost::FINAL
        );
        // Every level strictly shrinks the residual.
        for l in &out.levels {
            assert!(l.active_edges_after < l.active_edges_before, "{l:?}");
            assert!(l.parts >= 2);
        }
        let report = out.cost_report(&cluster);
        assert_eq!(report.phases, out.num_levels());
        assert_eq!(report.mpc_rounds, out.trace.num_rounds());
        let t = report.traffic.expect("dataflow runs carry traffic");
        assert_eq!(t.total_message_words, out.trace.total_traffic());
        assert_eq!(t.violations, 0);
    }

    #[test]
    fn pricing_solver_certifies_factor_two() {
        let wg = instance(500, 8_000, 9);
        let cfg = RoundCompressConfig::pricing(23);
        let out = run_roundcompress(&wg, &cfg, recommended_cluster(&wg, &cfg));
        out.cover.verify(&wg.graph).expect("valid cover");
        let eidx = EdgeIndex::build(&wg.graph);
        let ratio = out
            .certificate
            .certified_ratio(&wg, &eidx, out.cover.weight(&wg));
        assert!(ratio <= 2.0 + 1e-9, "pricing certifies 2, got {ratio}");
    }

    #[test]
    fn small_instance_goes_straight_to_final_solve() {
        let wg = instance(400, 700, 3); // 700 <= budget 800
        let cfg = RoundCompressConfig::practical(EPS, 7);
        let out = run_roundcompress(&wg, &cfg, recommended_cluster(&wg, &cfg));
        assert_eq!(out.num_levels(), 0);
        assert!(out.final_stats.is_some());
        check(&wg, &out, Some(EPS));
    }

    #[test]
    fn empty_graph_handled() {
        let wg = WeightedGraph::unweighted(Graph::empty(50));
        let cfg = RoundCompressConfig::practical(EPS, 1);
        let out = run_roundcompress(&wg, &cfg, MpcConfig::new(4, 4096));
        assert_eq!(out.cover.size(), 0);
        assert_eq!(out.num_levels(), 0);
        assert!(out.final_stats.is_none());
    }

    #[test]
    fn deterministic_across_runs_and_seed_sensitive() {
        let wg = instance(300, 4_800, 21);
        let cfg = RoundCompressConfig::practical(EPS, 5);
        let cluster = recommended_cluster(&wg, &cfg);
        let a = run_roundcompress(&wg, &cfg, cluster);
        let b = run_roundcompress(&wg, &cfg, cluster);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.certificate, b.certificate);
        assert_eq!(a.trace, b.trace);
        let c = run_roundcompress(
            &wg,
            &RoundCompressConfig::practical(EPS, 6),
            recommended_cluster(&wg, &cfg),
        );
        assert_ne!(a.cover, c.cover, "different seed, different partitions");
    }

    #[test]
    fn memory_stays_within_model() {
        let wg = instance(800, 12_800, 41);
        let cfg = RoundCompressConfig::practical(EPS, 13);
        let cluster = recommended_cluster(&wg, &cfg);
        let out = run_roundcompress(&wg, &cfg, cluster);
        assert!(out.trace.is_clean());
        assert!(out.trace.peak_resident() <= cluster.memory_words);
        assert!(out.trace.peak_traffic() <= cluster.memory_words);
        // Near-linear regime sanity: S = O(n) with our constants.
        assert!(cluster.memory_words < 64 * wg.num_vertices());
    }

    #[test]
    fn executor_trait_reports_costs() {
        let wg = instance(400, 6_400, 11);
        let exec = RoundCompressExecutor::new(RoundCompressConfig::practical(EPS, 3));
        assert_eq!(exec.name(), "roundcompress");
        let out = exec.run(&wg);
        let eidx = EdgeIndex::build(&wg.graph);
        out.solution.verify(&wg, &eidx).expect("contract");
        assert!(out.cost.mpc_rounds >= round_cost::FINAL);
        assert!(out.cost.traffic.is_some());
    }

    #[test]
    fn sparse_graph_single_final_phase() {
        let g = gnp(400, 0.005, 3); // E ~ 400 <= budget 800
        let w = WeightModel::Exponential { mean: 3.0 }.sample(&g, 4);
        let wg = WeightedGraph::new(g, w);
        let cfg = RoundCompressConfig::practical(EPS, 11);
        let out = run_roundcompress(&wg, &cfg, recommended_cluster(&wg, &cfg));
        assert_eq!(out.num_levels(), 0);
        check(&wg, &out, Some(EPS));
    }
}
