//! `mwvc-roundcompress` — the first *alternative algorithm* in the tree:
//! an Assadi-style round-compressed MWVC executor (after *Simple Round
//! Compression for Parallel Vertex Cover*, arXiv:1709.04599), built
//! against the same [`mpc_sim`] router/accounting/rng primitives as the
//! Ghaffari–Jin–Nilis executor in `mwvc-core` and exposed behind the
//! shared [`mwvc_core::mpc::Executor`] trait so the benchmark harness can
//! compare the two head to head (`experiments compress`).
//!
//! # The algorithm
//!
//! Sample-and-conquer residual recursion. Each compression *level*:
//!
//! 1. the coordinator picks a part count `m ≈ √(2E/B)` so that the
//!    expected induced subgraph of one random vertex part (`E/m²` edges)
//!    fits a single machine's budget `B`,
//! 2. every nonfrozen vertex is assigned a part by a shared pure function
//!    of `(seed, level, vertex)` — no communication needed to agree,
//! 3. each part machine receives its induced residual subgraph (vertices
//!    with residual weights, part-internal active edges) and solves it
//!    *completely* with a local primal-dual algorithm
//!    ([`LocalSolver::PrimalDual`] — Algorithm 1 of the source paper,
//!    reused from `mwvc_core` — or [`LocalSolver::Pricing`] —
//!    Bar-Yehuda–Even from `mwvc_baselines`). Local computation is free
//!    in the MPC model,
//! 4. locally tight vertices freeze (join the cover), every part-internal
//!    edge is finalized with its local dual value, every surviving
//!    vertex's residual weight drops by its local incident dual sum, and
//!    cross-part edges touching a frozen vertex finalize at dual zero,
//! 5. the residual graph — cross-part edges between survivors — recurses;
//!    once it fits one machine, a final centralized solve finishes it.
//!
//! Because each level's dual raises are confined to disjoint induced
//! subgraphs and bounded by *residual* weights, the concatenation of all
//! levels' duals is an exactly feasible fractional matching, and every
//! cover vertex froze with incident dual at least `(1-4ε)` times its
//! original weight (threshold freezing, telescoped over levels). That
//! certifies `w(C) ≤ 2/(1-4ε) · Σx ≤ (2+O(ε)) · OPT` — checked
//! a-posteriori by the emitted [`mwvc_core::DualCertificate`] on every
//! run, with no trust required. (The [`LocalSolver::Pricing`] variant is
//! ε-free and certifies a plain factor 2.)
//!
//! Everything is deterministic given the config seed: partitions and
//! thresholds are counter-based, the dataflow is routed by the
//! deterministic `mpc_sim` router, and results are bit-identical at every
//! host pool width.

pub mod config;
pub mod executor;

pub use config::{level_seed, parts_for, BudgetRule, LocalSolver, RoundCompressConfig};
pub use executor::{
    recommended_cluster, round_cost, run_roundcompress, try_run_roundcompress, LevelStats,
    RoundCompressExecutor, RoundCompressOutcome,
};
