//! Model-checked interleavings of the crash/replay handoff on the
//! [`mpc_sim::ReadinessBoard`] — the fault-injection companion to
//! `loom_pipeline.rs`, compiled and run only under
//! `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p mpc-sim --test loom_faults
//! ```
//!
//! When a crash fault fires inside a pipelined segment, the recovery
//! engine writes the crash record it will replay from, then poisons the
//! crashing machine's readiness region
//! ([`ReadinessBoard::poison`]). Whichever worker later completes that
//! region must either (a) observe the poison and take the replay path —
//! in which case the `Release`/`Acquire` pair on the poison flag must
//! order the recovery engine's crash-record write before the replay
//! read — or (b) not observe it and run the inline compute, whose
//! payload reads are ordered by the readiness decrements exactly as in
//! the fault-free protocol. Loom's cell race detection proves both
//! happens-before edges on the real board; plain `Vec` memory in the
//! real cluster is invisible to loom, so the guarded regions are modeled
//! as `loom::cell::UnsafeCell`s here, like in `loom_pipeline.rs`.
//!
//! The `mutation_*` tests prove the suite has teeth: with
//! `LOOM_MUTATE=weaken-poison-ordering` (poison store/load dropped to
//! `Relaxed`) the replay read of the crash record loses its
//! happens-before edge, and with `LOOM_MUTATE=weaken-ready-ordering`
//! (readiness decrements dropped to `Relaxed`) the non-poisoned inline
//! compute loses its edge to the placements — either way the crash
//! scenario must FAIL model checking as a data race, and the test
//! asserts that failure. CI runs each mutation as a separate filtered
//! invocation; the unmutated run executes the whole file.
//!
//! Schedule-count floor: `wide_crash_handoff_explores_widely` asserts
//! at least 10,000 distinct schedules (measured ~45,600 at preemption
//! bound 3), so the suite's coverage floor is enforced by the tests
//! themselves.

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use mpc_sim::ReadinessBoard;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// One modeled faulted round: the armed board, the memory regions it
/// guards, and the crash records the recovery engine hands to replay.
struct FaultFabric {
    m: usize,
    board: ReadinessBoard,
    /// Inbox region contents at `region * m + sender`: written by the
    /// placing sender, read by the region's inline compute (only when
    /// the region is not poisoned).
    payloads: Vec<UnsafeCell<u64>>,
    /// Outbox arenas: drained by the owner's placement, refilled by the
    /// owner's inline compute.
    outboxes: Vec<UnsafeCell<u64>>,
    /// Crash records, one per region: written by the recovery engine
    /// *before* it poisons the region, read by whichever worker observes
    /// the poison on completion (the replay handoff under test).
    crash_records: Vec<UnsafeCell<u64>>,
    /// Inline computes run per region.
    computed: Vec<AtomicUsize>,
    /// Replay handoffs taken per region.
    replayed: Vec<AtomicUsize>,
}

impl FaultFabric {
    fn new(m: usize, region_lens: &[usize]) -> Arc<Self> {
        let mut board = ReadinessBoard::new(m);
        board.reset(region_lens);
        Arc::new(FaultFabric {
            m,
            board,
            payloads: (0..m * m).map(|_| UnsafeCell::new(0)).collect(),
            outboxes: (0..m).map(|_| UnsafeCell::new(0)).collect(),
            crash_records: (0..m).map(|_| UnsafeCell::new(0)).collect(),
            computed: (0..m).map(|_| AtomicUsize::new(0)).collect(),
            replayed: (0..m).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// The recovery engine crashing machine `r`: record what replay will
    /// restore from, then poison the region. The poison store must
    /// publish the record write.
    fn crash(&self, r: usize) {
        // SAFETY: (modeled) only the poisoned completion path reads this
        // cell, and only after observing the poison flag — the ordering
        // loom checks here.
        self.crash_records[r].with_mut(|p| unsafe { *p = 0xdead_0000 + r as u64 });
        self.board.poison(r);
    }

    /// Region `i` completed: a poisoned region hands off to replay (and
    /// must see the crash record), a clean one runs the inline compute
    /// (and must see every placement plus its own drain).
    fn complete(&self, i: usize) {
        if self.board.is_poisoned(i) {
            // SAFETY: (modeled) the Acquire poison load orders the
            // recovery engine's record write before this read.
            self.crash_records[i].with(|p| unsafe { *p });
            self.replayed[i].fetch_add(1, Ordering::SeqCst);
            return;
        }
        for src in 0..self.m {
            // SAFETY: (modeled) the completing decrement orders every
            // placement write before this read.
            self.payloads[i * self.m + src].with(|p| unsafe { *p });
        }
        // SAFETY: (modeled) the sender token orders the owner's drain
        // before this refill.
        self.outboxes[i].with_mut(|p| unsafe { *p += 1 });
        self.computed[i].fetch_add(1, Ordering::SeqCst);
    }

    /// Sender `j`: place into each region in `dests`, drain the own
    /// outbox, release the token; handle any completion the board hands
    /// over (this is where the poison check happens in the real
    /// scheduler's placement loop).
    fn sender(&self, j: usize, dests: &[usize]) {
        for &d in dests {
            // SAFETY: (modeled) placement writes the region before the
            // delivery decrement publishes it.
            self.payloads[d * self.m + j].with_mut(|p| unsafe { *p = 10 + j as u64 });
            if self.board.deliver(d, 1) {
                self.complete(d);
            }
        }
        // SAFETY: (modeled) the drain runs while the token is armed, so
        // no compute aliases the arena yet.
        self.outboxes[j].with_mut(|p| unsafe { *p += 1 });
        if self.board.finish_sender(j) {
            self.complete(j);
        }
    }

    fn assert_each_region_handled_once(&self) {
        for i in 0..self.m {
            let c = self.computed[i].load(Ordering::SeqCst);
            let r = self.replayed[i].load(Ordering::SeqCst);
            assert_eq!(c + r, 1, "region {i}: {c} computes + {r} replays");
        }
    }
}

/// Runs a model expected to fail, swallowing the (intentional) panic
/// noise, and returns the failure message.
fn expect_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    panic::set_hook(prev);
    let payload = result.expect_err("model unexpectedly passed every schedule");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// The fundamental crash handoff: two senders exchanging regions while
/// the recovery engine crashes machine 0 concurrently. Whichever worker
/// completes region 0 races the poison; both resolutions (inline
/// compute vs replay) must be race-free, and the region is handled
/// exactly once either way. This is the scenario both seeded mutations
/// must break.
fn crash_handoff() {
    let fabric = FaultFabric::new(2, &[1, 1]);
    let peer = Arc::clone(&fabric);
    let engine = Arc::clone(&fabric);
    let t = loom::thread::spawn(move || peer.sender(1, &[0]));
    let c = loom::thread::spawn(move || engine.crash(0));
    fabric.sender(0, &[1]);
    t.join().expect("sender thread panicked");
    c.join().expect("recovery thread panicked");
    fabric.assert_each_region_handled_once();
}

#[test]
fn crash_poison_handoff_is_race_free() {
    let report = loom::Builder::new().check(crash_handoff);
    eprintln!("crash_poison_handoff_is_race_free: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Poison set before the segment spawns (the production shape:
/// `try_run_segment` poisons every crashing region, then runs the
/// degraded segment): every interleaving must route region 0 to replay,
/// never to the inline compute.
#[test]
fn pre_poisoned_region_always_degrades_to_replay() {
    let report = loom::Builder::new().check(|| {
        let fabric = FaultFabric::new(2, &[1, 1]);
        fabric.crash(0);
        let peer = Arc::clone(&fabric);
        let t = loom::thread::spawn(move || peer.sender(1, &[0]));
        fabric.sender(0, &[1]);
        t.join().expect("sender thread panicked");
        fabric.assert_each_region_handled_once();
        assert_eq!(
            fabric.replayed[0].load(Ordering::SeqCst),
            1,
            "a pre-poisoned region must be replayed"
        );
        assert_eq!(
            fabric.computed[0].load(Ordering::SeqCst),
            0,
            "a pre-poisoned region must never run its inline compute"
        );
    });
    eprintln!("pre_poisoned_region_always_degrades_to_replay: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// Both machines crash while both senders run: every completion races a
/// poison, and both replay reads need their happens-before edge from
/// their own crashing store.
#[test]
fn double_crash_both_regions_resolve_once() {
    let report = loom::Builder::new().check(|| {
        let fabric = FaultFabric::new(2, &[1, 1]);
        let peer = Arc::clone(&fabric);
        let engine = Arc::clone(&fabric);
        let t = loom::thread::spawn(move || peer.sender(1, &[0]));
        let c = loom::thread::spawn(move || {
            engine.crash(0);
            engine.crash(1);
        });
        fabric.sender(0, &[1]);
        t.join().expect("sender thread panicked");
        c.join().expect("recovery thread panicked");
        fabric.assert_each_region_handled_once();
    });
    eprintln!("double_crash_both_regions_resolve_once: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// The wide-exploration scenario: three senders all-to-all with a
/// concurrent crash of machine 0 — every region's counter takes
/// decrements from all three threads, region 0's completion additionally
/// races the poison. Four threads make the schedule tree much denser
/// than the pipeline suite's three, so the preemption bound stays at 3
/// to finish under loom's iteration cap while still enforcing the
/// suite's >= 10,000-distinct-schedules coverage floor.
#[test]
fn wide_crash_handoff_explores_widely() {
    let mut builder = loom::Builder::new();
    builder.preemption_bound = 3;
    let report = builder.check(|| {
        let fabric = FaultFabric::new(3, &[2, 2, 2]);
        let f1 = Arc::clone(&fabric);
        let f2 = Arc::clone(&fabric);
        let engine = Arc::clone(&fabric);
        let t1 = loom::thread::spawn(move || f1.sender(1, &[2, 0]));
        let t2 = loom::thread::spawn(move || f2.sender(2, &[0, 1]));
        let c = loom::thread::spawn(move || engine.crash(0));
        fabric.sender(0, &[1, 2]);
        t1.join().expect("sender 1 panicked");
        t2.join().expect("sender 2 panicked");
        c.join().expect("recovery thread panicked");
        fabric.assert_each_region_handled_once();
    });
    eprintln!("wide_crash_handoff_explores_widely: {report:?}");
    assert!(
        !report.truncated,
        "exploration truncated at the iteration cap"
    );
    assert!(
        report.schedules >= 10_000,
        "coverage floor regressed: explored only {} schedules",
        report.schedules
    );
}

/// Seeded mutation "weaken-poison-ordering": the poison store/load drop
/// to `Relaxed`, so a completion that observes the flag is no longer
/// ordered after the recovery engine's crash-record write — the model
/// must report a data race on the replay read. Without the mutation the
/// same scenario must pass every schedule.
#[test]
fn mutation_weaken_poison_ordering_is_detected() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("weaken-poison-ordering") => {
            let msg = expect_failure(crash_handoff);
            assert!(msg.contains("data race"), "expected data race, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(crash_handoff);
            eprintln!("mutation_weaken_poison_ordering_is_detected (unmutated): {report:?}");
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}

/// Seeded mutation "weaken-ready-ordering": the readiness decrements
/// drop to `Relaxed`, so in the schedule where region 0 completes
/// cleanly (poison not yet observed) via a thread other than its placer,
/// the inline compute's payload read loses its edge to the placement —
/// the model must report a data race. Without the mutation the same
/// scenario must pass every schedule.
#[test]
fn mutation_weaken_ready_ordering_is_detected_in_crash_handoff() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("weaken-ready-ordering") => {
            let msg = expect_failure(crash_handoff);
            assert!(msg.contains("data race"), "expected data race, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(crash_handoff);
            eprintln!(
                "mutation_weaken_ready_ordering_is_detected_in_crash_handoff (unmutated): {report:?}"
            );
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}
