//! Properties of the zero-allocation message fabric:
//!
//! 1. **Oracle equivalence** — random outbox shapes (empty senders,
//!    self-sends, hot destinations, sizes straddling the parallel
//!    cutover) routed through the flat fabric, on both shuffle paths,
//!    produce exactly the inbox order, word counts, and violations of the
//!    retained naive reference shuffle.
//! 2. **Allocation discipline** — once warmed up at the peak message
//!    shape, steady-state rounds perform **zero** inbox/outbox heap
//!    allocation, pinned by a counting global allocator around the bare
//!    fabric and by buffer-identity checks through the full `Cluster`.

use mpc_sim::router::{
    reference_shuffle, route_forced, stage_outboxes, FlatInboxes, RouteScratch,
    PARALLEL_SHUFFLE_MIN_MSGS,
};
use mpc_sim::{Cluster, MpcConfig, Violation, ViolationKind, Words};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global allocator that counts allocations and deallocations (used by
/// the steady-state and drop-discipline tests; the property tests ignore
/// it). A `realloc` logically frees the old block and allocates a new
/// one, so it bumps both counters — `ALLOCS - DEALLOCS` is therefore the
/// number of live heap blocks.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers every operation to `System` with unchanged arguments;
// the counter updates do not allocate, so the impl upholds the
// `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn deallocations() -> usize {
    DEALLOCS.load(Ordering::Relaxed)
}

/// Computes the violations the reference word totals imply under `cap`.
fn reference_violations(
    round: usize,
    cap: usize,
    sent: &[usize],
    received: &[usize],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (machine, &w) in sent.iter().enumerate() {
        if w > cap {
            out.push(Violation {
                round,
                machine,
                kind: ViolationKind::SentExceedsMemory,
                words: w,
                cap,
            });
        }
        let r = received[machine];
        if r > cap {
            out.push(Violation {
                round,
                machine,
                kind: ViolationKind::ReceivedExceedsMemory,
                words: r,
                cap,
            });
        }
    }
    out
}

/// One sender's plan: `(messages, hot_fraction_percent, hot_dest)`.
type SenderPlan = (usize, usize, usize);

/// Expands per-sender plans into concrete `(dest, payload)` pair lists:
/// `hot` percent of each sender's messages go to its hot destination
/// (bursts → long runs, including self-sends), the rest round-robin.
fn build_pairs(m: usize, plans: &[SenderPlan]) -> Vec<Vec<(usize, u64)>> {
    (0..m)
        .map(|from| {
            let (count, hot_pct, hot) = plans[from % plans.len()];
            (0..count)
                .map(|k| {
                    let to = if k % 100 < hot_pct {
                        hot % m
                    } else {
                        (from + k * 13 + 1) % m
                    };
                    (to, ((from as u64) << 32) | k as u64)
                })
                .collect()
        })
        .collect()
}

/// Routes pairs through the flat fabric on the given path and compares
/// everything against the naive reference.
fn assert_matches_reference(
    m: usize,
    cap: usize,
    pairs: Vec<Vec<(usize, u64)>>,
    parallel: bool,
) -> Result<(), TestCaseError> {
    let config = MpcConfig::new(m, cap).audited();
    let mut outboxes = stage_outboxes(m, pairs.clone());
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();
    route_forced(
        &config,
        3,
        &mut outboxes,
        &mut inboxes,
        &mut scratch,
        parallel,
    );

    let (ref_inboxes, ref_sent, ref_received) = reference_shuffle(m, pairs);
    for (i, expect) in ref_inboxes.iter().enumerate() {
        prop_assert_eq!(
            inboxes.slice(i),
            expect.as_slice(),
            "inbox {} order diverged (parallel = {})",
            i,
            parallel
        );
    }
    prop_assert_eq!(&scratch.sent_words, &ref_sent);
    prop_assert_eq!(&scratch.received_words, &ref_received);
    let expect = reference_violations(3, cap, &ref_sent, &ref_received);
    prop_assert_eq!(&scratch.violations, &expect);
    // Outboxes came back empty (drained, ready for reuse).
    for ob in &outboxes {
        prop_assert!(ob.is_empty());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fabric shapes — empty senders, self-sends, hot
    /// destinations — match the reference on both shuffle paths.
    #[test]
    fn fabric_matches_reference(
        m in 1usize..10,
        tight_cap in 0usize..2,
        cap_small in 8usize..64,
        plans in proptest::collection::vec(
            (0usize..300, 0usize..=100, 0usize..16),
            1..8
        ),
        par_bit in 0usize..2,
    ) {
        let cap = if tight_cap == 1 { cap_small } else { usize::MAX / 4 };
        let pairs = build_pairs(m, &plans);
        assert_matches_reference(m, cap, pairs, par_bit == 1)?;
    }

    /// Shapes straddling `PARALLEL_SHUFFLE_MIN_MSGS` (the auto-cutover
    /// boundary) match the reference on both paths.
    #[test]
    fn cutover_boundary_matches_reference(
        delta in -3i64..=3,
        hot_pct in 0usize..=100,
        par_bit in 0usize..2,
    ) {
        let parallel = par_bit == 1;
        let m = 6;
        let total = (PARALLEL_SHUFFLE_MIN_MSGS as i64 + delta) as usize;
        let per = total / m;
        let rem = total - per * (m - 1);
        let plans: Vec<SenderPlan> = (0..m)
            .map(|i| (if i == 0 { rem } else { per }, hot_pct, i * 3))
            .collect();
        let mut pairs = build_pairs(m, &plans);
        // `build_pairs` cycles plans by sender index; with plans.len() == m
        // each sender gets its own plan. Sanity-check the total.
        let n: usize = pairs.iter().map(Vec::len).sum();
        prop_assert_eq!(n, total);
        // Make one sender empty to cover the empty-outbox edge.
        pairs[m - 1].clear();
        assert_matches_reference(m, usize::MAX / 4, pairs, parallel)?;
    }
}

/// The bare fabric performs exactly zero heap allocations per
/// steady-state round (sequential path; the parallel path is pinned by
/// pointer identity below, since the host pool's scheduling is outside
/// the fabric).
#[test]
fn steady_state_rounds_allocate_nothing() {
    let m = 8;
    let config = MpcConfig::new(m, usize::MAX / 4);
    let plans: Vec<SenderPlan> = (0..m).map(|i| (180 + 11 * i, 40, (i + 3) % m)).collect();
    let pairs = build_pairs(m, &plans);

    let mut outboxes = stage_outboxes(m, pairs.clone());
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();

    let refill = |outboxes: &mut Vec<mpc_sim::Outbox<u64>>| {
        for (ob, list) in outboxes.iter_mut().zip(&pairs) {
            for &(to, msg) in list {
                ob.push(to, msg);
            }
        }
    };

    // Warm-up: grows every buffer to the peak shape.
    route_forced(&config, 0, &mut outboxes, &mut inboxes, &mut scratch, false);
    inboxes.clear();
    refill(&mut outboxes);
    route_forced(&config, 1, &mut outboxes, &mut inboxes, &mut scratch, false);

    // Steady state: >= 3 consecutive rounds, zero allocations.
    for round in 2..6 {
        inboxes.clear();
        refill(&mut outboxes);
        let before = allocations();
        route_forced(
            &config,
            round,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            false,
        );
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "round {round} allocated on the steady-state fabric path"
        );
    }
}

/// A live subscriber that only bumps atomics — the strictest legal
/// subscriber for the hot path, per the `Subscriber` contract ("must not
/// allocate" there). Installed once for this whole test binary; it is
/// behaviorally inert, so the other tests are unaffected.
struct CountingSubscriber {
    enters: AtomicUsize,
    exits: AtomicUsize,
    events: AtomicUsize,
}

impl tracing::Subscriber for CountingSubscriber {
    fn enter(&self, _meta: &'static tracing::Metadata) {
        self.enters.fetch_add(1, Ordering::Relaxed);
    }

    fn exit(&self, _meta: &'static tracing::Metadata) {
        self.exits.fetch_add(1, Ordering::Relaxed);
    }

    fn event(&self, _meta: &'static tracing::Metadata, _fields: &[(&'static str, u64)]) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

static TRACE_COUNTS: CountingSubscriber = CountingSubscriber {
    enters: AtomicUsize::new(0),
    exits: AtomicUsize::new(0),
    events: AtomicUsize::new(0),
};

/// With tracing **enabled and subscribed**, the instrumented fabric hot
/// path still performs exactly zero heap allocations per steady-state
/// round: the macros dispatch `&'static` metadata and stack-borrowed
/// integer fields, and the region events land in the preallocated rings.
#[test]
fn traced_steady_state_rounds_allocate_nothing() {
    let _ = tracing::set_subscriber(&TRACE_COUNTS);
    let m = 6;
    let config = MpcConfig::new(m, usize::MAX / 4);
    let plans: Vec<SenderPlan> = (0..m).map(|i| (150 + 7 * i, 35, (i + 2) % m)).collect();
    let pairs = build_pairs(m, &plans);

    let mut outboxes = stage_outboxes(m, pairs.clone());
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();

    let refill = |outboxes: &mut Vec<mpc_sim::Outbox<u64>>| {
        for (ob, list) in outboxes.iter_mut().zip(&pairs) {
            for &(to, msg) in list {
                ob.push(to, msg);
            }
        }
    };

    // Warm-up to the peak shape, then drain the rings like the cluster's
    // bookkeeping step does every round.
    let mut drained = Vec::new();
    route_forced(&config, 0, &mut outboxes, &mut inboxes, &mut scratch, false);
    scratch.drain_events_into(&mut drained, 0);
    drained.reserve(64 * m); // peak shape for the drain target too

    let events_before = TRACE_COUNTS.events.load(Ordering::Relaxed);
    for round in 1..5 {
        inboxes.clear();
        refill(&mut outboxes);
        let before = allocations();
        route_forced(
            &config,
            round,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            false,
        );
        scratch.drain_events_into(&mut drained, round as u32);
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "round {round} allocated on the traced steady-state fabric path"
        );
    }
    // The subscriber really observed the rounds — this was the enabled
    // path, not a filtered no-op.
    assert!(
        TRACE_COUNTS.events.load(Ordering::Relaxed) >= events_before + 4,
        "the traced rounds must have dispatched their layout events"
    );
    // And the rings really carried the per-machine region measurements.
    assert!(drained.iter().any(|e| e.value > 0));
    assert_eq!(drained.len(), 5 * m * 2); // RegionMsgs + RegionWords per machine per round
}

/// Through the full `Cluster`, the shared inbox buffer and the delivered
/// slices sit at identical addresses across >= 3 steady-state rounds —
/// buffer identity, the allocation discipline observable from safe code.
#[test]
fn cluster_reuses_buffers_across_rounds() {
    struct Nil;
    impl Words for Nil {
        fn words(&self) -> usize {
            0
        }
    }

    let m = 5;
    let mut cluster: Cluster<Nil, u64> = Cluster::new(MpcConfig::new(m, 1 << 20), |_| Nil);
    let round = |c: &mut Cluster<Nil, u64>| {
        c.round("steady", |ctx, _s, inbox| {
            for msg in inbox {
                std::hint::black_box(msg);
            }
            // The same message pattern every round: a burst to the next
            // machine, one to the coordinator, one self-send.
            let next = (ctx.id + 1) % ctx.num_machines();
            ctx.reserve_sends(34);
            for k in 0..32u64 {
                ctx.send(next, k);
            }
            ctx.send(0, ctx.id as u64);
            ctx.send(ctx.id, 99);
        });
    };
    // Warm-up.
    round(&mut cluster);
    round(&mut cluster);
    let buf = cluster.inbox_buffer_ptr();
    let pending0 = cluster.pending(0).as_ptr();
    for _ in 0..3 {
        round(&mut cluster);
        assert_eq!(cluster.inbox_buffer_ptr(), buf, "inbox buffer reused");
        assert_eq!(
            cluster.pending(0).as_ptr(),
            pending0,
            "identical rounds produce identical region layout"
        );
    }
    // Machine 0 receives the burst from machine m-1, one coordinator
    // message per machine, and its own self-send.
    assert_eq!(cluster.pending(0).len(), 32 + m + 1);
}

/// Heap-owning message for the drop-discipline test: counts
/// constructions and drops, and owns a `Box` so a double-drop would also
/// corrupt the allocator rather than just a counter.
struct Tracked(Box<u64>);

static CREATED: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicUsize = AtomicUsize::new(0);

impl Tracked {
    fn new(v: u64) -> Self {
        CREATED.fetch_add(1, Ordering::Relaxed);
        Tracked(Box::new(v))
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        // Read through the box first, so a double-drop dereferences the
        // freed payload instead of only over-counting.
        std::hint::black_box(*self.0);
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

impl Words for Tracked {
    fn words(&self) -> usize {
        1
    }
}

/// Runs `rounds` cluster rounds of `Tracked` traffic in which machines
/// drop their [`Inbox`] view at varying points — fully drained, untouched,
/// and mid-iteration — then drops the cluster with the final round's
/// deliveries still pending in the flat buffer.
///
/// Exercises all three ownership-discharge paths: messages moved out by
/// iteration (dropped by the consumer), the unread tail dropped by
/// `Inbox::drop`, and pending deliveries dropped by `FlatInboxes::drop`.
fn run_tracked_scenario(m: usize, rounds: usize, per_dest: usize) {
    struct Sum(u64);
    impl Words for Sum {
        fn words(&self) -> usize {
            1
        }
    }

    let mut cluster: Cluster<Sum, Tracked> = Cluster::new(MpcConfig::new(m, 1 << 20), |_| Sum(0));
    for r in 0..rounds {
        cluster.round("churn", move |ctx, state, mut inbox| {
            // Vary the drain point by machine and round so every drop
            // path occurs: full drain, immediate drop, mid-iteration drop.
            let take = match (ctx.id + r) % 3 {
                0 => inbox.len(),
                1 => 0,
                _ => inbox.len() / 2,
            };
            for _ in 0..take {
                let msg = inbox.next().expect("inbox shorter than its len()");
                state.0 += *msg.0;
            }
            // `inbox` is dropped here; any unread tail must be dropped by
            // the view, exactly once.
            let next = (ctx.id + 1) % ctx.num_machines();
            ctx.reserve_sends(per_dest);
            for k in 0..per_dest {
                ctx.send(next, Tracked::new(k as u64));
            }
        });
    }
    drop(cluster);
}

/// Dropping an [`Inbox`] mid-iteration — across buffer-recycling rounds
/// and with deliveries still pending at cluster teardown — neither leaks
/// nor double-drops a message, at both the `Drop`-counter and the
/// allocator level.
#[test]
fn partial_inbox_drains_drop_every_message_exactly_once() {
    let m = 4;
    let per_dest = 7;

    // Warm-up pass: forces lazily initialized global state (the host
    // pool, trace buffers) so the allocator-balance check below observes
    // a closed scope.
    run_tracked_scenario(m, 2, per_dest);
    let created0 = CREATED.load(Ordering::Relaxed);
    let dropped0 = DROPPED.load(Ordering::Relaxed);
    assert_eq!(created0, dropped0, "warm-up pass leaked or double-dropped");

    let rounds = 5;
    let allocs_before = allocations();
    let deallocs_before = deallocations();
    run_tracked_scenario(m, rounds, per_dest);
    let allocs_delta = allocations() - allocs_before;
    let deallocs_delta = deallocations() - deallocs_before;

    let created = CREATED.load(Ordering::Relaxed) - created0;
    let dropped = DROPPED.load(Ordering::Relaxed) - dropped0;
    assert_eq!(
        created,
        rounds * m * per_dest,
        "every send constructs exactly one message"
    );
    assert_eq!(
        created, dropped,
        "messages dropped exactly once (fewer = leak, more = double-drop)"
    );
    assert_eq!(
        allocs_delta, deallocs_delta,
        "the scenario must return every heap block it allocated"
    );
}
