//! Properties of the dependency-pipelined round scheduler:
//!
//! 1. **Mode equivalence** — random segment shapes (skewed senders, empty
//!    rounds, sizes straddling the parallel-shuffle cutover) produce
//!    bit-identical machine states, pending inboxes, and execution traces
//!    (round stats, violations, critical path) under the barrier and
//!    pipelined schedulers.
//! 2. **Fabric-level oracle** — the sequential pipelined routing step
//!    ([`pipelined_route_step`]) hands every region out exactly once, in
//!    canonical order, with exactly the reference shuffle's word totals
//!    and violations.
//! 3. **Allocation discipline** — once warmed up at the peak message
//!    shape, steady-state pipelined rounds perform **zero** inbox/outbox
//!    heap allocation, pinned by a counting global allocator around the
//!    bare step and by buffer-identity checks through the full pipelined
//!    `Cluster`.

use mpc_sim::pipeline::pipelined_route_step;
use mpc_sim::router::{reference_shuffle, stage_outboxes, PARALLEL_SHUFFLE_MIN_MSGS};
use mpc_sim::{
    Cluster, ExecutionTrace, FlatInboxes, Inbox, MachineCtx, MpcConfig, Outbox, ReadinessBoard,
    RoundScheduler, RouteScratch, SegmentRound, Violation, ViolationKind, Words,
};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global allocator that counts allocations (used by the steady-state
/// test; everything else ignores it). A `realloc` logically frees the old
/// block and allocates a new one, so it counts as an allocation too.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers every operation to `System` with unchanged arguments;
// the counter updates do not allocate, so the impl upholds the
// `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// One sender's plan for one round: `(messages, hot_fraction_percent,
/// hot_dest)` — the same shape language as `fabric_properties.rs`.
type SenderPlan = (usize, usize, usize);

/// Expands per-sender plans into concrete `(dest, payload)` pair lists:
/// `hot` percent of each sender's messages go to its hot destination
/// (bursts → long runs, including self-sends), the rest round-robin.
fn build_pairs(m: usize, plans: &[SenderPlan]) -> Vec<Vec<(usize, u64)>> {
    (0..m)
        .map(|from| {
            let (count, hot_pct, hot) = plans[from % plans.len()];
            (0..count)
                .map(|k| {
                    let to = if k % 100 < hot_pct {
                        hot % m
                    } else {
                        (from + k * 13 + 1) % m
                    };
                    (to, ((from as u64) << 32) | k as u64)
                })
                .collect()
        })
        .collect()
}

/// Computes the violations the reference word totals imply under `cap`.
fn reference_violations(
    round: usize,
    cap: usize,
    sent: &[usize],
    received: &[usize],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (machine, &w) in sent.iter().enumerate() {
        if w > cap {
            out.push(Violation {
                round,
                machine,
                kind: ViolationKind::SentExceedsMemory,
                words: w,
                cap,
            });
        }
        let r = received[machine];
        if r > cap {
            out.push(Violation {
                round,
                machine,
                kind: ViolationKind::ReceivedExceedsMemory,
                words: r,
                cap,
            });
        }
    }
    out
}

// -- Mode equivalence (full cluster) --------------------------------------

/// Machine state for the equivalence tests: an order-sensitive digest of
/// every received payload, so any reordering or loss shows up.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Digest(u64);

impl Words for Digest {
    fn words(&self) -> usize {
        1
    }
}

/// Runs `rounds` (one plan list per round, cycled over machines) as a
/// single segment under `scheduler`, returning the final state digests,
/// each machine's pending last-round inbox, and the trace.
fn run_schedule(
    scheduler: RoundScheduler,
    m: usize,
    cap: usize,
    rounds: &[Vec<SenderPlan>],
) -> (Vec<u64>, Vec<Vec<u64>>, ExecutionTrace) {
    let config = MpcConfig::new(m, cap).audited().with_scheduler(scheduler);
    let mut cluster: Cluster<Digest, u64> = Cluster::new(config, |_| Digest(0));
    let mut seg: Vec<SegmentRound<Digest, u64>> = Vec::new();
    for plans in rounds {
        let plans = plans.clone();
        seg.push(SegmentRound::new(
            "prop",
            move |ctx: &mut MachineCtx<u64>, st: &mut Digest, inbox: Inbox<'_, u64>| {
                for msg in inbox {
                    st.0 = st.0.wrapping_mul(0x0100_0000_01b3).wrapping_add(msg);
                }
                let m = ctx.num_machines();
                let (count, hot_pct, hot) = plans[ctx.id % plans.len()];
                ctx.reserve_sends(count);
                for k in 0..count {
                    let to = if k % 100 < hot_pct {
                        hot % m
                    } else {
                        (ctx.id + k * 13 + 1) % m
                    };
                    ctx.send(to, ((ctx.id as u64) << 32) | k as u64);
                }
            },
        ));
    }
    cluster.run_segment(seg);
    let pending: Vec<Vec<u64>> = (0..m).map(|i| cluster.pending(i).to_vec()).collect();
    let (states, trace) = cluster.finish();
    (states.into_iter().map(|s| s.0).collect(), pending, trace)
}

/// Asserts barrier and pipelined execution of `rounds` agree on every
/// observable — states, pending inboxes, and the full trace (round
/// stats, violations, critical path) — and returns the shared trace.
fn assert_modes_agree(m: usize, cap: usize, rounds: &[Vec<SenderPlan>]) -> ExecutionTrace {
    let (s_b, p_b, t_b) = run_schedule(RoundScheduler::Barrier, m, cap, rounds);
    let (s_p, p_p, t_p) = run_schedule(RoundScheduler::Pipelined, m, cap, rounds);
    assert_eq!(s_b, s_p, "machine states diverged across schedulers");
    assert_eq!(p_b, p_p, "pending inboxes diverged across schedulers");
    assert_eq!(t_b, t_p, "traces diverged across schedulers");
    assert!(
        t_p.critical_path.pipelined_makespan <= t_p.critical_path.barrier_makespan,
        "pipelined makespan exceeds barrier: {:?}",
        t_p.critical_path
    );
    t_p
}

// -- Fabric-level oracle (sequential pipelined step) -----------------------

/// Drives one `pipelined_route_step` and checks the exactly-once region
/// handoff, canonical inbox order, word totals, and violations against
/// the naive reference shuffle.
fn assert_step_matches_reference(m: usize, cap: usize, pairs: Vec<Vec<(usize, u64)>>) {
    let config = MpcConfig::new(m, cap).audited().pipelined();
    let mut outboxes = stage_outboxes(m, pairs.clone());
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();
    let mut board = ReadinessBoard::new(m);
    let mut got: Vec<Option<Vec<u64>>> = vec![None; m];
    pipelined_route_step(
        &config,
        3,
        &mut outboxes,
        &mut inboxes,
        &mut scratch,
        &mut board,
        |region, inbox| {
            assert!(got[region].is_none(), "region {region} handed out twice");
            got[region] = Some(inbox.collect());
        },
    );

    let (ref_inboxes, ref_sent, ref_received) = reference_shuffle(m, pairs);
    for (i, expect) in ref_inboxes.iter().enumerate() {
        let region = got[i]
            .take()
            .unwrap_or_else(|| panic!("region {i} never handed out (board readiness never fired)"));
        assert_eq!(&region, expect, "region {i} order diverged");
    }
    assert_eq!(&scratch.sent_words, &ref_sent);
    assert_eq!(&scratch.received_words, &ref_received);
    assert_eq!(
        &scratch.violations,
        &reference_violations(3, cap, &ref_sent, &ref_received)
    );
    // Outboxes came back empty (drained, ready for reuse).
    for ob in &outboxes {
        assert!(ob.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random segment shapes — skewed senders, silent machines, empty
    /// rounds — behave identically under both schedulers, including the
    /// recorded cap violations on the tight-cap cases.
    #[test]
    fn schedulers_agree_on_random_segments(
        m in 1usize..8,
        tight_cap in 0usize..2,
        cap_small in 8usize..64,
        rounds in proptest::collection::vec(
            proptest::collection::vec((0usize..200, 0usize..=100, 0usize..16), 1..6),
            1..5
        ),
    ) {
        let cap = if tight_cap == 1 { cap_small } else { usize::MAX / 4 };
        assert_modes_agree(m, cap, &rounds);
    }

    /// Round sizes straddling `PARALLEL_SHUFFLE_MIN_MSGS` (where the
    /// barrier path's shuffle switches between its sequential and
    /// parallel stages) stay bit-identical across schedulers.
    #[test]
    fn cutover_straddling_rounds_agree(
        delta in -3i64..=3,
        hot_pct in 0usize..=100,
        num_rounds in 1usize..4,
    ) {
        let m = 6;
        let total = (PARALLEL_SHUFFLE_MIN_MSGS as i64 + delta) as usize;
        let per = total / m;
        let rem = total - per * (m - 1);
        let plans: Vec<SenderPlan> = (0..m)
            .map(|i| (if i == 0 { rem } else { per }, hot_pct, i * 3))
            .collect();
        let rounds: Vec<Vec<SenderPlan>> = (0..num_rounds).map(|_| plans.clone()).collect();
        assert_modes_agree(m, usize::MAX / 4, &rounds);
    }

    /// Random outbox shapes through the bare sequential pipelined step
    /// match the reference shuffle exactly — the pipelined analogue of
    /// `fabric_matches_reference`.
    #[test]
    fn pipelined_step_matches_reference(
        m in 1usize..10,
        tight_cap in 0usize..2,
        cap_small in 8usize..64,
        plans in proptest::collection::vec(
            (0usize..300, 0usize..=100, 0usize..16),
            1..8
        ),
    ) {
        let cap = if tight_cap == 1 { cap_small } else { usize::MAX / 4 };
        assert_step_matches_reference(m, cap, build_pairs(m, &plans));
    }
}

/// A hand-built skewed schedule (the `CpTracker` unit tests' shape, run
/// through real clusters): machine 2's expensive round-B work depends
/// only on a cheap round-A edge, so the pipeline overlaps it with
/// machine 1's expensive round-A receive — the critical path lands
/// strictly below the barrier's.
#[test]
fn skewed_schedule_pipelines_strictly_below_barrier() {
    let rounds: Vec<Vec<SenderPlan>> = vec![
        // Round A: 0→1 carries 100 words, 3→2 carries 1.
        vec![(100, 100, 1), (0, 0, 0), (0, 0, 0), (1, 100, 2)],
        // Round B: 2→3 carries 100.
        vec![(0, 0, 0), (0, 0, 0), (100, 100, 3), (0, 0, 0)],
    ];
    let trace = assert_modes_agree(4, usize::MAX / 4, &rounds);
    let cp = trace.critical_path;
    assert_eq!(cp.barrier_makespan, 203);
    assert_eq!(cp.pipelined_makespan, 202);
    assert!(cp.barrier_stall > 0);
}

/// Perfectly balanced all-to-all traffic: the pipeline has nothing to
/// overlap, so both makespans coincide and the barrier never stalls.
#[test]
fn balanced_schedule_has_equal_makespans() {
    let rounds: Vec<Vec<SenderPlan>> = vec![vec![(40, 0, 0)]; 3];
    let trace = assert_modes_agree(4, usize::MAX / 4, &rounds);
    let cp = trace.critical_path;
    assert_eq!(cp.pipelined_makespan, cp.barrier_makespan);
    assert_eq!(cp.barrier_stall, 0);
}

/// Rounds in which no machine sends anything still run through both
/// engines in lockstep (every readiness token fires with zero expected
/// messages) and cost exactly the unit base.
#[test]
fn empty_rounds_agree() {
    let rounds: Vec<Vec<SenderPlan>> = vec![vec![(0, 0, 0)]; 3];
    let trace = assert_modes_agree(5, usize::MAX / 4, &rounds);
    assert_eq!(trace.rounds.len(), 3);
    let cp = trace.critical_path;
    assert_eq!(cp.barrier_makespan, 3);
    assert_eq!(cp.pipelined_makespan, 3);
    assert_eq!(cp.barrier_stall, 0);
}

// -- Allocation discipline -------------------------------------------------

/// The sequential pipelined step performs exactly zero heap allocations
/// per steady-state round — the counting-allocator pin of the
/// zero-steady-state-allocation contract, extended to the pipelined path
/// (the parallel engine is pinned by buffer identity below, since the
/// host pool's scheduling is outside the fabric).
#[test]
fn pipelined_steady_state_rounds_allocate_nothing() {
    let m = 8;
    let config = MpcConfig::new(m, usize::MAX / 4).pipelined();
    let plans: Vec<SenderPlan> = (0..m).map(|i| (180 + 11 * i, 40, (i + 3) % m)).collect();
    let pairs = build_pairs(m, &plans);
    let expected: usize = pairs.iter().map(Vec::len).sum();

    let mut outboxes = stage_outboxes(m, pairs.clone());
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();
    let mut board = ReadinessBoard::new(m);

    let refill = |outboxes: &mut Vec<Outbox<u64>>| {
        for (ob, list) in outboxes.iter_mut().zip(&pairs) {
            for &(to, msg) in list {
                ob.push(to, msg);
            }
        }
    };

    // Warm-up: grows every buffer to the peak shape.
    for round in 0..2 {
        pipelined_route_step(
            &config,
            round,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            &mut board,
            |_, inbox| {
                for msg in inbox {
                    std::hint::black_box(msg);
                }
            },
        );
        refill(&mut outboxes);
    }

    // Steady state: >= 3 consecutive rounds, zero allocations, every
    // message still delivered exactly once.
    for round in 2..6 {
        let mut routed = 0usize;
        let before = allocations();
        pipelined_route_step(
            &config,
            round,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            &mut board,
            |_, inbox| {
                for msg in inbox {
                    std::hint::black_box(msg);
                    routed += 1;
                }
            },
        );
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "round {round} allocated on the steady-state pipelined path"
        );
        assert_eq!(
            routed, expected,
            "round {round} lost or duplicated messages"
        );
        refill(&mut outboxes);
    }
}

/// Through the full pipelined `Cluster`, the shared inbox buffer and the
/// delivered regions sit at identical addresses across >= 3 steady-state
/// segments — buffer identity, the allocation discipline observable from
/// safe code, for the parallel pipelined engine.
#[test]
fn pipelined_cluster_reuses_buffers_across_segments() {
    let m = 5;
    let config = MpcConfig::new(m, 1 << 20).pipelined();
    let mut cluster: Cluster<Digest, u64> = Cluster::new(config, |_| Digest(0));
    let run_segment = |c: &mut Cluster<Digest, u64>| {
        let mut seg: Vec<SegmentRound<Digest, u64>> = Vec::new();
        for _ in 0..3 {
            seg.push(SegmentRound::new(
                "steady",
                |ctx: &mut MachineCtx<u64>, st: &mut Digest, inbox: Inbox<'_, u64>| {
                    for msg in inbox {
                        st.0 = st.0.wrapping_add(msg);
                    }
                    // The same message pattern every round: a burst to the
                    // next machine, one to the coordinator, one self-send.
                    let next = (ctx.id + 1) % ctx.num_machines();
                    ctx.reserve_sends(34);
                    for k in 0..32u64 {
                        ctx.send(next, k);
                    }
                    ctx.send(0, ctx.id as u64);
                    ctx.send(ctx.id, 99);
                },
            ));
        }
        c.run_segment(seg);
    };
    // Warm-up.
    run_segment(&mut cluster);
    run_segment(&mut cluster);
    let buf = cluster.inbox_buffer_ptr();
    let pending0 = cluster.pending(0).as_ptr();
    for _ in 0..3 {
        run_segment(&mut cluster);
        assert_eq!(
            cluster.inbox_buffer_ptr(),
            buf,
            "inbox buffer reused across pipelined segments"
        );
        assert_eq!(
            cluster.pending(0).as_ptr(),
            pending0,
            "identical rounds produce identical region layout"
        );
    }
    // Machine 0's pending inbox: the burst from machine m-1, one
    // coordinator message per machine, and its own self-send.
    assert_eq!(cluster.pending(0).len(), 32 + m + 1);
}
