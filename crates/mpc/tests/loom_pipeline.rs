//! Model-checked interleavings of the pipelined scheduler's readiness
//! protocol, built on the vendored `loom` (see `vendor/loom`). Compiled
//! and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p mpc-sim --test loom_pipeline
//! ```
//!
//! The scenarios drive the real [`mpc_sim::ReadinessBoard`] — the same
//! code the pipelined engine runs, via the `crate::sync` facade — with
//! loom threads playing the placing senders and `loom::cell::UnsafeCell`s
//! standing in for the two memory regions the protocol guards: the inbox
//! region a compute reads (placed payloads) and the sender's outbox arena
//! a compute reuses (drained by placement, refilled by the compute).
//! Loom's cell race detection then *proves* the happens-before claims of
//! `crates/mpc/src/pipeline.rs`: the completing decrement orders every
//! placement before the compute's reads, and the sender token orders the
//! outbox drain before the compute's writes. Plain `Vec` memory inside
//! the real cluster is invisible to loom, which is exactly why the suite
//! models those buffers as cells here instead of spawning a full
//! `Cluster`.
//!
//! Coverage targets, per ISSUE:
//!
//! * cross handoff: two senders exchanging regions, every completion
//!   path (delivery-last vs token-last) exactly once;
//! * empty regions completing on the token alone;
//! * self-delivery never outrunning the sender's own outbox drain.
//!
//! The `mutation_*` tests prove the suite has teeth: with
//! `LOOM_MUTATE=weaken-ready-ordering` (readiness decrements dropped to
//! `Relaxed`) or `LOOM_MUTATE=early-ready` (the sender token never armed
//! — region readiness off by one) the corresponding scenario must FAIL
//! model checking as a data race, and the test asserts that failure. CI
//! runs each mutation as a separate filtered invocation; the unmutated
//! run executes the whole file.
//!
//! Schedule-count floors: `wide_three_sender_all_to_all_explores_widely`
//! asserts >= 10,000 distinct schedules (measured ~24,900 at preemption
//! bound 5), so the suite's coverage floor is enforced by the tests
//! themselves, not by CI bookkeeping.

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use mpc_sim::ReadinessBoard;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// The shared state of one modeled round: the armed board plus the
/// memory it guards. One payload slot per region (each scenario sends at
/// most one message per region), one outbox arena per sender.
struct Fabric {
    m: usize,
    board: ReadinessBoard,
    /// Inbox region contents, one slot per (region, sender) pair at
    /// `region * m + sender`: written by the placing sender, read by the
    /// region's compute.
    payloads: Vec<UnsafeCell<u64>>,
    /// Outbox arenas: written by the owner's placement drain, then
    /// written again by the owner's compute (refill).
    outboxes: Vec<UnsafeCell<u64>>,
    /// How many times each region's compute ran (must be exactly once).
    computed: Vec<AtomicUsize>,
}

impl Fabric {
    /// A fabric of `m` regions armed for `region_lens` expected messages.
    fn new(m: usize, region_lens: &[usize]) -> Arc<Self> {
        let mut board = ReadinessBoard::new(m);
        board.reset(region_lens);
        Arc::new(Fabric {
            m,
            board,
            payloads: (0..m * m).map(|_| UnsafeCell::new(0)).collect(),
            outboxes: (0..m).map(|_| UnsafeCell::new(0)).collect(),
            computed: (0..m).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// Machine `i`'s next-round compute: reads its inbox region, reuses
    /// (writes) its outbox arena. Loom flags a data race if any placement
    /// write or the drain write is not ordered before this.
    fn run_compute(&self, i: usize) {
        for src in 0..self.m {
            // SAFETY: (modeled) the board declared region `i` complete,
            // so this read must be ordered after every placement write —
            // that ordering is precisely what loom checks here.
            self.payloads[i * self.m + src].with(|p| unsafe { *p });
        }
        // SAFETY: (modeled) the sender token orders the owner's drain
        // before this refill write — also checked by loom.
        self.outboxes[i].with_mut(|p| unsafe { *p += 1 });
        self.computed[i].fetch_add(1, Ordering::SeqCst);
    }

    /// Sender `j`'s placement task: place one message into each region
    /// in `dests`, drain the own outbox, release the token; run any
    /// compute the board hands over.
    fn sender(&self, j: usize, dests: &[usize]) {
        for &d in dests {
            // SAFETY: (modeled) placement writes the region before the
            // delivery decrement publishes it.
            self.payloads[d * self.m + j].with_mut(|p| unsafe { *p = 10 + j as u64 });
            if self.board.deliver(d, 1) {
                self.run_compute(d);
            }
        }
        // SAFETY: (modeled) the drain write happens while the token is
        // still armed, so no compute may alias the arena yet.
        self.outboxes[j].with_mut(|p| unsafe { *p += 1 });
        if self.board.finish_sender(j) {
            self.run_compute(j);
        }
    }

    fn assert_each_region_computed_once(&self) {
        for (i, c) in self.computed.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "region {i} compute count");
        }
    }
}

/// Runs a model expected to fail, swallowing the (intentional) panic
/// noise, and returns the failure message.
fn expect_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    panic::set_hook(prev);
    let payload = result.expect_err("model unexpectedly passed every schedule");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// Two senders exchanging regions — the protocol's fundamental handoff.
/// Each region completes either on the peer's delivery or on the owner's
/// token, and the compute that follows reads memory both threads wrote.
/// This is the scenario both seeded mutations must break.
fn cross_handoff() {
    let fabric = Fabric::new(2, &[1, 1]);
    let peer = Arc::clone(&fabric);
    let t = loom::thread::spawn(move || peer.sender(1, &[0]));
    fabric.sender(0, &[1]);
    t.join().expect("sender thread panicked");
    fabric.assert_each_region_computed_once();
}

#[test]
fn cross_handoff_is_race_free() {
    let report = loom::Builder::new().check(cross_handoff);
    eprintln!("cross_handoff_is_race_free: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// An empty region must complete exactly once, on its owner's token
/// alone, in every interleaving with a busy peer. (Machine 1 receives
/// nothing; machine 0 receives one message from the peer.)
#[test]
fn empty_region_completes_on_token_alone() {
    let report = loom::Builder::new().check(|| {
        let fabric = Fabric::new(2, &[1, 0]);
        let peer = Arc::clone(&fabric);
        let t = loom::thread::spawn(move || peer.sender(1, &[0]));
        fabric.sender(0, &[]);
        t.join().expect("sender thread panicked");
        fabric.assert_each_region_computed_once();
    });
    eprintln!("empty_region_completes_on_token_alone: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// A sender delivering to itself: the self-delivery lands while the
/// sender is still mid-placement, and the token must keep the region
/// from completing until the sender's own drain is done — otherwise the
/// compute's arena refill would race the drain.
#[test]
fn self_delivery_waits_for_own_drain() {
    let report = loom::Builder::new().check(|| {
        let fabric = Fabric::new(2, &[1, 1]);
        let peer = Arc::clone(&fabric);
        // Sender 1 sends to itself; sender 0 sends to region 0 (itself
        // too), so both completions are self-handoffs racing the drains.
        let t = loom::thread::spawn(move || peer.sender(1, &[1]));
        fabric.sender(0, &[0]);
        t.join().expect("sender thread panicked");
        fabric.assert_each_region_computed_once();
    });
    eprintln!("self_delivery_waits_for_own_drain: {report:?}");
    assert!(report.schedules >= 2, "explored {}", report.schedules);
}

/// The wide-exploration scenario: three senders, all-to-all (every
/// sender places into both peer regions), so every region's counter
/// takes decrements from all three threads and every completion is a
/// cross-thread handoff. The board protocol has far fewer branch points
/// than the pool (no deques, no parking), so this test deepens the
/// preemption bound to 5 to make the schedule tree dense; it enforces
/// the suite's >= 10,000-distinct-schedules coverage floor.
#[test]
fn wide_three_sender_all_to_all_explores_widely() {
    let mut builder = loom::Builder::new();
    builder.preemption_bound = 5;
    let report = builder.check(|| {
        let fabric = Fabric::new(3, &[2, 2, 2]);
        let f1 = Arc::clone(&fabric);
        let f2 = Arc::clone(&fabric);
        let t1 = loom::thread::spawn(move || f1.sender(1, &[2, 0]));
        let t2 = loom::thread::spawn(move || f2.sender(2, &[0, 1]));
        fabric.sender(0, &[1, 2]);
        t1.join().expect("sender 1 panicked");
        t2.join().expect("sender 2 panicked");
        fabric.assert_each_region_computed_once();
    });
    eprintln!("wide_three_sender_all_to_all_explores_widely: {report:?}");
    assert!(
        !report.truncated,
        "exploration truncated at the iteration cap"
    );
    assert!(
        report.schedules >= 10_000,
        "coverage floor regressed: explored only {} schedules",
        report.schedules
    );
}

/// Seeded mutation "weaken-ready-ordering": the readiness decrements drop
/// from `AcqRel` to `Relaxed`, so in the schedule where a region is
/// completed by a thread other than the one that placed its payload
/// (e.g. the owner's token lands last), the compute's payload read is no
/// longer ordered after the peer's placement write — the model must
/// report a data race. Without the mutation the same scenario must pass
/// every schedule.
#[test]
fn mutation_weaken_ready_ordering_is_detected() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("weaken-ready-ordering") => {
            let msg = expect_failure(cross_handoff);
            assert!(msg.contains("data race"), "expected data race, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(cross_handoff);
            eprintln!("mutation_weaken_ready_ordering_is_detected (unmutated): {report:?}");
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}

/// Seeded mutation "early-ready": the sender token is never armed —
/// region readiness is off by one, turning a region ready the instant
/// its last message lands. In the schedule where the peer's delivery
/// completes region `i` before sender `i` has drained its own outbox,
/// the compute's arena refill races the drain — the model must report a
/// data race. Without the mutation the same scenario must pass every
/// schedule.
#[test]
fn mutation_early_ready_is_detected() {
    match std::env::var("LOOM_MUTATE").as_deref() {
        Ok("early-ready") => {
            let msg = expect_failure(cross_handoff);
            assert!(msg.contains("data race"), "expected data race, got: {msg}");
        }
        Ok(_) => {} // some other mutation is active; not this test's run
        Err(_) => {
            let report = loom::Builder::new().check(cross_handoff);
            eprintln!("mutation_early_ready_is_detected (unmutated): {report:?}");
            assert!(report.schedules >= 2, "explored {}", report.schedules);
        }
    }
}
