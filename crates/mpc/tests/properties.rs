//! Property-based tests of the MPC simulator: conservation and
//! correctness of the communication fabric and the dataflow primitives.

use mpc_sim::primitives::{aggregate_sum, sample_sort};
use mpc_sim::{Cluster, MpcConfig, Words};
use proptest::prelude::*;

/// Trivial state that counts words it holds.
struct Holder(Vec<u64>);

impl Words for Holder {
    fn words(&self) -> usize {
        self.0.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The router conserves messages: everything sent arrives exactly
    /// once, at the right machine, and the traffic accounting matches.
    #[test]
    fn router_conserves_messages(
        sends in proptest::collection::vec((0usize..8, 0usize..8, 0u64..1000), 0..200)
    ) {
        let m = 8;
        let config = MpcConfig::new(m, 1_000_000);
        let mut cluster: Cluster<Holder, u64> = Cluster::new(config, |_| Holder(Vec::new()));
        let plan = sends.clone();
        cluster.round("scatter", move |ctx, _st, _| {
            for &(from, to, payload) in &plan {
                if from == ctx.id {
                    ctx.send(to, payload);
                }
            }
        });
        cluster.round("gather", |_ctx, st, inbox| {
            st.0 = inbox.collect();
        });
        let total_sent = sends.len();
        let trace = cluster.trace();
        prop_assert_eq!(trace.rounds[0].total_traffic, total_sent);
        // Every payload arrived at its destination.
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); m];
        for (from, to, payload) in sends {
            let _ = from;
            expected[to].push(payload);
        }
        for (i, want) in expected.iter().enumerate() {
            let mut got = cluster.state(i).0.clone();
            let mut want = want.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Sample sort equals sequential sort for arbitrary inputs and
    /// machine counts.
    #[test]
    fn sample_sort_correct(
        values in proptest::collection::vec(0u64..10_000, 0..2000),
        m in 2usize..10,
        seed in 0u64..100,
    ) {
        let mut shares = vec![Vec::new(); m];
        for (i, v) in values.iter().enumerate() {
            shares[i % m].push(*v);
        }
        let config = MpcConfig::new(m, 1_000_000);
        let (buckets, trace) = sample_sort(config, shares, 16, seed);
        prop_assert_eq!(trace.num_rounds(), 4);
        let got: Vec<u64> = buckets.into_iter().flatten().collect();
        let mut want = values;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Keyed aggregation equals a sequential reduce.
    #[test]
    fn aggregate_correct(
        pairs in proptest::collection::vec((0u64..64, -100.0f64..100.0), 0..1500),
        m in 2usize..8,
    ) {
        let mut shares = vec![Vec::new(); m];
        for (i, p) in pairs.iter().enumerate() {
            shares[i % m].push(*p);
        }
        let config = MpcConfig::new(m, 1_000_000);
        let (outputs, trace) = aggregate_sum(config, shares);
        prop_assert_eq!(trace.num_rounds(), 2);
        let mut expected: std::collections::BTreeMap<u64, f64> = Default::default();
        for (k, v) in pairs {
            *expected.entry(k).or_default() += v;
        }
        let mut got: Vec<(u64, f64)> = outputs.into_iter().flatten().collect();
        got.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(got.len(), expected.len());
        for ((gk, gv), (ek, ev)) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(gk, ek);
            prop_assert!((gv - ev).abs() < 1e-6 * (1.0 + ev.abs()));
        }
    }
}
