//! Model parameters: machine count, per-machine memory, memory regimes,
//! and the constraint-enforcement policy.

use serde::{Deserialize, Serialize};

/// The three memory regimes distinguished in the paper's Section 1.1,
/// parameterized by the number of graph vertices `n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryRegime {
    /// (A) Strongly super-linear: `S = n^(1+beta)`, `beta ∈ (0,1)`.
    StronglySuperlinear {
        /// Exponent surplus `beta`.
        beta: f64,
    },
    /// (B) Near-linear: `S = c · n` (the paper's `Θ̃(n)`; the polylog
    /// factor is folded into the constant `c`). This is the regime of the
    /// paper's main result.
    NearLinear {
        /// Multiplicative constant `c ≥ 1`.
        factor: f64,
    },
    /// (C) Strongly sub-linear: `S = n^(1-beta)`, `beta ∈ (0,1)`.
    StronglySublinear {
        /// Exponent deficit `beta`.
        beta: f64,
    },
}

impl MemoryRegime {
    /// Memory words per machine for an `n`-vertex graph.
    pub fn memory_words(&self, n: usize) -> usize {
        let nf = n as f64;
        let s = match *self {
            MemoryRegime::StronglySuperlinear { beta } => {
                assert!((0.0..1.0).contains(&beta));
                nf.powf(1.0 + beta)
            }
            MemoryRegime::NearLinear { factor } => {
                assert!(factor >= 1.0);
                factor * nf
            }
            MemoryRegime::StronglySublinear { beta } => {
                assert!((0.0..1.0).contains(&beta));
                nf.powf(1.0 - beta)
            }
        };
        s.ceil().max(1.0) as usize
    }
}

/// What to do when a model constraint is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Enforcement {
    /// Panic immediately — for tests asserting an algorithm obeys the model.
    Strict,
    /// Record a [`Violation`](crate::Violation) in the trace and continue —
    /// for experiments that *measure* how close to the cap an execution runs.
    Audit,
}

/// Which engine executes a segment of rounds on the host
/// ([`Cluster::run_segment`](crate::Cluster::run_segment)). Model costs —
/// covers, duals, traces, violations — are bit-identical in both modes;
/// the scheduler only changes how the host overlaps work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RoundScheduler {
    /// The reference engine: every round is a global barrier — all
    /// machines compute, then the router delivers, then the next round
    /// starts.
    #[default]
    Barrier,
    /// The dependency-pipelined engine ([`crate::pipeline`]): a machine
    /// whose next-round inbox region is fully delivered starts computing
    /// while slower machines are still placing their sends.
    Pipelined,
}

/// How literally the per-machine memory cap `S` is taken.
///
/// Historically the simulator *accounted* resident memory (and, under
/// [`Enforcement::Strict`], panicked on overruns) but executors were free
/// to hold whole adjacency shards in RAM and treat the cap as a
/// statistic. `Enforced` closes that loophole for the out-of-core path:
/// a machine that would exceed `S` **must** move words to its per-machine
/// spill file ([`crate::SpillFile`], reported as
/// [`RoundStats::spill_words`](crate::RoundStats)) — exceeding `S`
/// without spilling is a hard error regardless of the
/// [`Enforcement`] policy, never a recorded-and-ignored violation.
///
/// # Examples
///
/// ```
/// use mpc_sim::{MemoryBudget, MpcConfig};
///
/// // Legacy behavior: cap violations follow the enforcement policy.
/// let cfg = MpcConfig::new(4, 1 << 20);
/// assert_eq!(cfg.budget, MemoryBudget::AccountOnly);
///
/// // Out-of-core behavior: resident > S always aborts the run.
/// let cfg = cfg.with_budget(MemoryBudget::Enforced);
/// assert_eq!(cfg.budget, MemoryBudget::Enforced);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MemoryBudget {
    /// Resident memory is accounted; overruns follow the
    /// [`Enforcement`] policy (panic under `Strict`, recorded under
    /// `Audit`). The historical default.
    #[default]
    AccountOnly,
    /// Resident memory above `S` is a hard error even under
    /// [`Enforcement::Audit`]: machines are expected to spill instead of
    /// holding more than `S` words.
    Enforced,
}

/// Static configuration of an MPC cluster.
///
/// # Examples
///
/// ```
/// use mpc_sim::{MemoryRegime, MpcConfig};
///
/// // 1e6 input words in the near-linear regime S = 4n at n = 10_000:
/// // the model's natural machine count is M = ceil(input / S).
/// let cfg = MpcConfig::for_input(10_000, 1_000_000, MemoryRegime::NearLinear { factor: 4.0 });
/// assert_eq!(cfg.memory_words, 40_000);
/// assert_eq!(cfg.num_machines, 25);
/// assert!(cfg.total_memory_words() >= 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Number of machines `M`.
    pub num_machines: usize,
    /// Memory words per machine `S`: caps resident state and per-round
    /// sent/received traffic.
    pub memory_words: usize,
    /// Constraint policy.
    pub enforcement: Enforcement,
    /// Host round-execution engine (no effect on model costs).
    pub scheduler: RoundScheduler,
    /// Whether the resident cap is merely accounted or hard-enforced
    /// (spill-or-die).
    pub budget: MemoryBudget,
    /// Deterministic fault-injection plan (inactive by default). Active
    /// plans require the cluster's `try_` entry points to surface
    /// unrecoverable faults as typed errors.
    pub faults: crate::faults::FaultConfig,
}

impl MpcConfig {
    /// Cluster with explicit machine count and memory.
    pub fn new(num_machines: usize, memory_words: usize) -> Self {
        assert!(num_machines >= 1, "need at least one machine");
        assert!(memory_words >= 1, "memory budget must be positive");
        Self {
            num_machines,
            memory_words,
            enforcement: Enforcement::Strict,
            scheduler: RoundScheduler::Barrier,
            budget: MemoryBudget::AccountOnly,
            faults: crate::faults::FaultConfig::none(),
        }
    }

    /// Cluster sized for an input of `input_words` total words under the
    /// given regime at vertex count `n`: `S` from the regime,
    /// `M = ceil(input/S)` machines (the model's natural lower bound,
    /// `M ≥ N/S`), at least one.
    pub fn for_input(n: usize, input_words: usize, regime: MemoryRegime) -> Self {
        let s = regime.memory_words(n);
        let m = input_words.div_ceil(s).max(1);
        Self::new(m, s)
    }

    /// Switches to audit-mode enforcement.
    pub fn audited(mut self) -> Self {
        self.enforcement = Enforcement::Audit;
        self
    }

    /// Switches to the dependency-pipelined round scheduler.
    pub fn pipelined(mut self) -> Self {
        self.scheduler = RoundScheduler::Pipelined;
        self
    }

    /// Selects the round scheduler explicitly.
    pub fn with_scheduler(mut self, scheduler: RoundScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the memory-budget policy (see [`MemoryBudget`]).
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a deterministic fault-injection plan (see
    /// [`crate::faults::FaultConfig`]).
    pub fn with_faults(mut self, faults: crate::faults::FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Total memory across the cluster.
    pub fn total_memory_words(&self) -> usize {
        self.num_machines * self.memory_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_order_at_fixed_n() {
        let n = 10_000;
        let sub = MemoryRegime::StronglySublinear { beta: 0.5 }.memory_words(n);
        let lin = MemoryRegime::NearLinear { factor: 4.0 }.memory_words(n);
        let sup = MemoryRegime::StronglySuperlinear { beta: 0.5 }.memory_words(n);
        assert!(sub < lin && lin < sup);
        assert_eq!(sub, 100);
        assert_eq!(lin, 40_000);
        assert_eq!(sup, 1_000_000);
    }

    #[test]
    fn for_input_covers_the_input() {
        let cfg = MpcConfig::for_input(1000, 123_456, MemoryRegime::NearLinear { factor: 2.0 });
        assert!(cfg.total_memory_words() >= 123_456);
        assert_eq!(cfg.memory_words, 2000);
        assert_eq!(cfg.num_machines, 62);
    }

    #[test]
    fn for_input_minimum_one_machine() {
        let cfg = MpcConfig::for_input(100, 5, MemoryRegime::NearLinear { factor: 1.0 });
        assert_eq!(cfg.num_machines, 1);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = MpcConfig::new(0, 10);
    }

    #[test]
    fn audited_flips_enforcement() {
        let cfg = MpcConfig::new(2, 10);
        assert_eq!(cfg.enforcement, Enforcement::Strict);
        assert_eq!(cfg.audited().enforcement, Enforcement::Audit);
    }

    #[test]
    fn scheduler_defaults_to_barrier_and_flips() {
        let cfg = MpcConfig::new(2, 10);
        assert_eq!(cfg.scheduler, RoundScheduler::Barrier);
        assert_eq!(cfg.pipelined().scheduler, RoundScheduler::Pipelined);
        assert_eq!(
            cfg.with_scheduler(RoundScheduler::Pipelined).scheduler,
            RoundScheduler::Pipelined
        );
    }

    #[test]
    fn scheduler_default_is_barrier() {
        assert_eq!(RoundScheduler::default(), RoundScheduler::Barrier);
    }

    #[test]
    fn budget_defaults_to_account_only_and_flips() {
        let cfg = MpcConfig::new(2, 10);
        assert_eq!(cfg.budget, MemoryBudget::AccountOnly);
        assert_eq!(
            cfg.with_budget(MemoryBudget::Enforced).budget,
            MemoryBudget::Enforced
        );
    }
}
