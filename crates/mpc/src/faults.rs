//! Deterministic fault injection: the cluster's failure model as a pure
//! function of `(seed, fault kind, machine, round)`.
//!
//! Faults here are *inputs*, not accidents. A [`FaultPlan`] decides every
//! injection by hashing its coordinates with a splitmix64-style mixer, so
//! the same [`FaultConfig`] produces the same crashes, dropped
//! deliveries, spill I/O errors, and straggler delays on every host, at
//! every pool width, under both schedulers. That determinism is what lets
//! the chaos suite assert the flagship invariant: a recovered run is
//! bit-identical to a fault-free run.
//!
//! The plan covers four failure classes:
//!
//! * **Crash-restarts** (`crash_rate`) — a machine loses its in-memory
//!   state after a round; recovery restores the latest checkpoint and
//!   replays the missed rounds from the retained inbox deliveries (see
//!   [`checkpoint`](crate::checkpoint)).
//! * **Dropped / duplicated deliveries** (`drop_rate`, `dup_rate`) — the
//!   fabric's sequence-numbered arenas detect the damage and re-deliver
//!   the correct region before the next compute; the model-visible
//!   effect is the fault event and the repair accounting.
//! * **Transient spill I/O errors** (`spill_io_rate`) — injected per
//!   spill operation and retried with a bounded, attempt-count backoff
//!   (no wall-clock enters the model domain); exhausting the retry
//!   budget latches a typed error surfaced as [`ClusterError::SpillIo`].
//! * **Straggler delays** (`straggler_rate`) — bounded host-side spin
//!   delays; they perturb host timing (which the determinism contract
//!   says must not matter) and never the model plane.
//!
//! Unrecoverable situations — a replay budget exhausted, a persistent
//! spill failure, a checkpoint that cannot be written — surface as a
//! typed [`ClusterError`] through the cluster's `try_` entry points,
//! never as a panic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Rates and budgets of the deterministic fault model, carried by
/// [`MpcConfig`](crate::MpcConfig). All rates are probabilities in
/// `[0, 1]` evaluated independently per `(machine, round)` coordinate
/// (per spill operation and attempt for `spill_io_rate`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the fault plan; independent of the algorithm seed.
    pub seed: u64,
    /// Probability a machine crash-restarts after a round.
    pub crash_rate: f64,
    /// Probability a machine's inbound delivery is dropped in transit
    /// (detected and re-delivered by the fabric).
    pub drop_rate: f64,
    /// Probability a machine's inbound delivery is duplicated in transit
    /// (detected and deduplicated by the fabric).
    pub dup_rate: f64,
    /// Probability one spill-file I/O attempt fails transiently.
    pub spill_io_rate: f64,
    /// Probability a machine straggles (a bounded host-side delay).
    pub straggler_rate: f64,
    /// Checkpoint cadence in rounds within a recoverable segment: a
    /// checkpoint is taken at segment entry and every `checkpoint_every`
    /// rounds after it (minimum 1 — every round).
    pub checkpoint_every: usize,
    /// Failed spill I/O attempts retried before the error latches.
    pub max_retries: u32,
    /// Crash replays tolerated per machine per segment before the run
    /// aborts with [`ClusterError::ReplayBudgetExhausted`].
    pub max_replays: u32,
}

impl FaultConfig {
    /// The fault-free plan: all rates zero, default recovery budgets.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            crash_rate: 0.0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            spill_io_rate: 0.0,
            straggler_rate: 0.0,
            checkpoint_every: 4,
            max_retries: 4,
            max_replays: 64,
        }
    }

    /// Whether any fault class can fire under this configuration.
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0
            || self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.spill_io_rate > 0.0
            || self.straggler_rate > 0.0
    }

    /// Replaces the plan seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The injectable failure classes. `SpillIo` is keyed by
/// `(machine, operation, attempt)` rather than `(machine, round)`: spill
/// traffic is per-operation, and independent attempt coordinates are what
/// make the bounded retry deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Machine crash-restart after a round.
    Crash,
    /// Dropped inbound delivery.
    Drop,
    /// Duplicated inbound delivery.
    Duplicate,
    /// Transient spill-file I/O failure.
    SpillIo,
    /// Straggler delay (host-side only).
    Straggle,
}

impl FaultKind {
    /// Hash-domain separator so the classes draw independent decisions
    /// from one seed.
    fn domain(self) -> u64 {
        match self {
            FaultKind::Crash => 0x6372_6173_6800,
            FaultKind::Drop => 0x6472_6f70_0000,
            FaultKind::Duplicate => 0x6475_7000_0000,
            FaultKind::SpillIo => 0x7370_696c_6c00,
            FaultKind::Straggle => 0x7374_7261_6700,
        }
    }
}

/// splitmix64 finalizer: the repo's standard stateless mixer (same family
/// as `owner_of_key`), chosen for full avalanche at two multiplies.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A compiled, copyable view of a [`FaultConfig`]: every query is a pure
/// hash of its coordinates, so plans need no state and can be consulted
/// from any thread in any order.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Compiles `cfg` into a queryable plan.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The configuration this plan was compiled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Crash => self.cfg.crash_rate,
            FaultKind::Drop => self.cfg.drop_rate,
            FaultKind::Duplicate => self.cfg.dup_rate,
            FaultKind::SpillIo => self.cfg.spill_io_rate,
            FaultKind::Straggle => self.cfg.straggler_rate,
        }
    }

    /// The deterministic coin: true with probability `rate` at the hashed
    /// coordinate `(seed, domain, a, b)`.
    fn coin(&self, kind: FaultKind, a: u64, b: u64) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(mix(mix(self.cfg.seed ^ kind.domain()) ^ a) ^ b);
        // 53 uniform bits against the rate threshold: exact for every
        // representable rate, identical on every host.
        ((h >> 11) as f64) < rate * (1u64 << 53) as f64
    }

    /// Whether `kind` fires for `machine` in absolute round `round`.
    /// Not meaningful for [`FaultKind::SpillIo`] (use
    /// [`Self::spill_attempt_fires`]).
    pub fn fires(&self, kind: FaultKind, machine: usize, round: usize) -> bool {
        self.coin(kind, machine as u64, round as u64)
    }

    /// Whether spill operation `op` (a per-machine monotone counter)
    /// fails on retry attempt `attempt` for `machine`.
    pub fn spill_attempt_fires(&self, machine: usize, op: u64, attempt: u32) -> bool {
        self.coin(
            FaultKind::SpillIo,
            (machine as u64) << 32 | u64::from(attempt),
            op,
        )
    }

    /// Whether any round-granular fault (crash, drop, duplicate,
    /// straggle) fires for `machine` in `round`. Spill I/O faults are
    /// op-granular and excluded: they are injected inside the spill
    /// layer itself.
    pub fn round_faulted(&self, machine: usize, round: usize) -> bool {
        self.fires(FaultKind::Crash, machine, round)
            || self.fires(FaultKind::Drop, machine, round)
            || self.fires(FaultKind::Duplicate, machine, round)
            || self.fires(FaultKind::Straggle, machine, round)
    }
}

/// Typed, recoverable-layer errors: every fault the recovery machinery
/// cannot absorb surfaces as one of these through the cluster's `try_`
/// entry points — never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A spill-file operation failed persistently (injected fault past
    /// the retry budget, or a real I/O error from the host filesystem).
    SpillIo {
        /// Machine whose spill file failed.
        machine: usize,
        /// Failed attempts before the error latched.
        attempts: u32,
        /// Underlying error description.
        message: String,
    },
    /// A recovery checkpoint could not be written.
    Checkpoint {
        /// Machine whose checkpoint failed.
        machine: usize,
        /// Underlying error description.
        message: String,
    },
    /// A machine exceeded its per-segment crash-replay budget.
    ReplayBudgetExhausted {
        /// Machine that kept crashing.
        machine: usize,
        /// Absolute round index of the fatal crash.
        round: usize,
        /// The exhausted `max_replays` budget.
        budget: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::SpillIo {
                machine,
                attempts,
                message,
            } => write!(
                f,
                "machine {machine}: spill I/O failed after {attempts} attempt(s): {message}"
            ),
            ClusterError::Checkpoint { machine, message } => {
                write!(f, "machine {machine}: checkpoint write failed: {message}")
            }
            ClusterError::ReplayBudgetExhausted {
                machine,
                round,
                budget,
            } => write!(
                f,
                "machine {machine}: crash in round {round} exceeded the replay budget \
                 of {budget} replays per segment"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Whether the named chaos mutation is active (`CHAOS_MUTATE=<name>`).
///
/// The non-loom analogue of the loom builds' `LOOM_MUTATE`: a seeded bug
/// compiled into the recovery paths that the chaos mutation gates must
/// detect. `skip-retry` gives up on the first failed spill attempt;
/// `stale-checkpoint` restores the previous (stale) snapshot on crash.
pub fn chaos_mutation(name: &str) -> bool {
    std::env::var("CHAOS_MUTATE").map(|v| v == name) == Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_plan() -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: 7,
            crash_rate: 0.25,
            drop_rate: 0.25,
            dup_rate: 0.25,
            spill_io_rate: 0.25,
            straggler_rate: 0.25,
            ..FaultConfig::none()
        })
    }

    #[test]
    fn plan_is_a_pure_function_of_coordinates() {
        let a = active_plan();
        let b = active_plan();
        for m in 0..8 {
            for r in 0..64 {
                for kind in [
                    FaultKind::Crash,
                    FaultKind::Drop,
                    FaultKind::Duplicate,
                    FaultKind::Straggle,
                ] {
                    assert_eq!(a.fires(kind, m, r), b.fires(kind, m, r));
                }
                assert_eq!(
                    a.spill_attempt_fires(m, r as u64, 3),
                    b.spill_attempt_fires(m, r as u64, 3)
                );
            }
        }
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let never = FaultPlan::new(FaultConfig::none());
        let always = FaultPlan::new(FaultConfig {
            crash_rate: 1.0,
            ..FaultConfig::none()
        });
        for m in 0..4 {
            for r in 0..32 {
                assert!(!never.fires(FaultKind::Crash, m, r));
                assert!(!never.round_faulted(m, r));
                assert!(always.fires(FaultKind::Crash, m, r));
            }
        }
    }

    #[test]
    fn kinds_draw_independent_decisions() {
        // With every rate at 0.25 under one seed, the per-kind decision
        // sets must differ somewhere — equal sets would mean the domains
        // collapsed into one stream.
        let plan = active_plan();
        let grid: Vec<(usize, usize)> = (0..8).flat_map(|m| (0..64).map(move |r| (m, r))).collect();
        let set = |kind: FaultKind| -> Vec<bool> {
            grid.iter().map(|&(m, r)| plan.fires(kind, m, r)).collect()
        };
        let crash = set(FaultKind::Crash);
        assert_ne!(crash, set(FaultKind::Drop));
        assert_ne!(crash, set(FaultKind::Straggle));
        let hits = crash.iter().filter(|&&b| b).count();
        // ~128 expected at rate 0.25 over 512 coordinates; a loose band
        // guards against a broken mixer collapsing to all/none.
        assert!((32..=224).contains(&hits), "got {hits}");
    }

    #[test]
    fn seed_changes_the_plan() {
        let a = active_plan();
        let b = FaultPlan::new(active_plan().config().with_seed(8));
        let differs = (0..8)
            .flat_map(|m| (0..64).map(move |r| (m, r)))
            .any(|(m, r)| a.fires(FaultKind::Crash, m, r) != b.fires(FaultKind::Crash, m, r));
        assert!(differs);
    }

    #[test]
    fn error_display_names_the_machine() {
        let e = ClusterError::SpillIo {
            machine: 3,
            attempts: 5,
            message: "injected".into(),
        };
        assert!(e.to_string().contains("machine 3"));
        assert!(e.to_string().contains("5 attempt"));
        let e = ClusterError::ReplayBudgetExhausted {
            machine: 1,
            round: 9,
            budget: 2,
        };
        assert!(e.to_string().contains("round 9"));
    }

    #[test]
    fn inactive_config_reports_inactive() {
        assert!(!FaultConfig::none().is_active());
        assert!(FaultConfig {
            straggler_rate: 0.1,
            ..FaultConfig::none()
        }
        .is_active());
    }
}
