//! The all-to-all communication fabric of a round.
//!
//! In the MPC model the network graph is complete: any machine may address
//! any other. The only restriction is capacity — per round, no machine may
//! send or receive more words than its memory `S` (the paper's Section
//! 1.1). The router measures both sides, delivers, and reports.

use crate::accounting::{Violation, ViolationKind};
use crate::model::{Enforcement, MpcConfig};
use crate::words::Words;

/// Result of routing one round's outboxes.
pub struct RoutedRound<M> {
    /// Per-machine inboxes for the next round, in sender-then-emission order.
    pub inboxes: Vec<Vec<M>>,
    /// Words sent per machine.
    pub sent_words: Vec<usize>,
    /// Words received per machine.
    pub received_words: Vec<usize>,
    /// Capacity breaches found (strict mode panics instead of returning).
    pub violations: Vec<Violation>,
}

/// Routes `outboxes[machine] = [(dest, message), ...]` to per-destination
/// inboxes, enforcing the send/receive caps.
pub fn route<M: Words>(
    config: &MpcConfig,
    round: usize,
    outboxes: Vec<Vec<(usize, M)>>,
) -> RoutedRound<M> {
    let m = config.num_machines;
    assert_eq!(outboxes.len(), m, "one outbox per machine");
    let cap = config.memory_words;
    let mut sent_words = vec![0usize; m];
    let mut received_words = vec![0usize; m];
    let mut inboxes: Vec<Vec<M>> = (0..m).map(|_| Vec::new()).collect();
    let mut violations = Vec::new();

    for (from, outbox) in outboxes.into_iter().enumerate() {
        for (to, msg) in outbox {
            assert!(to < m, "machine {from} addressed nonexistent machine {to}");
            let w = msg.words();
            sent_words[from] += w;
            received_words[to] += w;
            inboxes[to].push(msg);
        }
    }

    for machine in 0..m {
        if sent_words[machine] > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::SentExceedsMemory,
                words: sent_words[machine],
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} sent {} words > cap {cap} in round {round}",
                    sent_words[machine]
                ),
                Enforcement::Audit => violations.push(v),
            }
        }
        if received_words[machine] > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::ReceivedExceedsMemory,
                words: received_words[machine],
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} received {} words > cap {cap} in round {round}",
                    received_words[machine]
                ),
                Enforcement::Audit => violations.push(v),
            }
        }
    }

    RoutedRound {
        inboxes,
        sent_words,
        received_words,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, s: usize) -> MpcConfig {
        MpcConfig::new(m, s)
    }

    #[test]
    fn delivers_to_destinations() {
        let routed = route(
            &cfg(3, 100),
            0,
            vec![vec![(1, 10u64), (2, 20u64)], vec![(0, 30u64)], vec![]],
        );
        assert_eq!(routed.inboxes[0], vec![30]);
        assert_eq!(routed.inboxes[1], vec![10]);
        assert_eq!(routed.inboxes[2], vec![20]);
        assert_eq!(routed.sent_words, vec![2, 1, 0]);
        assert_eq!(routed.received_words, vec![1, 1, 1]);
        assert!(routed.violations.is_empty());
    }

    #[test]
    fn self_messages_allowed() {
        let routed = route(&cfg(1, 10), 0, vec![vec![(0, 5u64)]]);
        assert_eq!(routed.inboxes[0], vec![5]);
    }

    #[test]
    #[should_panic(expected = "sent")]
    fn strict_send_cap_panics() {
        let msgs: Vec<(usize, u64)> = (0..11).map(|i| (1usize, i)).collect();
        let _ = route(&cfg(2, 10), 0, vec![msgs, vec![]]);
    }

    #[test]
    #[should_panic(expected = "received")]
    fn strict_receive_cap_panics() {
        // Two senders each send 6 words to machine 0: each is under the
        // send cap, together they exceed machine 0's receive cap.
        let outbox = |_: usize| (0..6).map(|i| (0usize, i as u64)).collect::<Vec<_>>();
        let _ = route(&cfg(3, 10), 0, vec![vec![], outbox(1), outbox(2)]);
    }

    #[test]
    fn audit_records_instead_of_panicking() {
        let config = cfg(2, 3).audited();
        let msgs: Vec<(usize, u64)> = (0..5).map(|i| (1usize, i)).collect();
        let routed = route(&config, 7, vec![msgs, vec![]]);
        assert_eq!(routed.violations.len(), 2); // sender 0 over, receiver 1 over
        assert!(routed
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::SentExceedsMemory && v.machine == 0));
        assert!(routed
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ReceivedExceedsMemory && v.machine == 1));
        assert_eq!(routed.violations[0].round, 7);
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn bad_destination_panics() {
        let _ = route(&cfg(2, 10), 0, vec![vec![(5, 1u64)], vec![]]);
    }
}
