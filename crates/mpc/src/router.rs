//! The all-to-all communication fabric of a round.
//!
//! In the MPC model the network graph is complete: any machine may address
//! any other. The only restriction is capacity — per round, no machine may
//! send or receive more words than its memory `S` (the paper's Section
//! 1.1). The router measures both sides, delivers, and reports.
//!
//! # Zero-allocation layout
//!
//! The fabric is built from three buffer types that the [`crate::Cluster`]
//! owns and recycles across rounds, so a steady-state round performs no
//! inbox/outbox heap allocation once the buffers have warmed up:
//!
//! * [`Outbox<M>`] — a sender's staged messages: one contiguous `Vec<M>`
//!   in emission order plus a run-length encoding of destinations
//!   ([`Run`]). Senders that emit consecutive messages to the same
//!   destination (the common case in the executors' fan-out rounds) cost
//!   one run entry per destination burst, which makes the shuffle's tally
//!   stage O(runs) instead of O(messages) for counting.
//! * [`FlatInboxes<M>`] — the routed result in staggered-CSR form: one
//!   shared message buffer holding each destination's messages
//!   contiguously, with region starts staggered by a few cache lines
//!   (see the type docs for why). Per-destination inboxes are `&[M]`
//!   slices of the buffer; during the next round each machine drains its
//!   slice by value through [`crate::cluster::Inbox`] without copying.
//! * [`RouteScratch`] — the shuffle's working memory (per-machine word
//!   totals, the flat `m*m` tally/start tables of the parallel path, and
//!   the violation list), cleared and reused every round.
//!
//! # Parallel shuffle
//!
//! Delivery is a destination shuffle, executed host-parallel in three
//! deterministic stages when the round is large enough to pay for it:
//!
//! 1. **tally** (parallel over senders): per-sender word totals plus
//!    per-(sender, destination) message/word counts, written into flat
//!    `m*m` row-major tables (each sender owns one disjoint row),
//! 2. **layout** (sequential): one row-major prefix-sum pass turns the
//!    count table into a start-slot table — `starts[from][to]` is the
//!    absolute buffer index of sender `from`'s first message to `to`,
//!    reproducing the canonical sender-then-emission order,
//! 3. **place** (parallel over senders): each sender block-copies its
//!    runs into its preassigned disjoint slot ranges.
//!
//! The slot layout reproduces the canonical sender-then-emission order
//! exactly, so the routed inboxes — and therefore everything downstream —
//! are bit-identical to the sequential path at any thread count, and to
//! the pre-flat [`reference_shuffle`] retained as the test/bench oracle.

use crate::accounting::{Violation, ViolationKind};
use crate::events::{EventKind, EventRing, TraceEvent};
use crate::model::{Enforcement, MpcConfig};
use crate::words::Words;
use rayon::prelude::*;

/// Below this total message count the sequential path wins; the parallel
/// path produces identical output, so the cutover is invisible.
pub const PARALLEL_SHUFFLE_MIN_MSGS: usize = 4096;

/// The parallel path also pays an O(m²) layout stage (its flat
/// tally/start tables), so it additionally requires the message count to
/// amortize that: `total_msgs * PARALLEL_SHUFFLE_MSGS_PER_MM >= m * m`.
/// The sequential counting sort is O(messages + runs + m) and wins
/// otherwise. Output is bit-identical on both paths.
pub const PARALLEL_SHUFFLE_MSGS_PER_MM: usize = 4;

/// Whether [`route`] takes the host-parallel shuffle for a round of
/// `total_msgs` messages across `m` machines: the round must be big
/// enough to pay for the parallel tally ([`PARALLEL_SHUFFLE_MIN_MSGS`]),
/// big enough relative to `m²` to pay for the flat layout tables, and the
/// host pool must actually be parallel (on a single-thread pool the
/// staging overhead can never win).
fn use_parallel_shuffle(m: usize, total_msgs: usize) -> bool {
    total_msgs >= PARALLEL_SHUFFLE_MIN_MSGS
        && total_msgs.saturating_mul(PARALLEL_SHUFFLE_MSGS_PER_MM) >= m.saturating_mul(m)
        && rayon::current_num_threads() > 1
}

/// A burst of consecutive messages to one destination inside an
/// [`Outbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Destination machine.
    pub to: u32,
    /// Number of consecutive messages of this run.
    pub len: u32,
}

/// A sender's staged messages for one round: contiguous payloads in
/// emission order plus run-length-encoded destinations. Cleared (capacity
/// retained) by the router after delivery.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<M>,
    runs: Vec<Run>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox (no allocation until the first send).
    pub fn new() -> Self {
        Outbox {
            msgs: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Stages `msg` for delivery to machine `to`, extending the current
    /// destination run when possible.
    #[inline]
    pub fn push(&mut self, to: usize, msg: M) {
        let to = u32::try_from(to).expect("machine index fits u32");
        match self.runs.last_mut() {
            Some(run) if run.to == to && run.len < u32::MAX => run.len += 1,
            _ => self.runs.push(Run { to, len: 1 }),
        }
        self.msgs.push(msg);
    }

    /// Reserves capacity for `additional` further messages.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.msgs.reserve(additional);
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no messages are staged.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Destination runs (testing/benchmarks).
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Staged messages in emission order (testing/benchmarks).
    pub fn messages(&self) -> &[M] {
        &self.msgs
    }

    /// Forgets all staged messages *without dropping them* — for use after
    /// every payload has been moved out by `ptr::read`/`ptr::copy`.
    /// Retains both buffers' capacity.
    ///
    /// # Safety
    /// All `msgs` must have been moved out (ownership transferred) since
    /// the last time the outbox was filled.
    pub(crate) unsafe fn forget_moved(&mut self) {
        // SAFETY: the caller moved every element out, so truncating the
        // length to 0 merely stops the Vec from double-dropping them.
        unsafe { self.msgs.set_len(0) };
        self.runs.clear();
    }
}

/// The routed messages of one round in staggered-CSR form: one shared
/// buffer holds each destination's messages contiguously (in canonical
/// sender-then-emission order), with region starts staggered by a few
/// cache lines so that balanced rounds — whose regions would otherwise
/// sit exactly `total/m` apart — cannot alias the placing cursors onto
/// the same few L1 sets. The backing `Vec` is used as raw capacity (its
/// length stays 0); `starts`/`lens` describe the live regions, padding
/// holes are never read or written, and drops are managed explicitly.
#[derive(Debug)]
pub struct FlatInboxes<M> {
    buf: Vec<M>,
    /// Start slot of machine `i`'s region.
    starts: Vec<usize>,
    /// Messages in machine `i`'s region.
    lens: Vec<usize>,
    /// Whether the regions currently hold live (initialized) messages.
    live: bool,
}

/// Region starts are staggered over this many distinct step positions.
const REGION_STAGGER: usize = 8;

/// The stagger step in message slots — a ~256-byte stride, clamped to
/// 2..=32 slots (so sub-8-byte payloads get a proportionally smaller
/// stride; every message type this workspace routes is 8–24 bytes).
/// Consecutive regions start `0 .. 7 * step` slots past their packed
/// position, spreading the `m` placing cursors of a balanced round
/// across distinct cache sets instead of letting them alias on a
/// power-of-two stride.
const fn stagger_step<M>() -> usize {
    let k = match 256usize.checked_div(std::mem::size_of::<M>()) {
        Some(k) => k,
        None => 2, // zero-sized messages: any step works
    };
    if k < 2 {
        2
    } else if k > 32 {
        32
    } else {
        k
    }
}

impl<M> FlatInboxes<M> {
    /// Empty inboxes for `m` machines.
    pub fn new(m: usize) -> Self {
        FlatInboxes {
            buf: Vec::new(),
            starts: vec![0; m],
            lens: vec![0; m],
            live: false,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.starts.len()
    }

    /// Machine `i`'s inbox, in canonical sender-then-emission order.
    pub fn slice(&self, i: usize) -> &[M] {
        if !self.live {
            return &[];
        }
        // SAFETY: while `live`, region `i` holds `lens[i]` initialized
        // messages within the buffer's capacity.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().add(self.starts[i]), self.lens[i]) }
    }

    /// Total routed messages.
    pub fn total_messages(&self) -> usize {
        if self.live {
            self.lens.iter().sum()
        } else {
            0
        }
    }

    /// Per-machine region start slots.
    pub(crate) fn region_starts(&self) -> &[usize] {
        &self.starts
    }

    /// Per-machine region message counts.
    pub(crate) fn region_lens(&self) -> &[usize] {
        &self.lens
    }

    /// Base pointer of the message buffer — stable across rounds once the
    /// buffer has grown to its steady-state capacity (the buffer-identity
    /// signal the allocation-discipline tests pin).
    pub fn buffer_ptr(&self) -> *const M {
        self.buf.as_ptr()
    }

    /// Drops all pending messages, keeping every buffer's capacity — the
    /// discard counterpart of the cluster's per-round drain.
    pub fn clear(&mut self) {
        if self.live {
            self.live = false;
            if std::mem::needs_drop::<M>() {
                for i in 0..self.starts.len() {
                    let (start, len) = (self.starts[i], self.lens[i]);
                    // SAFETY: the region held initialized messages and
                    // `live` is already false, so nothing double-drops.
                    unsafe {
                        std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                            self.buf.as_mut_ptr().add(start),
                            len,
                        ));
                    }
                }
            }
        }
    }

    /// Logically empties the regions without dropping their messages,
    /// returning the base pointer; callers take over ownership of the
    /// `region_starts()`/`region_lens()`-described ranges (the cluster's
    /// per-machine draining views). Capacity is retained.
    pub(crate) fn begin_drain(&mut self) -> *mut M {
        // Ownership of all initialized elements transfers to the caller,
        // which drops or moves each exactly once.
        self.live = false;
        self.buf.as_mut_ptr()
    }

    /// Computes the staggered region layout for `recv_msgs` messages per
    /// machine, reserves capacity, and returns the base pointer for the
    /// placing stage. The inboxes must be logically empty; the caller
    /// must initialize every slot of every region before `finish_fill`.
    fn begin_fill(&mut self, recv_msgs: &[usize]) -> *mut M {
        debug_assert!(!self.live, "inboxes drained before routing");
        let step = stagger_step::<M>();
        let mut cursor = 0usize;
        for (i, &n) in recv_msgs.iter().enumerate() {
            self.starts[i] = cursor + (i % REGION_STAGGER) * step;
            self.lens[i] = n;
            cursor = self.starts[i] + n;
        }
        self.buf.reserve(cursor);
        self.buf.as_mut_ptr()
    }

    /// Marks the regions laid out by `begin_fill` as live.
    pub(crate) fn finish_fill(&mut self) {
        self.live = true;
    }
}

impl<M> Drop for FlatInboxes<M> {
    fn drop(&mut self) {
        self.clear();
    }
}

/// Reusable working memory of [`route`]: word totals, the parallel
/// shuffle's flat tally/start tables, and the violation list. One
/// instance lives in the [`crate::Cluster`] and is recycled every round.
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Words sent per machine (valid after [`route`]).
    pub sent_words: Vec<usize>,
    /// Words received per machine (valid after [`route`]).
    pub received_words: Vec<usize>,
    /// Messages received per machine.
    pub(crate) recv_msgs: Vec<usize>,
    /// Flat `m*m` row-major per-(sender, destination) message counts
    /// (parallel path only).
    counts: Vec<u32>,
    /// Flat `m*m` row-major per-(sender, destination) word counts
    /// (parallel path only).
    words: Vec<usize>,
    /// Flat `m*m` row-major start slots (parallel path); doubles as the
    /// sequential path's per-destination cursor array (first `m`
    /// entries).
    pub(crate) starts: Vec<usize>,
    /// Capacity breaches of the last routed round (audit mode).
    pub violations: Vec<Violation>,
    /// Per-machine instrumentation rings: fixed-capacity, recycled every
    /// round like every other buffer here, so recording model-domain
    /// events on the hot path never allocates. The cluster's bookkeeping
    /// drains them into the trace once per round.
    pub(crate) rings: Vec<EventRing>,
}

impl RouteScratch {
    /// Scratch sized lazily by the first [`route`] call.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)sizes the per-machine vectors and clears totals. The event
    /// rings are only (re)sized, never cleared: they may hold events
    /// recorded since the last bookkeeping drain.
    pub(crate) fn reset_per_machine(&mut self, m: usize) {
        self.sent_words.clear();
        self.sent_words.resize(m, 0);
        self.received_words.clear();
        self.received_words.resize(m, 0);
        self.recv_msgs.clear();
        self.recv_msgs.resize(m, 0);
        self.violations.clear();
        if self.rings.len() < m {
            self.rings.resize_with(m, EventRing::new);
        }
    }

    /// Records the per-machine region shape of a freshly laid-out round
    /// — [`EventKind::RegionMsgs`] and [`EventKind::RegionWords`] — into
    /// the event rings. Called once per round, after the layout has
    /// finalized `received_words` and the region lengths, on both fabric
    /// paths and both schedulers (identical values, identical order).
    pub(crate) fn record_region_events(&mut self, region_lens: &[usize]) {
        let received = &self.received_words;
        for (i, ring) in self.rings.iter_mut().enumerate() {
            ring.record(EventKind::RegionMsgs, region_lens[i] as u64);
            ring.record(EventKind::RegionWords, received[i] as u64);
        }
    }

    /// Drains every machine's event ring into `out` tagged with `round`
    /// (machine order, recording order within a machine). The cluster's
    /// bookkeeping step interleaves its own recordings before draining;
    /// this is the standalone form for tests and bare-fabric drivers.
    pub fn drain_events_into(&mut self, out: &mut Vec<TraceEvent>, round: u32) {
        for (machine, ring) in self.rings.iter_mut().enumerate() {
            ring.drain_into(out, round, machine as u32);
        }
    }

    /// (Re)sizes and zeroes the flat `m*m` tables of the parallel path.
    fn reset_tables(&mut self, m: usize) {
        let mm = m * m;
        self.counts.clear();
        self.counts.resize(mm, 0);
        self.words.clear();
        self.words.resize(mm, 0);
        self.starts.clear();
        self.starts.resize(mm, 0);
    }
}

/// Raw base pointer shared across the placing workers; senders write
/// disjoint slot ranges. Also used by the pipelined scheduler
/// ([`crate::pipeline`]) for its region/outbox handoffs, whose
/// disjointness is guaranteed by the readiness protocol there.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
// SAFETY: the wrapper only hands out raw pointers; the shuffle stages
// guarantee every worker writes a disjoint slot range.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — shared access is to disjoint ranges only.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    pub(crate) fn at(&self, index: usize) -> *mut T {
        // SAFETY: callers stay within the reserved capacity.
        unsafe { self.0.add(index) }
    }
}

/// Routes every staged [`Outbox`] into `inboxes` (destination-major CSR,
/// canonical sender-then-emission order per destination), enforcing the
/// send/receive caps. Word totals land in `scratch.sent_words` /
/// `scratch.received_words`, breaches in `scratch.violations` (audit
/// mode; strict mode panics). Outboxes are emptied with their capacity
/// retained; `inboxes` must be logically empty (drained or fresh).
pub fn route<M: Words + Send + Sync>(
    config: &MpcConfig,
    round: usize,
    outboxes: &mut [Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
) {
    let m = config.num_machines;
    let total_msgs: usize = outboxes.iter().map(Outbox::len).sum();
    route_forced(
        config,
        round,
        outboxes,
        inboxes,
        scratch,
        use_parallel_shuffle(m, total_msgs),
    );
}

/// [`route`] with the shuffle path pinned — for tests and property
/// oracles that must exercise the parallel stages regardless of host
/// thread count. Both paths produce bit-identical output.
#[doc(hidden)]
pub fn route_forced<M: Words + Send + Sync>(
    config: &MpcConfig,
    round: usize,
    outboxes: &mut [Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
    parallel: bool,
) {
    let m = config.num_machines;
    assert_eq!(outboxes.len(), m, "one outbox per machine");
    assert_eq!(inboxes.num_machines(), m, "inboxes sized for the cluster");
    debug_assert!(!inboxes.live, "inboxes drained before routing");
    scratch.reset_per_machine(m);

    if parallel {
        shuffle_parallel(m, outboxes, inboxes, scratch);
    } else {
        shuffle_sequential(m, outboxes, inboxes, scratch);
    }

    scratch.record_region_events(inboxes.region_lens());
    tracing::event!(
        tracing::Level::Trace,
        "route",
        round = round,
        machines = m,
        messages = inboxes.total_messages()
    );
    cap_check(config, round, scratch);
}

/// The send/receive cap enforcement over a routed round's word totals —
/// per machine in index order, send side before receive side, so the
/// recorded violation order is identical whichever shuffle (or the
/// pipelined scheduler, which runs this before placement — the totals
/// are already final after layout) produced the totals.
pub(crate) fn cap_check(config: &MpcConfig, round: usize, scratch: &mut RouteScratch) {
    let m = config.num_machines;
    let cap = config.memory_words;
    for machine in 0..m {
        let sent = scratch.sent_words[machine];
        if sent > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::SentExceedsMemory,
                words: sent,
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} sent {sent} words > cap {cap} in round {round}"
                ),
                Enforcement::Audit => scratch.violations.push(v),
            }
        }
        let received = scratch.received_words[machine];
        if received > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::ReceivedExceedsMemory,
                words: received,
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} received {received} words > cap {cap} in round {round}"
                ),
                Enforcement::Audit => scratch.violations.push(v),
            }
        }
    }
}

/// Sequential counting-sort shuffle: one tally pass over the runs, the
/// staggered region layout, one placing pass that block-copies each run
/// at its destination's cursor (the stagger keeps the cursors off each
/// other's cache sets in balanced rounds). O(messages + runs + m), no
/// allocation at steady state.
fn shuffle_sequential<M: Words>(
    m: usize,
    outboxes: &mut [Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
) {
    // Tally: message counts per destination. Touches only the run table
    // (not the payloads); word totals are folded into the placing pass,
    // which reads every message anyway.
    for (from, outbox) in outboxes.iter().enumerate() {
        for run in &outbox.runs {
            let to = run.to as usize;
            assert!(to < m, "machine {from} addressed nonexistent machine {to}");
            scratch.recv_msgs[to] += run.len as usize;
        }
    }

    // Layout: staggered region starts from the per-destination counts.
    let base_ptr = inboxes.begin_fill(&scratch.recv_msgs[..m]);

    // Place: per-destination cursors advance in sender order, so each
    // destination's slice is in canonical sender-then-emission order.
    scratch.starts.clear();
    scratch.starts.extend_from_slice(inboxes.region_starts());
    for (from, outbox) in outboxes.iter_mut().enumerate() {
        let mut src = 0usize;
        let mut sent = 0usize;
        for run in &outbox.runs {
            let to = run.to as usize;
            let len = run.len as usize;
            debug_assert!(src + len <= outbox.msgs.len());
            // SAFETY: run lengths sum to the outbox's message count by
            // construction ([`Outbox::push`] is the only writer).
            let chunk = unsafe { outbox.msgs.get_unchecked(src..src + len) };
            let w: usize = chunk.iter().map(Words::words).sum();
            sent += w;
            scratch.received_words[to] += w;
            // SAFETY: cursor ranges of distinct (sender, run) pairs are
            // disjoint by the region layout and lie within the reserved
            // capacity; sources are moved out exactly once
            // (`forget_moved` below).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    outbox.msgs.as_ptr().add(src),
                    base_ptr.add(scratch.starts[to]),
                    len,
                );
            }
            scratch.starts[to] += len;
            src += len;
        }
        scratch.sent_words[from] = sent;
        // SAFETY: every message was moved into the inbox buffer above.
        unsafe { outbox.forget_moved() };
    }
    // Every region slot was initialized by the moves above.
    inboxes.finish_fill();
}

/// The layout half of the flat shuffle: the parallel tally (stage 1)
/// plus the sequential layout pass (stage 2) over the flat `m*m` tables.
/// On return every per-machine total — `sent_words`, `received_words`,
/// the region starts/lens of `inboxes` — is final, the start-slot table
/// (`scratch.starts`, row-major per-(sender, destination)) describes
/// where every sender's runs will land, and the returned base pointer
/// addresses the reserved (still uninitialized) inbox buffer. No message
/// has moved yet; [`place_sender`] does that per sender.
///
/// Callable on its own by the pipelined scheduler, which needs the
/// region bounds and word totals *before* placement so it can run cap
/// enforcement and arm per-region delivery counters up front. Note that
/// `scratch.recv_msgs` is consumed as the layout's running cursors —
/// per-region message counts live in `inboxes.region_lens()` afterwards.
pub(crate) fn layout_flat<M: Words + Send + Sync>(
    m: usize,
    outboxes: &[Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
) -> *mut M {
    scratch.reset_tables(m);

    // Stage 1 — tally, parallel over senders: each sender owns row `from`
    // of the flat count/word tables plus its `sent_words` slot.
    {
        let counts = SendPtr(scratch.counts.as_mut_ptr());
        let words = SendPtr(scratch.words.as_mut_ptr());
        let sent = SendPtr(scratch.sent_words.as_mut_ptr());
        outboxes.par_iter().enumerate().for_each(|(from, outbox)| {
            let row = from * m;
            let mut total = 0usize;
            let mut base = 0usize;
            for run in &outbox.runs {
                let to = run.to as usize;
                assert!(to < m, "machine {from} addressed nonexistent machine {to}");
                let len = run.len as usize;
                let w: usize = outbox.msgs[base..base + len].iter().map(Words::words).sum();
                // SAFETY: row `from` and slot `from` are owned by this
                // sender alone; indices stay below `m * m` / `m`.
                unsafe {
                    *counts.at(row + to) += run.len;
                    *words.at(row + to) += w;
                }
                total += w;
                base += len;
            }
            // SAFETY: slot `from` of `sent_words` is owned by this sender.
            unsafe { *sent.at(from) = total };
        });
    }

    // Stage 2 — layout, sequential: two row-major passes over the flat
    // tables. First fold per-destination totals (feeding the staggered
    // region layout), then convert counts into absolute start slots
    // (exclusive prefix sum down each column, walked row-major for cache
    // friendliness).
    for from in 0..m {
        let row = &scratch.counts[from * m..(from + 1) * m];
        let wrow = &scratch.words[from * m..(from + 1) * m];
        for to in 0..m {
            scratch.recv_msgs[to] += row[to] as usize;
            scratch.received_words[to] += wrow[to];
        }
    }
    let base = inboxes.begin_fill(&scratch.recv_msgs[..m]);
    // Reuse `recv_msgs` as the running column cursors, seeded from the
    // region starts.
    scratch.recv_msgs.copy_from_slice(inboxes.region_starts());
    for from in 0..m {
        let row = from * m;
        for to in 0..m {
            scratch.starts[row + to] = scratch.recv_msgs[to];
            scratch.recv_msgs[to] += scratch.counts[row + to] as usize;
        }
    }
    base
}

/// The placement half of the flat shuffle for one sender: block-copies
/// `outbox`'s runs into the slot ranges [`layout_flat`] assigned it,
/// advancing its own start row so repeated runs to one destination land
/// back to back in emission order. `on_run(to, len)` fires after each
/// run's copy — a no-op on the barrier path, the per-region delivery
/// notification on the pipelined path.
///
/// Does **not** forget the outbox's moved-out messages; the caller must
/// follow up with [`Outbox::forget_moved`] before the outbox is reused.
///
/// # Safety
/// `buf` and `starts` must come from a [`layout_flat`] call over an
/// outbox slice containing this exact `(from, outbox)`, with no
/// intervening layout; each `(from, outbox)` may be placed at most once
/// per layout. Distinct senders may then run concurrently — their slot
/// ranges are disjoint by the prefix-sum layout.
pub(crate) unsafe fn place_sender<M: Words>(
    m: usize,
    from: usize,
    outbox: &Outbox<M>,
    buf: &SendPtr<M>,
    starts: &SendPtr<usize>,
    mut on_run: impl FnMut(usize, usize),
) {
    let row = from * m;
    let mut src = 0usize;
    for run in &outbox.runs {
        let to = run.to as usize;
        let len = run.len as usize;
        // SAFETY: slot ranges of different senders are disjoint by the
        // prefix-sum layout and stay within the reserved capacity; start
        // row `from` is owned by this sender.
        unsafe {
            let slot = *starts.at(row + to);
            std::ptr::copy_nonoverlapping(outbox.msgs.as_ptr().add(src), buf.at(slot), len);
            *starts.at(row + to) = slot + len;
        }
        src += len;
        on_run(to, len);
    }
}

/// The full placement stage over every sender: parallel [`place_sender`]
/// calls into disjoint slot ranges, then the outbox drains
/// ([`Outbox::forget_moved`]). `base` must come from the immediately
/// preceding [`layout_flat`] over the same `outboxes`. Used by the fused
/// parallel shuffle and by the pipelined scheduler's final segment round
/// (which has no next compute to overlap with). Does not mark the inbox
/// regions live — the caller decides between `finish_fill` (barrier
/// handoff) and immediate in-place draining (pipelined handoff).
pub(crate) fn place_all<M: Words + Send + Sync>(
    m: usize,
    outboxes: &mut [Outbox<M>],
    base: *mut M,
    scratch: &mut RouteScratch,
) {
    {
        let buf = SendPtr(base);
        let starts = SendPtr(scratch.starts.as_mut_ptr());
        outboxes.par_iter().enumerate().for_each(|(from, outbox)| {
            // SAFETY: layout covered exactly these outboxes; each sender
            // is placed once, and senders' ranges are disjoint.
            unsafe { place_sender(m, from, outbox, &buf, &starts, |_, _| {}) };
        });
    }
    for outbox in outboxes.iter_mut() {
        // SAFETY: every message was moved into the inbox buffer above.
        unsafe { outbox.forget_moved() };
    }
}

/// Parallel three-stage shuffle over flat `m*m` tables — the fused
/// composition of [`layout_flat`] and [`place_all`]; bit-identical to
/// [`shuffle_sequential`] (same canonical order) at any thread count.
fn shuffle_parallel<M: Words + Send + Sync>(
    m: usize,
    outboxes: &mut [Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
) {
    let base = layout_flat(m, outboxes, inboxes, scratch);
    place_all(m, outboxes, base, scratch);
    // Every region slot was initialized by the moves above.
    inboxes.finish_fill();
}

/// The pre-flat naive shuffle — push every `(dest, message)` pair into a
/// freshly allocated `Vec` per destination — retained verbatim as the
/// bit-exactness oracle for the fabric property tests and the baseline
/// side of the `router` microbenchmark. Returns
/// `(inboxes, sent_words, received_words)`.
pub fn reference_shuffle<M: Words>(
    m: usize,
    outboxes: Vec<Vec<(usize, M)>>,
) -> (Vec<Vec<M>>, Vec<usize>, Vec<usize>) {
    let mut sent_words = vec![0usize; m];
    let mut received_words = vec![0usize; m];
    let mut inboxes: Vec<Vec<M>> = (0..m).map(|_| Vec::new()).collect();
    for (from, outbox) in outboxes.into_iter().enumerate() {
        for (to, msg) in outbox {
            assert!(to < m, "machine {from} addressed nonexistent machine {to}");
            let w = msg.words();
            sent_words[from] += w;
            received_words[to] += w;
            inboxes[to].push(msg);
        }
    }
    (inboxes, sent_words, received_words)
}

/// Stages a `(dest, message)` pair list into fresh outboxes (tests,
/// benches, and property oracles — the cluster reuses its own).
pub fn stage_outboxes<M>(m: usize, pairs: Vec<Vec<(usize, M)>>) -> Vec<Outbox<M>> {
    assert_eq!(pairs.len(), m);
    pairs
        .into_iter()
        .map(|list| {
            let mut ob = Outbox::new();
            ob.reserve(list.len());
            for (to, msg) in list {
                ob.push(to, msg);
            }
            ob
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, s: usize) -> MpcConfig {
        MpcConfig::new(m, s)
    }

    /// Routes a pair list through the flat fabric (auto path selection),
    /// returning owned per-machine inboxes plus word totals and
    /// violations.
    fn route_pairs<M: Words + Send + Sync + Clone>(
        config: &MpcConfig,
        round: usize,
        pairs: Vec<Vec<(usize, M)>>,
    ) -> (Vec<Vec<M>>, Vec<usize>, Vec<usize>, Vec<Violation>) {
        let m = config.num_machines;
        let total: usize = pairs.iter().map(Vec::len).sum();
        route_pairs_forced(config, round, pairs, use_parallel_shuffle(m, total))
    }

    /// Routes a pair list with the shuffle path pinned.
    fn route_pairs_forced<M: Words + Send + Sync + Clone>(
        config: &MpcConfig,
        round: usize,
        pairs: Vec<Vec<(usize, M)>>,
        parallel: bool,
    ) -> (Vec<Vec<M>>, Vec<usize>, Vec<usize>, Vec<Violation>) {
        let m = config.num_machines;
        let mut outboxes = stage_outboxes(m, pairs);
        let mut inboxes = FlatInboxes::new(m);
        let mut scratch = RouteScratch::new();
        route_forced(
            config,
            round,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            parallel,
        );
        let per_machine = (0..m).map(|i| inboxes.slice(i).to_vec()).collect();
        (
            per_machine,
            scratch.sent_words.clone(),
            scratch.received_words.clone(),
            scratch.violations.clone(),
        )
    }

    #[test]
    fn delivers_to_destinations() {
        let (inboxes, sent, received, violations) = route_pairs(
            &cfg(3, 100),
            0,
            vec![vec![(1, 10u64), (2, 20u64)], vec![(0, 30u64)], vec![]],
        );
        assert_eq!(inboxes[0], vec![30]);
        assert_eq!(inboxes[1], vec![10]);
        assert_eq!(inboxes[2], vec![20]);
        assert_eq!(sent, vec![2, 1, 0]);
        assert_eq!(received, vec![1, 1, 1]);
        assert!(violations.is_empty());
    }

    #[test]
    fn self_messages_allowed() {
        let (inboxes, ..) = route_pairs(&cfg(1, 10), 0, vec![vec![(0, 5u64)]]);
        assert_eq!(inboxes[0], vec![5]);
    }

    #[test]
    fn outbox_run_length_encodes_destination_bursts() {
        let mut ob = Outbox::new();
        for _ in 0..5 {
            ob.push(2, 1u64);
        }
        ob.push(0, 2u64);
        ob.push(2, 3u64);
        assert_eq!(ob.len(), 7);
        assert_eq!(
            ob.runs(),
            &[
                Run { to: 2, len: 5 },
                Run { to: 0, len: 1 },
                Run { to: 2, len: 1 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "sent")]
    fn strict_send_cap_panics() {
        let msgs: Vec<(usize, u64)> = (0..11).map(|i| (1usize, i)).collect();
        let _ = route_pairs(&cfg(2, 10), 0, vec![msgs, vec![]]);
    }

    #[test]
    #[should_panic(expected = "received")]
    fn strict_receive_cap_panics() {
        // Two senders each send 6 words to machine 0: each is under the
        // send cap, together they exceed machine 0's receive cap.
        let outbox = |_: usize| (0..6).map(|i| (0usize, i as u64)).collect::<Vec<_>>();
        let _ = route_pairs(&cfg(3, 10), 0, vec![vec![], outbox(1), outbox(2)]);
    }

    #[test]
    fn audit_records_instead_of_panicking() {
        let config = cfg(2, 3).audited();
        let msgs: Vec<(usize, u64)> = (0..5).map(|i| (1usize, i)).collect();
        let (_, _, _, violations) = route_pairs(&config, 7, vec![msgs, vec![]]);
        assert_eq!(violations.len(), 2); // sender 0 over, receiver 1 over
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::SentExceedsMemory && v.machine == 0));
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::ReceivedExceedsMemory && v.machine == 1));
        assert_eq!(violations[0].round, 7);
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn bad_destination_panics() {
        let _ = route_pairs(&cfg(2, 10), 0, vec![vec![(5, 1u64)], vec![]]);
    }

    /// Synthetic round big enough to take the parallel path.
    fn big_pairs(m: usize, per_sender: usize) -> Vec<Vec<(usize, u64)>> {
        (0..m)
            .map(|from| {
                (0..per_sender)
                    .map(|k| (((from * 31 + k * 7) % m), (from * 100_000 + k) as u64))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn both_shuffle_paths_match_reference_exactly() {
        for parallel in [false, true] {
            let m = 13;
            let per = 1024;
            let config = cfg(m, 1 << 30);
            let (flat, fs, fr, _) = route_pairs_forced(&config, 0, big_pairs(m, per), parallel);
            let (naive, ns, nr) = reference_shuffle(m, big_pairs(m, per));
            assert_eq!(fs, ns);
            assert_eq!(fr, nr);
            assert_eq!(flat, naive, "inbox contents and order must be identical");
        }
    }

    #[test]
    fn parallel_shuffle_preserves_sender_then_emission_order() {
        // Every sender sends an increasing sequence to destination 0; the
        // inbox must hold sender 0's block, then sender 1's, each in
        // emission order.
        let m = 4;
        let per = 2000;
        let pairs: Vec<Vec<(usize, u64)>> = (0..m)
            .map(|from| {
                (0..per)
                    .map(|k| (0usize, (from * per + k) as u64))
                    .collect()
            })
            .collect();
        let (inboxes, ..) = route_pairs_forced(&cfg(m, 1 << 30), 0, pairs, true);
        let expect: Vec<u64> = (0..(m * per) as u64).collect();
        assert_eq!(inboxes[0], expect);
        assert!(inboxes[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn parallel_path_still_checks_destinations() {
        let mut pairs = big_pairs(3, 2048);
        pairs[1][17].0 = 99;
        let _ = route_pairs_forced(&cfg(3, 1 << 30), 0, pairs, true);
    }

    #[test]
    fn cutover_amortizes_the_layout_tables() {
        // Big enough in absolute terms but tiny relative to m²: stays
        // sequential no matter the thread count.
        assert!(!use_parallel_shuffle(512, PARALLEL_SHUFFLE_MIN_MSGS));
        // Small rounds always stay sequential.
        assert!(!use_parallel_shuffle(4, PARALLEL_SHUFFLE_MIN_MSGS - 1));
    }

    #[test]
    fn buffers_are_recycled_across_rounds() {
        // After a warm-up round at the peak shape, further identical
        // rounds must reuse the exact same buffers on both fabric paths.
        for parallel in [false, true] {
            let (m, per) = (3, 2048);
            let config = cfg(m, 1 << 30);
            let mut outboxes: Vec<Outbox<u64>> = (0..m).map(|_| Outbox::new()).collect();
            let mut inboxes = FlatInboxes::new(m);
            let mut scratch = RouteScratch::new();
            let fill = |outboxes: &mut Vec<Outbox<u64>>| {
                for (from, pairs) in big_pairs(m, per).into_iter().enumerate() {
                    for (to, msg) in pairs {
                        outboxes[from].push(to, msg);
                    }
                }
            };
            fill(&mut outboxes);
            route_forced(
                &config,
                0,
                &mut outboxes,
                &mut inboxes,
                &mut scratch,
                parallel,
            );
            let inbox_ptr = inboxes.buffer_ptr();
            let outbox_ptrs: Vec<*const u64> = outboxes.iter().map(|o| o.msgs.as_ptr()).collect();
            for round in 1..4 {
                let drained = inboxes.begin_drain();
                assert_eq!(drained as *const u64, inbox_ptr);
                // Drop the drained payloads (u64: no-op) — ownership moved.
                fill(&mut outboxes);
                route_forced(
                    &config,
                    round,
                    &mut outboxes,
                    &mut inboxes,
                    &mut scratch,
                    parallel,
                );
                assert_eq!(inboxes.buffer_ptr(), inbox_ptr, "inbox buffer reused");
                for (o, &p) in outboxes.iter().zip(&outbox_ptrs) {
                    assert_eq!(o.msgs.as_ptr(), p, "outbox arena reused");
                }
            }
        }
    }
}
