//! The all-to-all communication fabric of a round.
//!
//! In the MPC model the network graph is complete: any machine may address
//! any other. The only restriction is capacity — per round, no machine may
//! send or receive more words than its memory `S` (the paper's Section
//! 1.1). The router measures both sides, delivers, and reports.
//!
//! # Parallel shuffle
//!
//! Delivery is a destination shuffle, executed host-parallel in three
//! deterministic stages when the round is large enough to pay for it:
//!
//! 1. **tally** (parallel over senders): per-sender word totals plus
//!    per-(sender, destination) message/word counts,
//! 2. **layout** (sequential, O(machines²)): exclusive prefix sums give
//!    every sender a starting slot in every destination's inbox,
//! 3. **place** (parallel over senders): each sender writes its messages
//!    into its preassigned disjoint slots.
//!
//! The slot layout reproduces the canonical sender-then-emission order
//! exactly, so the routed inboxes — and therefore everything downstream —
//! are bit-identical to the sequential path at any thread count.

use crate::accounting::{Violation, ViolationKind};
use crate::model::{Enforcement, MpcConfig};
use crate::words::Words;
use rayon::prelude::*;

/// Below this total message count the sequential path wins; the parallel
/// path produces identical output, so the cutover is invisible.
const PARALLEL_SHUFFLE_MIN_MSGS: usize = 4096;

/// Result of routing one round's outboxes.
pub struct RoutedRound<M> {
    /// Per-machine inboxes for the next round, in sender-then-emission order.
    pub inboxes: Vec<Vec<M>>,
    /// Words sent per machine.
    pub sent_words: Vec<usize>,
    /// Words received per machine.
    pub received_words: Vec<usize>,
    /// Capacity breaches found (strict mode panics instead of returning).
    pub violations: Vec<Violation>,
}

/// Raw slot pointer into one inbox buffer; senders write disjoint slots.
struct InboxPtr<M>(*mut M);
unsafe impl<M: Send> Send for InboxPtr<M> {}
unsafe impl<M: Send> Sync for InboxPtr<M> {}

impl<M> InboxPtr<M> {
    fn slot(&self, index: usize) -> *mut M {
        // SAFETY bound: callers stay within the reserved capacity.
        unsafe { self.0.add(index) }
    }
}

/// Routes `outboxes[machine] = [(dest, message), ...]` to per-destination
/// inboxes, enforcing the send/receive caps.
pub fn route<M: Words + Send + Sync>(
    config: &MpcConfig,
    round: usize,
    outboxes: Vec<Vec<(usize, M)>>,
) -> RoutedRound<M> {
    let m = config.num_machines;
    assert_eq!(outboxes.len(), m, "one outbox per machine");
    let total_msgs: usize = outboxes.iter().map(Vec::len).sum();
    let (inboxes, sent_words, received_words) = if total_msgs >= PARALLEL_SHUFFLE_MIN_MSGS {
        shuffle_parallel(m, outboxes)
    } else {
        shuffle_sequential(m, outboxes)
    };

    let cap = config.memory_words;
    let mut violations = Vec::new();
    for machine in 0..m {
        if sent_words[machine] > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::SentExceedsMemory,
                words: sent_words[machine],
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} sent {} words > cap {cap} in round {round}",
                    sent_words[machine]
                ),
                Enforcement::Audit => violations.push(v),
            }
        }
        if received_words[machine] > cap {
            let v = Violation {
                round,
                machine,
                kind: ViolationKind::ReceivedExceedsMemory,
                words: received_words[machine],
                cap,
            };
            match config.enforcement {
                Enforcement::Strict => panic!(
                    "MPC violation: machine {machine} received {} words > cap {cap} in round {round}",
                    received_words[machine]
                ),
                Enforcement::Audit => violations.push(v),
            }
        }
    }

    RoutedRound {
        inboxes,
        sent_words,
        received_words,
        violations,
    }
}

type Shuffled<M> = (Vec<Vec<M>>, Vec<usize>, Vec<usize>);

fn shuffle_sequential<M: Words>(m: usize, outboxes: Vec<Vec<(usize, M)>>) -> Shuffled<M> {
    let mut sent_words = vec![0usize; m];
    let mut received_words = vec![0usize; m];
    let mut inboxes: Vec<Vec<M>> = (0..m).map(|_| Vec::new()).collect();
    for (from, outbox) in outboxes.into_iter().enumerate() {
        for (to, msg) in outbox {
            assert!(to < m, "machine {from} addressed nonexistent machine {to}");
            let w = msg.words();
            sent_words[from] += w;
            received_words[to] += w;
            inboxes[to].push(msg);
        }
    }
    (inboxes, sent_words, received_words)
}

fn shuffle_parallel<M: Words + Send + Sync>(
    m: usize,
    outboxes: Vec<Vec<(usize, M)>>,
) -> Shuffled<M> {
    // Stage 1 — tally, parallel over senders.
    struct Tally {
        sent: usize,
        msgs_to: Vec<u32>,
        words_to: Vec<usize>,
    }
    let tallies: Vec<Tally> = outboxes
        .par_iter()
        .enumerate()
        .map(|(from, outbox)| {
            let mut t = Tally {
                sent: 0,
                msgs_to: vec![0u32; m],
                words_to: vec![0usize; m],
            };
            for (to, msg) in outbox {
                assert!(*to < m, "machine {from} addressed nonexistent machine {to}");
                let w = msg.words();
                t.sent += w;
                t.words_to[*to] += w;
                t.msgs_to[*to] += 1;
            }
            t
        })
        .collect();

    // Stage 2 — layout: start[from][to] = Σ_{f < from} msgs_to[f][to],
    // i.e. the canonical sender-then-emission order per destination.
    let sent_words: Vec<usize> = tallies.iter().map(|t| t.sent).collect();
    let mut received_words = vec![0usize; m];
    let mut recv_msgs = vec![0usize; m];
    for t in &tallies {
        for (to, (rw, rm)) in received_words.iter_mut().zip(&mut recv_msgs).enumerate() {
            *rw += t.words_to[to];
            *rm += t.msgs_to[to] as usize;
        }
    }
    let mut starts: Vec<Vec<usize>> = Vec::with_capacity(m);
    let mut cursor = vec![0usize; m];
    for t in &tallies {
        starts.push(cursor.clone());
        for (to, c) in cursor.iter_mut().enumerate() {
            *c += t.msgs_to[to] as usize;
        }
    }

    // Stage 3 — place, parallel over senders into disjoint slot ranges.
    let mut inboxes: Vec<Vec<M>> = recv_msgs.iter().map(|&n| Vec::with_capacity(n)).collect();
    let bases: Vec<InboxPtr<M>> = inboxes
        .iter_mut()
        .map(|v| InboxPtr(v.as_mut_ptr()))
        .collect();
    outboxes
        .into_par_iter()
        .zip(starts.into_par_iter())
        .for_each(|(outbox, mut next)| {
            for (to, msg) in outbox {
                // SAFETY: `next[to]` ranges over this sender's reserved
                // slots in destination `to`'s buffer; slot ranges of
                // different senders are disjoint by the prefix-sum layout
                // and stay within the reserved capacity.
                unsafe { bases[to].slot(next[to]).write(msg) };
                next[to] += 1;
            }
        });
    for (inbox, &n) in inboxes.iter_mut().zip(&recv_msgs) {
        // SAFETY: exactly `n` slots of this buffer were initialized above
        // (message writes are plain moves and cannot panic).
        unsafe { inbox.set_len(n) };
    }
    (inboxes, sent_words, received_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, s: usize) -> MpcConfig {
        MpcConfig::new(m, s)
    }

    #[test]
    fn delivers_to_destinations() {
        let routed = route(
            &cfg(3, 100),
            0,
            vec![vec![(1, 10u64), (2, 20u64)], vec![(0, 30u64)], vec![]],
        );
        assert_eq!(routed.inboxes[0], vec![30]);
        assert_eq!(routed.inboxes[1], vec![10]);
        assert_eq!(routed.inboxes[2], vec![20]);
        assert_eq!(routed.sent_words, vec![2, 1, 0]);
        assert_eq!(routed.received_words, vec![1, 1, 1]);
        assert!(routed.violations.is_empty());
    }

    #[test]
    fn self_messages_allowed() {
        let routed = route(&cfg(1, 10), 0, vec![vec![(0, 5u64)]]);
        assert_eq!(routed.inboxes[0], vec![5]);
    }

    #[test]
    #[should_panic(expected = "sent")]
    fn strict_send_cap_panics() {
        let msgs: Vec<(usize, u64)> = (0..11).map(|i| (1usize, i)).collect();
        let _ = route(&cfg(2, 10), 0, vec![msgs, vec![]]);
    }

    #[test]
    #[should_panic(expected = "received")]
    fn strict_receive_cap_panics() {
        // Two senders each send 6 words to machine 0: each is under the
        // send cap, together they exceed machine 0's receive cap.
        let outbox = |_: usize| (0..6).map(|i| (0usize, i as u64)).collect::<Vec<_>>();
        let _ = route(&cfg(3, 10), 0, vec![vec![], outbox(1), outbox(2)]);
    }

    #[test]
    fn audit_records_instead_of_panicking() {
        let config = cfg(2, 3).audited();
        let msgs: Vec<(usize, u64)> = (0..5).map(|i| (1usize, i)).collect();
        let routed = route(&config, 7, vec![msgs, vec![]]);
        assert_eq!(routed.violations.len(), 2); // sender 0 over, receiver 1 over
        assert!(routed
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::SentExceedsMemory && v.machine == 0));
        assert!(routed
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ReceivedExceedsMemory && v.machine == 1));
        assert_eq!(routed.violations[0].round, 7);
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn bad_destination_panics() {
        let _ = route(&cfg(2, 10), 0, vec![vec![(5, 1u64)], vec![]]);
    }

    /// Synthetic round big enough to take the parallel path.
    fn big_outboxes(m: usize, per_sender: usize) -> Vec<Vec<(usize, u64)>> {
        (0..m)
            .map(|from| {
                (0..per_sender)
                    .map(|k| (((from * 31 + k * 7) % m), (from * 100_000 + k) as u64))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_shuffle_matches_sequential_exactly() {
        let m = 13;
        let per = 1024; // 13 * 1024 > PARALLEL_SHUFFLE_MIN_MSGS
        let (pi, ps, pr) = shuffle_parallel(m, big_outboxes(m, per));
        let (si, ss, sr) = shuffle_sequential(m, big_outboxes(m, per));
        assert_eq!(ps, ss);
        assert_eq!(pr, sr);
        assert_eq!(pi, si, "inbox contents and order must be identical");
    }

    #[test]
    fn parallel_shuffle_preserves_sender_then_emission_order() {
        // Every sender sends an increasing sequence to destination 0; the
        // inbox must hold sender 0's block, then sender 1's, each in
        // emission order.
        let m = 4;
        let per = 2000;
        let outboxes: Vec<Vec<(usize, u64)>> = (0..m)
            .map(|from| {
                (0..per)
                    .map(|k| (0usize, (from * per + k) as u64))
                    .collect()
            })
            .collect();
        let (inboxes, ..) = shuffle_parallel(m, outboxes);
        let expect: Vec<u64> = (0..(m * per) as u64).collect();
        assert_eq!(inboxes[0], expect);
        assert!(inboxes[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn parallel_path_still_checks_destinations() {
        let mut boxes = big_outboxes(3, 2048);
        boxes[1][17].0 = 99;
        let _ = route(&cfg(3, 1 << 30), 0, boxes);
    }
}
