//! Translation of MPC executions to the congested clique model.
//!
//! The paper (Section 1.3) notes that by the simulation equivalence of
//! Behnezhad–Derakhshan–Hajiaghayi [BDH18, Theorem 3.2], near-linear-memory
//! MPC ("semi-MapReduce") and congested clique can simulate each other with
//! constant overhead, so the `O(log log d)` MWVC algorithm transfers to
//! congested clique.
//!
//! The mechanical content of that simulation: congested clique has one node
//! per graph vertex, and per round every node may exchange one `O(log n)`-bit
//! message with every other node — i.e. per-node bandwidth `n-1` words per
//! round. Using Lenzen's routing protocol, any communication pattern in
//! which every node sends and receives at most `n` messages is deliverable
//! in `O(1)` rounds; an MPC round whose heaviest machine moves `L` words
//! therefore costs `O(ceil(L / n))` congested clique rounds.

use crate::accounting::ExecutionTrace;
use serde::{Deserialize, Serialize};

/// Congested-clique cost estimate of an executed MPC trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CliqueCost {
    /// Rounds under the unit-overhead accounting (`ceil(L/n)` per MPC
    /// round, minimum 1): the shape the equivalence theorem guarantees up
    /// to constants.
    pub rounds: usize,
    /// The heaviest single-round per-node load, in multiples of the
    /// per-round clique bandwidth `n`.
    pub max_load_factor: usize,
}

/// Translates an MPC trace into congested-clique rounds for an `n`-node
/// clique.
pub fn simulate_on_clique(trace: &ExecutionTrace, n: usize) -> CliqueCost {
    assert!(n >= 1);
    let mut rounds = 0usize;
    let mut max_load_factor = 0usize;
    for r in &trace.rounds {
        let heaviest = r.max_sent.max(r.max_received);
        let load = heaviest.div_ceil(n).max(1);
        rounds += load;
        max_load_factor = max_load_factor.max(load);
    }
    CliqueCost {
        rounds,
        max_load_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::RoundStats;

    fn trace_with_loads(loads: &[usize]) -> ExecutionTrace {
        ExecutionTrace {
            rounds: loads
                .iter()
                .map(|&l| RoundStats {
                    label: "r".into(),
                    max_sent: l,
                    max_received: l / 2,
                    max_resident: l,
                    total_traffic: l,
                    spill_words: 0,
                })
                .collect(),
            violations: vec![],
            critical_path: Default::default(),
            events: vec![],
            faults: Default::default(),
        }
    }

    #[test]
    fn light_rounds_cost_one_each() {
        let t = trace_with_loads(&[10, 20, 30]);
        let c = simulate_on_clique(&t, 100);
        assert_eq!(c.rounds, 3);
        assert_eq!(c.max_load_factor, 1);
    }

    #[test]
    fn heavy_round_costs_ceil_load_over_n() {
        let t = trace_with_loads(&[250]);
        let c = simulate_on_clique(&t, 100);
        assert_eq!(c.rounds, 3);
        assert_eq!(c.max_load_factor, 3);
    }

    #[test]
    fn receive_side_counts_too() {
        let t = ExecutionTrace {
            rounds: vec![RoundStats {
                label: "r".into(),
                max_sent: 1,
                max_received: 500,
                max_resident: 0,
                total_traffic: 500,
                spill_words: 0,
            }],
            violations: vec![],
            critical_path: Default::default(),
            events: vec![],
            faults: Default::default(),
        };
        assert_eq!(simulate_on_clique(&t, 100).rounds, 5);
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let c = simulate_on_clique(&ExecutionTrace::default(), 10);
        assert_eq!(c.rounds, 0);
    }

    #[test]
    fn near_linear_mpc_is_constant_overhead() {
        // An S = 2n near-linear round translates to <= 2 clique rounds.
        let n = 1000;
        let t = trace_with_loads(&[2 * n]);
        let c = simulate_on_clique(&t, n);
        assert_eq!(c.rounds, 2);
    }
}
