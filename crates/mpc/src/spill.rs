//! Per-machine spill files: the escape hatch that makes the resident cap
//! `S` a real constraint instead of an accounting fiction.
//!
//! Under [`MemoryBudget::Enforced`](crate::MemoryBudget), a machine whose
//! working set would exceed `S` words must move the excess here — a
//! word-oriented temporary file owned by the cluster and lent to the
//! machine each round alongside its outbox. The accounting layer drains
//! the per-round spilled word count into
//! [`RoundStats::spill_words`](crate::RoundStats), so spill traffic is a
//! first-class, gated model cost rather than an invisible host detail.
//!
//! A `SpillFile` is deliberately dumb: an append-only word log with
//! rewind-and-replay reads. Executors layer their own framing on top
//! (the out-of-core executor spills its adjacency shard, a plain slice
//! of packed half-edge words).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Reinterprets a word slice as bytes for bulk file I/O.
fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding, every byte pattern is valid, and the
    // length is scaled by the element size; the byte slice borrows the
    // word slice.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Reinterprets a mutable word slice as bytes for bulk file I/O.
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as in `words_as_bytes`; any bytes read into the buffer form
    // valid u64 values. Spill files are same-process temporaries, so
    // native byte order roundtrips exactly.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
}

/// An append-only, rewindable word log backed by a lazily created
/// temporary file (deleted on drop). All sizes are in 64-bit words, the
/// simulator's unit of account.
#[derive(Debug, Default)]
pub struct SpillFile {
    /// Lazily created on first write: machines that never exceed their
    /// budget never touch the filesystem.
    file: Option<File>,
    path: Option<PathBuf>,
    /// Total words ever spilled (monotone; survives `clear`).
    spilled_words: u64,
    /// Words spilled since the last `take_round_words` drain.
    round_words: u64,
    /// Words currently stored (reset by `clear`).
    stored_words: u64,
    /// Read position in words, advanced by `read_words`.
    read_cursor: u64,
    /// Host seconds spent in spill I/O since the last
    /// `take_round_secs` drain. Informational only (host-dependent);
    /// feeds the cluster's per-round host-phase split, never the trace.
    round_secs: f64,
}

impl SpillFile {
    /// A new, empty spill file; no filesystem activity until the first
    /// [`write_words`](Self::write_words).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends words to the log, creating the backing file on first use.
    pub fn write_words(&mut self, words: &[u64]) {
        if words.is_empty() {
            return;
        }
        let io_mark = std::time::Instant::now();
        tracing::event!(tracing::Level::Trace, "spill_write", words = words.len());
        if self.file.is_none() {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let uniq = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("mpc-spill-{}-{uniq}.words", std::process::id()));
            let file = File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .expect("create spill file");
            self.file = Some(file);
            self.path = Some(path);
        }
        let f = self.file.as_mut().expect("spill file just created");
        f.seek(SeekFrom::Start(self.stored_words * 8))
            .expect("seek spill file");
        f.write_all(words_as_bytes(words))
            .expect("write spill file");
        self.stored_words += words.len() as u64;
        self.spilled_words += words.len() as u64;
        self.round_words += words.len() as u64;
        self.round_secs += io_mark.elapsed().as_secs_f64();
    }

    /// Rewinds the read cursor to the start of the stored words.
    pub fn rewind(&mut self) {
        self.read_cursor = 0;
    }

    /// Reads up to `buf.len()` words from the current read position,
    /// returning how many were filled (0 at end of log).
    pub fn read_words(&mut self, buf: &mut [u64]) -> usize {
        let Some(f) = self.file.as_mut() else {
            return 0;
        };
        let left = self.stored_words.saturating_sub(self.read_cursor) as usize;
        let take = left.min(buf.len());
        if take == 0 {
            return 0;
        }
        let io_mark = std::time::Instant::now();
        // Seek explicitly: the OS cursor may sit at the append position
        // after an interleaved write.
        f.seek(SeekFrom::Start(self.read_cursor * 8))
            .expect("seek spill file");
        f.read_exact(words_as_bytes_mut(&mut buf[..take]))
            .expect("read spill file");
        self.read_cursor += take as u64;
        self.round_secs += io_mark.elapsed().as_secs_f64();
        take
    }

    /// Forgets the stored words (the backing file is kept for reuse).
    /// Cumulative spill accounting is unaffected.
    pub fn clear(&mut self) {
        self.stored_words = 0;
        self.read_cursor = 0;
    }

    /// Words currently stored in the log.
    pub fn stored_words(&self) -> u64 {
        self.stored_words
    }

    /// Total words spilled over the file's lifetime.
    pub fn spilled_words(&self) -> u64 {
        self.spilled_words
    }

    /// Drains the words-spilled-since-last-call counter — the accounting
    /// layer calls this once per round to populate
    /// [`RoundStats::spill_words`](crate::RoundStats).
    pub fn take_round_words(&mut self) -> u64 {
        std::mem::take(&mut self.round_words)
    }

    /// Drains the host seconds spent in spill I/O since the last call —
    /// the accounting layer folds this into the round's host-phase
    /// split. Informational only, never part of the deterministic trace.
    pub fn take_round_secs(&mut self) -> f64 {
        std::mem::take(&mut self.round_secs)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accounting() {
        let mut s = SpillFile::new();
        assert_eq!(s.read_words(&mut [0; 4]), 0);
        s.write_words(&[1, 2, 3]);
        s.write_words(&[4, 5]);
        assert_eq!(s.stored_words(), 5);
        assert_eq!(s.spilled_words(), 5);
        assert_eq!(s.take_round_words(), 5);
        assert_eq!(s.take_round_words(), 0);
        s.rewind();
        let mut buf = [0u64; 3];
        assert_eq!(s.read_words(&mut buf), 3);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(s.read_words(&mut buf), 2);
        assert_eq!(&buf[..2], &[4, 5]);
        assert_eq!(s.read_words(&mut buf), 0);
    }

    #[test]
    fn clear_keeps_cumulative_totals() {
        let mut s = SpillFile::new();
        s.write_words(&[7; 10]);
        s.clear();
        assert_eq!(s.stored_words(), 0);
        assert_eq!(s.spilled_words(), 10);
        s.write_words(&[8, 9]);
        s.rewind();
        let mut buf = [0u64; 8];
        assert_eq!(s.read_words(&mut buf), 2);
        assert_eq!(&buf[..2], &[8, 9]);
        assert_eq!(s.spilled_words(), 12);
    }

    #[test]
    fn empty_write_creates_no_file() {
        let mut s = SpillFile::new();
        s.write_words(&[]);
        assert!(s.path.is_none());
        assert_eq!(s.spilled_words(), 0);
    }

    #[test]
    fn backing_file_removed_on_drop() {
        let path = {
            let mut s = SpillFile::new();
            s.write_words(&[1]);
            s.path.clone().unwrap()
        };
        assert!(!path.exists(), "spill file {path:?} leaked");
    }
}
