//! Per-machine spill files: the escape hatch that makes the resident cap
//! `S` a real constraint instead of an accounting fiction.
//!
//! Under [`MemoryBudget::Enforced`](crate::MemoryBudget), a machine whose
//! working set would exceed `S` words must move the excess here — a
//! word-oriented temporary file owned by the cluster and lent to the
//! machine each round alongside its outbox. The accounting layer drains
//! the per-round spilled word count into
//! [`RoundStats::spill_words`](crate::RoundStats), so spill traffic is a
//! first-class, gated model cost rather than an invisible host detail.
//!
//! A `SpillFile` is deliberately dumb: an append-only word log with
//! rewind-and-replay reads. Executors layer their own framing on top
//! (the out-of-core executor spills its adjacency shard, a plain slice
//! of packed half-edge words).
//!
//! # Failure model
//!
//! Spill I/O is recovery-critical, so nothing here unwraps an I/O
//! result. Every operation returns `io::Result`, and a failure also
//! *latches* into the file: once latched, further operations refuse with
//! the same error and the cluster surfaces it at the end of the round as
//! a typed [`ClusterError::SpillIo`](crate::ClusterError) (round bodies
//! cannot propagate `Result`s themselves). When a
//! [`FaultPlan`] with a nonzero `spill_io_rate` is
//! armed, each operation additionally draws injected transient failures
//! and retries them under a bounded, attempt-count backoff — spins, not
//! sleeps, so no wall-clock enters the model domain.

use crate::faults::{chaos_mutation, FaultPlan};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Reinterprets a word slice as bytes for bulk file I/O.
fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding, every byte pattern is valid, and the
    // length is scaled by the element size; the byte slice borrows the
    // word slice.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Reinterprets a mutable word slice as bytes for bulk file I/O.
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as in `words_as_bytes`; any bytes read into the buffer form
    // valid u64 values. Spill files are same-process temporaries, so
    // native byte order roundtrips exactly.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
}

/// Injected-fault state, armed once per cluster when the configured
/// `spill_io_rate` is nonzero.
#[derive(Debug, Clone, Copy)]
struct ArmedFaults {
    plan: FaultPlan,
    machine: usize,
    max_retries: u32,
}

/// An append-only, rewindable word log backed by a lazily created
/// temporary file (deleted on drop). All sizes are in 64-bit words, the
/// simulator's unit of account.
#[derive(Debug, Default)]
pub struct SpillFile {
    /// Lazily created on first write: machines that never exceed their
    /// budget never touch the filesystem.
    file: Option<File>,
    path: Option<PathBuf>,
    /// Total words ever spilled (monotone; survives `clear`).
    spilled_words: u64,
    /// Words spilled since the last `take_round_words` drain.
    round_words: u64,
    /// Words currently stored (reset by `clear`).
    stored_words: u64,
    /// Read position in words, advanced by `read_words`.
    read_cursor: u64,
    /// Host seconds spent in spill I/O since the last
    /// `take_round_secs` drain. Informational only (host-dependent);
    /// feeds the cluster's per-round host-phase split, never the trace.
    round_secs: f64,
    /// Injected-fault plan, if armed.
    faults: Option<ArmedFaults>,
    /// Monotone per-file operation counter: the deterministic coordinate
    /// of injected spill faults.
    op_counter: u64,
    /// Failed-and-retried attempts since the last `take_round_retries`
    /// drain (feeds the `RetryCount` event).
    round_retries: u64,
    /// First unrecovered failure: `(attempts, message)`. Latched until
    /// the accounting layer drains it via `take_error`.
    pending_error: Option<(u32, String)>,
}

impl SpillFile {
    /// A new, empty spill file; no filesystem activity until the first
    /// [`write_words`](Self::write_words).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms deterministic fault injection for this file as `machine`'s
    /// spill log. Called once per cluster construction; a plan with a
    /// zero `spill_io_rate` never fires, so arming is harmless.
    pub(crate) fn arm_faults(&mut self, plan: FaultPlan, machine: usize) {
        self.faults = Some(ArmedFaults {
            plan,
            machine,
            max_retries: plan.config().max_retries,
        });
    }

    /// Latches `err` (first failure wins) and returns it.
    fn latch(&mut self, attempts: u32, err: io::Error) -> io::Error {
        if self.pending_error.is_none() {
            self.pending_error = Some((attempts, err.to_string()));
        }
        err
    }

    /// The already-latched error, if any, as a fresh `io::Error`.
    fn latched(&self) -> Option<io::Error> {
        self.pending_error
            .as_ref()
            .map(|(_, msg)| io::Error::other(msg.clone()))
    }

    /// The injected-fault gate, run once per spill operation: draws the
    /// deterministic per-attempt coins and retries failed attempts under
    /// an attempt-count backoff (bounded spins — the model domain sees no
    /// wall-clock). Exhausting `max_retries` latches the error. The
    /// `skip-retry` chaos mutation gives up on the first failed attempt,
    /// which the mutation gate must detect.
    fn admit_op(&mut self) -> io::Result<()> {
        let Some(armed) = self.faults else {
            return Ok(());
        };
        let op = self.op_counter;
        self.op_counter += 1;
        let mut attempt: u32 = 0;
        loop {
            if !armed.plan.spill_attempt_fires(armed.machine, op, attempt) {
                return Ok(());
            }
            if chaos_mutation("skip-retry") || attempt >= armed.max_retries {
                return Err(self.latch(
                    attempt + 1,
                    io::Error::other(format!(
                        "injected spill I/O fault persisted through {} attempt(s) (op {op})",
                        attempt + 1
                    )),
                ));
            }
            // Attempt-count backoff: deterministic spin growth, no sleep.
            for _ in 0..(64u32 << attempt.min(8)) {
                std::hint::spin_loop();
            }
            self.round_retries += 1;
            attempt += 1;
        }
    }

    /// Appends words to the log, creating the backing file on first use.
    /// A failure (injected past the retry budget, or a real I/O error)
    /// latches into the file and surfaces as a typed cluster error at
    /// the end of the round.
    pub fn write_words(&mut self, words: &[u64]) -> io::Result<()> {
        if words.is_empty() {
            return Ok(());
        }
        if let Some(e) = self.latched() {
            return Err(e);
        }
        let io_mark = std::time::Instant::now();
        tracing::event!(tracing::Level::Trace, "spill_write", words = words.len());
        self.admit_op()?;
        if self.file.is_none() {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let uniq = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("mpc-spill-{}-{uniq}.words", std::process::id()));
            let file = match File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
            {
                Ok(f) => f,
                Err(e) => return Err(self.latch(1, e)),
            };
            self.file = Some(file);
            self.path = Some(path);
        }
        let pos = self.stored_words * 8;
        let io = self.file.as_mut().map_or_else(
            // Unreachable (the file was just ensured), but recovery-
            // critical code does not unwrap: treat it as an I/O failure.
            || Err(io::Error::other("spill file missing after creation")),
            |f| {
                f.seek(SeekFrom::Start(pos))?;
                f.write_all(words_as_bytes(words))
            },
        );
        if let Err(e) = io {
            return Err(self.latch(1, e));
        }
        self.stored_words += words.len() as u64;
        self.spilled_words += words.len() as u64;
        self.round_words += words.len() as u64;
        self.round_secs += io_mark.elapsed().as_secs_f64();
        Ok(())
    }

    /// Rewinds the read cursor to the start of the stored words.
    pub fn rewind(&mut self) {
        self.read_cursor = 0;
    }

    /// Reads up to `buf.len()` words from the current read position,
    /// returning how many were filled (0 at end of log). Failures latch
    /// exactly like [`write_words`](Self::write_words).
    pub fn read_words(&mut self, buf: &mut [u64]) -> io::Result<usize> {
        if let Some(e) = self.latched() {
            return Err(e);
        }
        if self.file.is_none() {
            return Ok(0);
        }
        let left = self.stored_words.saturating_sub(self.read_cursor) as usize;
        let take = left.min(buf.len());
        if take == 0 {
            return Ok(0);
        }
        let io_mark = std::time::Instant::now();
        self.admit_op()?;
        let pos = self.read_cursor * 8;
        let io = self.file.as_mut().map_or_else(
            || Err(io::Error::other("spill file missing during read")),
            |f| {
                // Seek explicitly: the OS cursor may sit at the append
                // position after an interleaved write.
                f.seek(SeekFrom::Start(pos))?;
                f.read_exact(words_as_bytes_mut(&mut buf[..take]))
            },
        );
        if let Err(e) = io {
            return Err(self.latch(1, e));
        }
        self.read_cursor += take as u64;
        self.round_secs += io_mark.elapsed().as_secs_f64();
        Ok(take)
    }

    /// Forgets the stored words (the backing file is kept for reuse).
    /// Cumulative spill accounting is unaffected.
    pub fn clear(&mut self) {
        self.stored_words = 0;
        self.read_cursor = 0;
    }

    /// Words currently stored in the log.
    pub fn stored_words(&self) -> u64 {
        self.stored_words
    }

    /// Total words spilled over the file's lifetime.
    pub fn spilled_words(&self) -> u64 {
        self.spilled_words
    }

    /// Drains the words-spilled-since-last-call counter — the accounting
    /// layer calls this once per round to populate
    /// [`RoundStats::spill_words`](crate::RoundStats).
    pub fn take_round_words(&mut self) -> u64 {
        std::mem::take(&mut self.round_words)
    }

    /// Drains the host seconds spent in spill I/O since the last call —
    /// the accounting layer folds this into the round's host-phase
    /// split. Informational only, never part of the deterministic trace.
    pub fn take_round_secs(&mut self) -> f64 {
        std::mem::take(&mut self.round_secs)
    }

    /// Drains the failed-and-retried attempt count since the last call —
    /// the accounting layer records it as the round's `RetryCount`
    /// event. Deterministic (injected retries are plan-driven).
    pub fn take_round_retries(&mut self) -> u64 {
        std::mem::take(&mut self.round_retries)
    }

    /// Drains the latched unrecovered failure, if any, as
    /// `(attempts, message)` — the cluster turns it into a typed
    /// [`ClusterError::SpillIo`](crate::ClusterError).
    pub fn take_error(&mut self) -> Option<(u32, String)> {
        self.pending_error.take()
    }

    /// Whether an unrecovered failure is latched.
    pub fn has_error(&self) -> bool {
        self.pending_error.is_some()
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;

    #[test]
    fn roundtrip_and_accounting() {
        let mut s = SpillFile::new();
        assert_eq!(s.read_words(&mut [0; 4]).unwrap(), 0);
        s.write_words(&[1, 2, 3]).unwrap();
        s.write_words(&[4, 5]).unwrap();
        assert_eq!(s.stored_words(), 5);
        assert_eq!(s.spilled_words(), 5);
        assert_eq!(s.take_round_words(), 5);
        assert_eq!(s.take_round_words(), 0);
        s.rewind();
        let mut buf = [0u64; 3];
        assert_eq!(s.read_words(&mut buf).unwrap(), 3);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(s.read_words(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[4, 5]);
        assert_eq!(s.read_words(&mut buf).unwrap(), 0);
    }

    #[test]
    fn clear_keeps_cumulative_totals() {
        let mut s = SpillFile::new();
        s.write_words(&[7; 10]).unwrap();
        s.clear();
        assert_eq!(s.stored_words(), 0);
        assert_eq!(s.spilled_words(), 10);
        s.write_words(&[8, 9]).unwrap();
        s.rewind();
        let mut buf = [0u64; 8];
        assert_eq!(s.read_words(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[8, 9]);
        assert_eq!(s.spilled_words(), 12);
    }

    #[test]
    fn empty_write_creates_no_file() {
        let mut s = SpillFile::new();
        s.write_words(&[]).unwrap();
        assert!(s.path.is_none());
        assert_eq!(s.spilled_words(), 0);
    }

    #[test]
    fn backing_file_removed_on_drop() {
        let path = {
            let mut s = SpillFile::new();
            s.write_words(&[1]).unwrap();
            s.path.clone().unwrap()
        };
        assert!(!path.exists(), "spill file {path:?} leaked");
    }

    fn faulty(rate: f64, max_retries: u32, seed: u64) -> SpillFile {
        let mut s = SpillFile::new();
        s.arm_faults(
            FaultPlan::new(FaultConfig {
                seed,
                spill_io_rate: rate,
                max_retries,
                ..FaultConfig::none()
            }),
            0,
        );
        s
    }

    #[test]
    fn transient_faults_retry_deterministically_to_success() {
        let run = || {
            let mut s = faulty(0.5, 16, 11);
            for i in 0..32u64 {
                s.write_words(&[i]).unwrap();
            }
            s.rewind();
            let mut buf = [0u64; 32];
            assert_eq!(s.read_words(&mut buf).unwrap(), 32);
            assert_eq!(buf[31], 31);
            (s.take_round_retries(), buf)
        };
        let (r1, b1) = run();
        let (r2, b2) = run();
        assert!(r1 > 0, "rate 0.5 over 33 ops must retry at least once");
        assert_eq!(r1, r2, "retry schedule must be deterministic");
        assert_eq!(b1, b2);
        assert!(!faulty(0.5, 16, 11).has_error());
    }

    #[test]
    fn persistent_fault_latches_a_typed_error() {
        let mut s = faulty(1.0, 3, 5);
        let err = s.write_words(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(s.has_error());
        // The latch sticks: later operations refuse with the same error.
        assert!(s.write_words(&[4]).is_err());
        assert!(s.read_words(&mut [0; 2]).is_err());
        let (attempts, msg) = s.take_error().unwrap();
        assert_eq!(attempts, 4, "initial attempt plus max_retries");
        assert!(msg.contains("injected"));
        assert!(!s.has_error());
        // Nothing was written through the failure.
        assert_eq!(s.stored_words(), 0);
    }

    #[test]
    fn unarmed_file_never_injects() {
        let mut s = SpillFile::new();
        for i in 0..64u64 {
            s.write_words(&[i]).unwrap();
        }
        assert_eq!(s.take_round_retries(), 0);
        assert!(!s.has_error());
    }
}
