//! Per-round accounting: the quantities the MPC model charges for.

use crate::events::TraceEvent;
use serde::{Deserialize, Serialize};

/// Which model constraint a violation breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A machine sent more than `S` words in one round.
    SentExceedsMemory,
    /// A machine received more than `S` words in one round.
    ReceivedExceedsMemory,
    /// A machine's resident state (local state + delivered inbox) exceeds `S`.
    ResidentExceedsMemory,
}

/// A recorded breach of the model constraints (audit mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Round index (0-based) in which the breach occurred.
    pub round: usize,
    /// Offending machine.
    pub machine: usize,
    /// Constraint breached.
    pub kind: ViolationKind,
    /// Observed words.
    pub words: usize,
    /// The cap `S`.
    pub cap: usize,
}

/// Statistics of a single executed round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Human-readable label supplied by the algorithm (e.g. `"phase 3: route edges"`).
    pub label: String,
    /// Maximum words sent by any single machine.
    pub max_sent: usize,
    /// Maximum words received by any single machine.
    pub max_received: usize,
    /// Maximum resident words (state + inbox) on any machine, measured
    /// after delivery.
    pub max_resident: usize,
    /// Total words moved across the network this round.
    pub total_traffic: usize,
    /// Words written to per-machine spill files this round (summed over
    /// machines). Nonzero only when an executor runs under
    /// [`MemoryBudget::Enforced`](crate::MemoryBudget) and actually
    /// overflows its budget.
    pub spill_words: u64,
}

/// One machine's simulated schedule entry for one round: when its work
/// for the round could start in the dependency-pipelined DAG, what it
/// costs, and how long it would idle at a barrier. All in the model's
/// compute-cost units (words touched; see [`crate::pipeline`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineRound {
    /// Earliest start in the pipelined DAG: the finish time of this
    /// machine's previous round and of every round-`r-1` machine that
    /// sent to it, whichever is later.
    pub start: u64,
    /// Simulated compute cost of this machine's round (`1 + words
    /// received last round + words sent this round`).
    pub cost: u64,
    /// Idle cost under barrier execution: `round_max - cost`, i.e. how
    /// long this machine waits at the barrier for the round's straggler.
    /// Zero exactly for the straggler itself.
    pub stall_words: u64,
}

/// Deterministic critical-path statistic of an execution, in simulated
/// compute-cost units (words touched; see [`crate::pipeline`] for the
/// cost model). Identical in both scheduler modes and at every host
/// thread count — it measures what dependency-pipelined execution *could*
/// overlap, independently of whether the host actually has the cores to
/// realize it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Makespan of barrier execution: the sum over rounds of the slowest
    /// machine's simulated compute cost.
    pub barrier_makespan: u64,
    /// Makespan of dependency-pipelined execution: the longest path
    /// through the (machine, round) dependency DAG, where a machine's
    /// round-`r` work waits only for its own round-`r-1` work and for the
    /// round-`r-1` work of the machines that sent to it. Never exceeds
    /// `barrier_makespan`.
    pub pipelined_makespan: u64,
    /// Total idle cost barrier execution spends waiting at round barriers:
    /// the sum over rounds and machines of `round_max - cost(machine)`.
    pub barrier_stall: u64,
    /// The full per-round, per-machine breakdown behind the scalars:
    /// `machine_rounds[round][machine]`. This is what names a straggler
    /// (the machine with the smallest total `stall_words`) and what the
    /// Chrome-trace exporter renders as a Gantt chart.
    pub machine_rounds: Vec<Vec<MachineRound>>,
}

impl CriticalPath {
    /// The straggler: the machine that keeps the others waiting the most,
    /// i.e. the one with the *smallest* total `stall_words` over all
    /// rounds (ties broken toward the lower machine id). `None` for an
    /// empty breakdown.
    pub fn straggler(&self) -> Option<(usize, u64)> {
        let machines = self.machine_rounds.first()?.len();
        (0..machines)
            .map(|i| {
                let stall: u64 = self
                    .machine_rounds
                    .iter()
                    .map(|round| round[i].stall_words)
                    .sum();
                (i, stall)
            })
            .min_by_key(|&(i, stall)| (stall, i))
    }
}

/// Totals of the deterministic fault-injection and recovery machinery
/// over one execution (see [`crate::faults`]). All zero on a fault-free
/// run, so pre-fault traces and summaries are unchanged. Deterministic
/// like everything else in the trace: the fault plan is a pure function
/// of its seed, so these totals are bit-identical across hosts, pool
/// widths, and schedulers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected (crashes + dropped/duplicated deliveries +
    /// stragglers; spill I/O faults count through `retries`).
    pub injected: u64,
    /// Words written to per-machine recovery checkpoints. Accounted like
    /// `spill_words` but kept separate so fault-free round stats stay
    /// bit-identical under injection.
    pub checkpoint_words: u64,
    /// Rounds replayed from checkpoints after crash-restarts.
    pub replayed_rounds: u64,
    /// Spill I/O attempts retried under injected transient faults.
    pub retries: u64,
    /// Segments that degraded from the pipelined to the barrier engine
    /// because a crash poisoned a readiness region.
    pub degraded_segments: u64,
}

/// The full execution record of a cluster run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// One entry per executed round, in order.
    pub rounds: Vec<RoundStats>,
    /// Constraint breaches (empty under strict enforcement — it panics).
    pub violations: Vec<Violation>,
    /// Critical-path totals over the executed rounds (see
    /// [`CriticalPath`]).
    pub critical_path: CriticalPath,
    /// Deterministic model-domain instrumentation events, in (round,
    /// machine, kind) order (see [`crate::events`]). Bit-identical across
    /// host pool widths and both round schedulers — the determinism suite
    /// pins it.
    pub events: Vec<TraceEvent>,
    /// Fault-injection and recovery totals (all zero on a fault-free
    /// run).
    pub faults: FaultStats,
}

/// A flat, serializable snapshot of everything the MPC model charges a
/// finished execution for. This is the quantity the benchmark harness
/// pins across PRs: every field is exactly derivable from the trace, and
/// deterministic for a deterministic algorithm — host threading never
/// shows up here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Communication rounds executed.
    pub rounds: usize,
    /// Total words moved across the network over the whole execution.
    pub total_message_words: usize,
    /// Largest per-machine per-round communication (send or receive side).
    pub peak_round_words: usize,
    /// Largest per-machine resident memory observed in any round.
    pub peak_resident_words: usize,
    /// Number of recorded model-constraint breaches (audit mode; zero
    /// under strict enforcement, which panics instead).
    pub violations: usize,
    /// Total words written to per-machine spill files over the whole
    /// execution (see [`RoundStats::spill_words`]).
    pub spill_words: u64,
    /// Words written to recovery checkpoints (zero without fault
    /// injection; see [`FaultStats::checkpoint_words`]).
    pub checkpoint_words: u64,
    /// Rounds replayed from checkpoints after crashes (zero without
    /// fault injection; see [`FaultStats::replayed_rounds`]).
    pub replayed_rounds: u64,
}

impl ExecutionTrace {
    /// Number of communication rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Snapshots the model-cost totals of this trace (see
    /// [`TraceSummary`]).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            rounds: self.num_rounds(),
            total_message_words: self.total_traffic(),
            peak_round_words: self.peak_traffic(),
            peak_resident_words: self.peak_resident(),
            violations: self.violations.len(),
            spill_words: self.total_spill(),
            checkpoint_words: self.faults.checkpoint_words,
            replayed_rounds: self.faults.replayed_rounds,
        }
    }

    /// Largest per-machine resident memory observed in any round.
    pub fn peak_resident(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_resident)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-machine per-round communication (send or receive side).
    pub fn peak_traffic(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_sent.max(r.max_received))
            .max()
            .unwrap_or(0)
    }

    /// Total words moved across the whole execution.
    pub fn total_traffic(&self) -> usize {
        self.rounds.iter().map(|r| r.total_traffic).sum()
    }

    /// Total words spilled to disk across the whole execution.
    pub fn total_spill(&self) -> u64 {
        self.rounds.iter().map(|r| r.spill_words).sum()
    }

    /// Whether the execution stayed within the model constraints.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Appends another trace (e.g. a sub-phase) onto this one, reindexing
    /// the violations' and events' round numbers. Critical-path data
    /// merges rather than keeping one side's: the scalars add up (the
    /// boundary between separately executed traces is a real barrier, so
    /// both makespans and the stall compose by summation), and the
    /// per-machine rows are appended with their pipelined `start` times
    /// shifted past everything this trace already scheduled.
    pub fn absorb(&mut self, other: ExecutionTrace) {
        let offset = self.rounds.len();
        self.rounds.extend(other.rounds);
        self.violations
            .extend(other.violations.into_iter().map(|mut v| {
                v.round += offset;
                v
            }));
        self.events.extend(other.events.into_iter().map(|mut e| {
            e.round += offset as u32;
            e
        }));
        // The barrier at the trace boundary: nothing in `other` could have
        // started before everything here finished.
        let start_shift = self.critical_path.pipelined_makespan;
        self.critical_path.machine_rounds.extend(
            other
                .critical_path
                .machine_rounds
                .into_iter()
                .map(|mut round| {
                    for mr in &mut round {
                        mr.start += start_shift;
                    }
                    round
                }),
        );
        self.critical_path.barrier_makespan += other.critical_path.barrier_makespan;
        self.critical_path.pipelined_makespan += other.critical_path.pipelined_makespan;
        self.critical_path.barrier_stall += other.critical_path.barrier_stall;
        self.faults.injected += other.faults.injected;
        self.faults.checkpoint_words += other.faults.checkpoint_words;
        self.faults.replayed_rounds += other.faults.replayed_rounds;
        self.faults.retries += other.faults.retries;
        self.faults.degraded_segments += other.faults.degraded_segments;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(label: &str, sent: usize, recv: usize, res: usize, total: usize) -> RoundStats {
        RoundStats {
            label: label.to_string(),
            max_sent: sent,
            max_received: recv,
            max_resident: res,
            total_traffic: total,
            spill_words: 0,
        }
    }

    #[test]
    fn trace_summaries() {
        let t = ExecutionTrace {
            rounds: vec![stats("a", 10, 12, 100, 40), stats("b", 5, 30, 80, 60)],
            violations: vec![],
            critical_path: CriticalPath::default(),
            events: vec![],
            faults: FaultStats::default(),
        };
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(t.peak_resident(), 100);
        assert_eq!(t.peak_traffic(), 30);
        assert_eq!(t.total_traffic(), 100);
        assert!(t.is_clean());
        assert_eq!(
            t.summary(),
            TraceSummary {
                rounds: 2,
                total_message_words: 100,
                peak_round_words: 30,
                peak_resident_words: 100,
                violations: 0,
                spill_words: 0,
                checkpoint_words: 0,
                replayed_rounds: 0,
            }
        );
    }

    #[test]
    fn summary_counts_violations() {
        let t = ExecutionTrace {
            rounds: vec![stats("a", 9, 1, 1, 9)],
            violations: vec![Violation {
                round: 0,
                machine: 1,
                kind: ViolationKind::SentExceedsMemory,
                words: 9,
                cap: 5,
            }],
            critical_path: CriticalPath::default(),
            events: vec![],
            faults: FaultStats::default(),
        };
        assert_eq!(t.summary().violations, 1);
        assert_eq!(t.summary().rounds, 1);
    }

    #[test]
    fn spill_words_sum_into_the_summary() {
        let mut r0 = stats("a", 1, 1, 1, 1);
        r0.spill_words = 100;
        let mut r1 = stats("b", 1, 1, 1, 1);
        r1.spill_words = 42;
        let t = ExecutionTrace {
            rounds: vec![r0, r1],
            violations: vec![],
            critical_path: CriticalPath::default(),
            events: vec![],
            faults: FaultStats::default(),
        };
        assert_eq!(t.total_spill(), 142);
        assert_eq!(t.summary().spill_words, 142);
    }

    #[test]
    fn empty_trace() {
        let t = ExecutionTrace::default();
        assert_eq!(t.num_rounds(), 0);
        assert_eq!(t.peak_resident(), 0);
        assert_eq!(t.peak_traffic(), 0);
        assert!(t.is_clean());
    }

    fn mr(start: u64, cost: u64, stall: u64) -> MachineRound {
        MachineRound {
            start,
            cost,
            stall_words: stall,
        }
    }

    #[test]
    fn absorb_reindexes_violations() {
        let mut a = ExecutionTrace {
            rounds: vec![stats("a", 1, 1, 1, 1)],
            violations: vec![],
            critical_path: CriticalPath {
                barrier_makespan: 10,
                pipelined_makespan: 7,
                barrier_stall: 3,
                machine_rounds: vec![vec![mr(0, 7, 0), mr(0, 4, 3)]],
            },
            events: vec![],
            faults: FaultStats::default(),
        };
        let b = ExecutionTrace {
            rounds: vec![stats("b", 2, 2, 2, 2)],
            violations: vec![Violation {
                round: 0,
                machine: 3,
                kind: ViolationKind::SentExceedsMemory,
                words: 9,
                cap: 5,
            }],
            critical_path: CriticalPath {
                barrier_makespan: 4,
                pipelined_makespan: 4,
                barrier_stall: 0,
                machine_rounds: vec![vec![mr(0, 4, 0), mr(0, 4, 0)]],
            },
            events: vec![],
            faults: FaultStats::default(),
        };
        a.absorb(b);
        assert_eq!(a.num_rounds(), 2);
        assert_eq!(a.violations[0].round, 1);
        assert_eq!(a.critical_path.barrier_makespan, 14);
        assert_eq!(a.critical_path.pipelined_makespan, 11);
        assert_eq!(a.critical_path.barrier_stall, 3);
    }

    #[test]
    fn absorb_merges_machine_rounds_and_events() {
        use crate::events::{EventKind, TraceEvent};
        let mut a = ExecutionTrace {
            rounds: vec![stats("a", 1, 1, 1, 1)],
            violations: vec![],
            critical_path: CriticalPath {
                barrier_makespan: 10,
                pipelined_makespan: 7,
                barrier_stall: 3,
                machine_rounds: vec![vec![mr(0, 7, 0), mr(0, 4, 3)]],
            },
            events: vec![TraceEvent {
                round: 0,
                machine: 0,
                kind: EventKind::SentWords,
                value: 5,
            }],
            faults: FaultStats::default(),
        };
        let b = ExecutionTrace {
            rounds: vec![stats("b", 2, 2, 2, 2)],
            violations: vec![],
            critical_path: CriticalPath {
                barrier_makespan: 4,
                pipelined_makespan: 4,
                barrier_stall: 1,
                machine_rounds: vec![vec![mr(0, 4, 0), mr(0, 3, 1)]],
            },
            events: vec![TraceEvent {
                round: 0,
                machine: 1,
                kind: EventKind::SpillWords,
                value: 2,
            }],
            faults: FaultStats::default(),
        };
        a.absorb(b);
        // Both sides' breakdowns survive; the absorbed rows start after
        // everything the first trace could have pipelined (a barrier).
        assert_eq!(
            a.critical_path.machine_rounds,
            vec![
                vec![mr(0, 7, 0), mr(0, 4, 3)],
                vec![mr(7, 4, 0), mr(7, 3, 1)],
            ]
        );
        // Events keep both sides, with absorbed rounds reindexed.
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[1].round, 1);
        assert_eq!(a.events[1].kind, EventKind::SpillWords);
    }

    #[test]
    fn straggler_is_the_machine_others_wait_for() {
        let cp = CriticalPath {
            barrier_makespan: 0,
            pipelined_makespan: 0,
            barrier_stall: 0,
            // Machine 1 stalls the least → it is the round-dominating
            // straggler everyone else waits on.
            machine_rounds: vec![
                vec![mr(0, 2, 5), mr(0, 7, 0), mr(0, 4, 3)],
                vec![mr(0, 6, 0), mr(0, 5, 1), mr(0, 2, 4)],
            ],
        };
        assert_eq!(cp.straggler(), Some((1, 1)));
        assert_eq!(CriticalPath::default().straggler(), None);
    }
}
