//! A small, heap-free metrics registry for the simulator: counters,
//! gauges, and power-of-two histograms, split into two planes:
//!
//! * **Model-domain** ([`ModelMetrics`]) — words routed, spill words,
//!   readiness waits, region sizes. Derived purely from the simulated
//!   cost model, so they are bit-deterministic: identical at every host
//!   pool width and under both round schedulers.
//! * **Host-time** ([`HostMetrics`]) — route vs compute vs spill
//!   wall-clock. Informational only; never gated, never part of
//!   [`ExecutionTrace`](crate::ExecutionTrace) equality.
//!
//! Every instrument is a plain inline value (no interior mutability, no
//! heap), updated by the cluster's bookkeeping step — cheap enough to be
//! always on, and trivially allocation-free for the counting-allocator
//! pins.

/// A monotone event/quantity counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `v` to the counter.
    #[inline]
    pub fn add(&mut self, v: u64) {
        self.0 += v;
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A floating-point gauge (used for accumulated host seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Adds `v` to the gauge.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.0 += v;
    }

    /// Sets the gauge.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Number of histogram buckets: bucket `i < 16` counts values whose
/// bit-length is `i` (i.e. `v == 0` → bucket 0, else `floor(log2 v)+1`),
/// and the last bucket absorbs everything `>= 2^15`.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// A power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Bucket index for a sample.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Deterministic model-domain metrics: pure functions of the simulated
/// execution, identical across schedulers and pool widths.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelMetrics {
    /// Total words moved across the network (all machines, all rounds).
    pub words_routed: Counter,
    /// Total words written to spill files.
    pub spill_words: Counter,
    /// Number of (machine, round) pairs that would idle at a barrier
    /// (`stall > 0`) — the waits the pipelined scheduler overlaps.
    pub readiness_waits: Counter,
    /// Total barrier idle cost, in model units (the sum behind
    /// `CriticalPath::barrier_stall`).
    pub stall_words: Counter,
    /// Distribution of per-machine inbox region sizes (words), one
    /// sample per machine per round.
    pub region_words: Histogram,
}

/// Informational host-time metrics (seconds). Never deterministic,
/// never gated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostMetrics {
    /// Wall-clock spent routing (layout + placement).
    pub route_s: Gauge,
    /// Wall-clock spent in machine compute bodies.
    pub compute_s: Gauge,
    /// Wall-clock spent on spill-file I/O.
    pub spill_s: Gauge,
}

/// One round's host wall-clock, split by phase (seconds). Informational:
/// host- and thread-count-dependent, never part of trace equality. Under
/// the pipelined scheduler the overlapped next-round compute is folded
/// into `route_s` (that is the point of the overlap); only a segment's
/// leading compute sweep shows up in `compute_s`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostPhase {
    /// Wall-clock of the round's (non-overlapped) compute sweep.
    pub compute_s: f64,
    /// Wall-clock of layout + placement (plus overlapped compute in
    /// pipelined mode).
    pub route_s: f64,
    /// Wall-clock of spill-file I/O performed during the round.
    pub spill_s: f64,
}

/// The cluster's metrics registry: one [`ModelMetrics`] plane and one
/// [`HostMetrics`] plane, updated once per round by the bookkeeping
/// step. Obtain it via `Cluster::metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsRegistry {
    /// The deterministic plane.
    pub model: ModelMetrics,
    /// The informational plane.
    pub host: HostMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_accumulate() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.add(0.25);
        g.add(0.5);
        assert!((g.get() - 0.75).abs() < 1e-12);
        g.set(2.0);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1 << 10); // bucket 11
        h.record(1 << 40); // clamped to the last bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 6 + (1 << 10) + (1 << 40));
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b[11], 1);
        assert_eq!(b[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn registry_defaults_to_zero() {
        let r = MetricsRegistry::default();
        assert_eq!(r.model.words_routed.get(), 0);
        assert_eq!(r.model.region_words.count(), 0);
        assert_eq!(r.host.route_s.get(), 0.0);
    }
}
