//! `mpc-sim`: a simulator for the Massively Parallel Computation (MPC)
//! model of Karloff–Suri–Vassilvitskii, as described in Section 1.1 of
//! Ghaffari–Jin–Nilis (SPAA 2020).
//!
//! The model: `M` machines, each with `S` words of memory, `S` polynomially
//! smaller than the input. Computation proceeds in synchronous rounds; in a
//! round every machine runs an arbitrary polynomial-time local computation
//! and then sends messages to any other machines, subject to the single
//! communication constraint of the model — **no machine may send or receive
//! more than `S` words per round**. The costs an MPC algorithm is judged on
//! are the number of rounds and the memory per machine; local computation
//! is free.
//!
//! The simulator makes those costs *observable and enforceable*:
//!
//! * [`MpcConfig`] fixes the machine count and word budget `S` (with
//!   [`MemoryRegime`] helpers for the paper's three regimes),
//! * [`Cluster`] executes rounds: per-machine state, inboxes, and a
//!   round closure run in parallel across host threads (rayon) — the host
//!   parallelism affects only simulator wall-clock, never model costs.
//!   All round buffers (per-machine [`Outbox`] arenas, the CSR
//!   [`FlatInboxes`], router scratch) are owned by the cluster and
//!   recycled, so steady-state rounds allocate nothing,
//! * [`router`] enforces the per-round send/receive caps and the
//!   resident-memory cap, either panicking ([`Enforcement::Strict`]) or
//!   recording [`Violation`]s ([`Enforcement::Audit`]),
//! * [`ExecutionTrace`] records per-round maxima and totals, from which
//!   EXPERIMENTS.md's memory/communication tables are generated,
//! * [`congested_clique`] translates a trace into congested-clique round
//!   counts per the Behnezhad–Derakhshan–Hajiaghayi simulation
//!   equivalence the paper invokes for its Corollary.
//!
//! Everything is deterministic given the seeds supplied through
//! [`rng::stream_rng`].

#![deny(unsafe_op_in_unsafe_fn)]

pub mod accounting;
pub mod checkpoint;
pub mod cluster;
pub mod congested_clique;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod primitives;
pub mod rng;
pub mod router;
pub mod spill;
pub(crate) mod sync;
pub mod words;

pub use accounting::{
    CriticalPath, ExecutionTrace, FaultStats, MachineRound, RoundStats, TraceSummary, Violation,
    ViolationKind,
};
pub use checkpoint::CheckpointStore;
pub use cluster::{Cluster, Inbox, MachineCtx};
pub use events::{EventKind, EventRing, TraceEvent};
pub use faults::{chaos_mutation, ClusterError, FaultConfig, FaultKind, FaultPlan};
pub use metrics::{HostMetrics, HostPhase, MetricsRegistry, ModelMetrics};
pub use model::{Enforcement, MemoryBudget, MemoryRegime, MpcConfig, RoundScheduler};
pub use pipeline::{ReadinessBoard, SegmentRound};
pub use router::{FlatInboxes, Outbox, RouteScratch};
pub use spill::SpillFile;
pub use words::Words;

/// Hash-partition owner of a key: the machine responsible for aggregating
/// values of `key` in shuffle/aggregate rounds. Stable across the
/// workspace so that every participant can compute it locally.
#[inline]
pub fn owner_of_key(key: u64, num_machines: usize) -> usize {
    debug_assert!(num_machines > 0);
    // splitmix64 finalizer: avalanches low-entropy keys (e.g. vertex ids).
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % num_machines as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        for m in [1usize, 2, 7, 64] {
            for k in 0..1000u64 {
                let o = owner_of_key(k, m);
                assert!(o < m);
                assert_eq!(o, owner_of_key(k, m));
            }
        }
    }

    #[test]
    fn owner_spreads_sequential_keys() {
        let m = 16;
        let mut counts = vec![0usize; m];
        for k in 0..16_000u64 {
            counts[owner_of_key(k, m)] += 1;
        }
        let expected = 1000.0;
        for c in counts {
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket count {c} far from {expected}"
            );
        }
    }
}
