//! Dependency-pipelined round execution: the opt-in scheduler that kills
//! the global round barrier.
//!
//! # Why
//!
//! [`Cluster::round`] is a global barrier: every machine's compute must
//! finish, then the whole shuffle runs, then the next round starts — host
//! wall-clock is `rounds × slowest machine` even though the staggered-CSR
//! [`FlatInboxes`] layout already knows, before any
//! message moves, exactly where every machine's next-round input will
//! land. This module cashes that in: the shuffle's *layout* pass
//! (`layout_flat`) runs up front (word totals, cap enforcement, region
//! bounds), per-region delivery is tracked by atomic completion counters
//! (the [`ReadinessBoard`]), and a machine whose round-`r+1` inbox region
//! is fully delivered starts computing round `r+1` — on the same
//! work-stealing pool — while slower machines are still placing their
//! round-`r` sends.
//!
//! # Readiness protocol
//!
//! Per round, region `i`'s counter is armed to `region_lens[i] + 1`:
//! one unit per expected message plus one *sender token*. Each placed run
//! decrements by its length ([`ReadinessBoard::deliver`]); machine `i`
//! finishing the drain of its own outbox releases the token
//! ([`ReadinessBoard::finish_sender`]). Whichever decrement reaches zero
//! — exactly one does — runs machine `i`'s next-round compute inline.
//! The token serves two duties at once: machine `i`'s compute reuses its
//! outbox arena, which placement is still reading until the drain
//! finishes, and it keeps a self-delivery from triggering the compute
//! early. All decrements are acquire-release read-modify-writes, so the
//! final one observes every placed message and the drained outbox
//! (the RMW chain continues the release sequence); the checked build
//! (`RUSTFLAGS="--cfg loom"`, `tests/loom_pipeline.rs`) model-checks
//! exactly this handoff through the `crate::sync` facade.
//!
//! Computes never send — sends happen into the *next* layout — so
//! readiness never cascades and the per-segment scheduler state is one
//! counter per machine.
//!
//! # Segments
//!
//! The pipeline needs to know the next round's closure before the current
//! round's placement starts, so rounds are batched into *segments*
//! ([`SegmentRound`], [`Cluster::run_segment`]): any stretch of rounds
//! with no host-side control flow between them. A segment's last round is
//! placed without overlap (there is nothing to overlap with) and left
//! pending, exactly like a barrier round, so segments and single rounds
//! compose freely. With [`RoundScheduler::Barrier`] the same segments run
//! through [`Cluster::round`] — the pipelined path is opt-in per
//! [`MpcConfig`].
//!
//! Observable behavior is bit-identical in both modes: same inbox
//! contents and order (placement slots come from the same layout), same
//! traces, same violation lists (enforcement runs from the layout's
//! totals *before* any overlapped compute), same panics under strict
//! enforcement.
//!
//! # Critical-path accounting
//!
//! On a single hardware thread the overlap cannot show up in wall-clock,
//! so the win is measured host-independently: every round, each machine
//! is charged a simulated compute cost
//!
//! ```text
//! cost_i(r) = 1 + words received in round r-1 + words sent in round r
//! ```
//!
//! (read your input, write your output, unit base). Barrier makespan sums
//! the per-round maximum; pipelined makespan is the longest path through
//! the (machine, round) dependency DAG, where machine `i`'s round-`r`
//! work depends on its own round-`r-1` work and on the round-`r-1` work
//! of every machine that sent to it. `CpTracker` advances identically
//! under both schedulers and snapshots into
//! [`ExecutionTrace::critical_path`](crate::ExecutionTrace), so the
//! statistic is deterministic, mode-independent, and benchmark-gateable.

use crate::accounting::{CriticalPath, MachineRound};
use crate::cluster::{Cluster, Inbox, MachineCtx};
use crate::model::{MpcConfig, RoundScheduler};
use crate::router::{
    cap_check, layout_flat, place_all, place_sender, FlatInboxes, Outbox, RouteScratch, SendPtr,
};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::words::Words;
use rayon::prelude::*;
use std::time::Instant;

/// Memory ordering of the readiness decrements. Acquire-release is what
/// makes the final decrement observe every placed message and the
/// sender's outbox drain; the `weaken-ready-ordering` seeded mutation
/// (loom builds only) drops it to relaxed, which the model checker must
/// catch as a data race.
#[inline]
fn ready_order() -> Ordering {
    #[cfg(loom)]
    if crate::sync::mutation("weaken-ready-ordering") {
        return Ordering::Relaxed;
    }
    Ordering::AcqRel
}

/// Memory ordering of the crash-poison store: `Release` pairs with the
/// `Acquire` in [`ReadinessBoard::is_poisoned`] so a completing worker
/// that observes the flag also observes everything the recovery engine
/// wrote before poisoning (the crash record it must replay from). The
/// `weaken-poison-ordering` seeded mutation (loom builds only) drops
/// both sides to relaxed, which the model checker must catch as a data
/// race on that handoff.
#[inline]
fn poison_store_order() -> Ordering {
    #[cfg(loom)]
    if crate::sync::mutation("weaken-poison-ordering") {
        return Ordering::Relaxed;
    }
    Ordering::Release
}

/// Load side of the crash-poison handoff; see [`poison_store_order`].
#[inline]
fn poison_load_order() -> Ordering {
    #[cfg(loom)]
    if crate::sync::mutation("weaken-poison-ordering") {
        return Ordering::Relaxed;
    }
    Ordering::Acquire
}

/// Whether the `early-ready` seeded mutation is active (loom builds
/// only): the sender token is never armed and never released, so a region
/// turns ready as soon as its messages land — before its own outbox is
/// drained — which the model checker must catch as a data race on the
/// outbox handoff.
#[inline]
fn early_ready() -> bool {
    #[cfg(loom)]
    if crate::sync::mutation("early-ready") {
        return true;
    }
    false
}

/// Per-region delivery counters: the pipelined scheduler's only shared
/// mutable state. See the module docs for the protocol.
// No derived Debug: the loom atomic shims don't implement it.
pub struct ReadinessBoard {
    /// Undelivered units per region: expected messages plus the sender
    /// token.
    remaining: Vec<AtomicUsize>,
    /// Crash-poison flags (nonzero = poisoned): set by the recovery
    /// engine before a degraded segment runs, so a completed region is
    /// never handed to an inline compute whose machine state is about to
    /// be rolled back. `usize` rather than `bool` because the loom shims
    /// only cover the `AtomicUsize` surface the facade pins.
    poisoned: Vec<AtomicUsize>,
}

impl ReadinessBoard {
    /// A board for `m` regions, unarmed.
    pub fn new(m: usize) -> Self {
        Self {
            remaining: (0..m).map(|_| AtomicUsize::new(0)).collect(),
            poisoned: (0..m).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.remaining.len()
    }

    /// Arms every region for one round: `region_lens[i]` expected
    /// messages plus the sender token. Relaxed stores suffice — the
    /// armed values reach the placing workers through the pool's own
    /// job-publication synchronization.
    pub fn reset(&mut self, region_lens: &[usize]) {
        assert_eq!(region_lens.len(), self.remaining.len(), "board sized for m");
        let token = if early_ready() { 0 } else { 1 };
        for (slot, &len) in self.remaining.iter().zip(region_lens) {
            slot.store(len + token, Ordering::Relaxed);
        }
    }

    /// Records `n` messages placed into `region`; true when this delivery
    /// completed the region (exactly one caller per region observes
    /// true). While the region's sender token is armed, a delivery can
    /// never complete the region — including the sender's own
    /// self-deliveries.
    #[inline]
    pub fn deliver(&self, region: usize, n: usize) -> bool {
        debug_assert!(n > 0, "runs are never empty");
        self.remaining[region].fetch_sub(n, ready_order()) == n
    }

    /// Releases `sender`'s token once its outbox is fully drained; true
    /// when that completed the region (all deliveries were already in).
    #[inline]
    pub fn finish_sender(&self, sender: usize) -> bool {
        if early_ready() {
            return false;
        }
        self.remaining[sender].fetch_sub(1, ready_order()) == 1
    }

    /// Marks `region` crash-poisoned: whichever worker completes the
    /// region must not run its inline compute (the recovery engine will
    /// replay the machine instead). Release pairs with the `Acquire` in
    /// [`Self::is_poisoned`] so the completing worker observes the flag.
    #[inline]
    pub fn poison(&self, region: usize) {
        self.poisoned[region].store(1, poison_store_order());
    }

    /// Whether `region` is crash-poisoned.
    #[inline]
    pub fn is_poisoned(&self, region: usize) -> bool {
        self.poisoned[region].load(poison_load_order()) != 0
    }

    /// Clears every poison flag (end of a degraded segment).
    pub fn clear_poison(&mut self) {
        for slot in &self.poisoned {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

/// Critical-path accounting state (see the module docs for the cost
/// model). Advanced once per round, identically under both schedulers;
/// all quantities are integers derived from the deterministic word
/// totals, so the snapshot is bit-identical across modes, hosts, and
/// thread counts.
#[derive(Debug)]
pub(crate) struct CpTracker {
    barrier_makespan: u64,
    barrier_stall: u64,
    /// Pipelined finish time per machine.
    f: Vec<u64>,
    /// Max finish time over last round's senders to each machine.
    incoming: Vec<u64>,
    /// Words each machine received in the previous round.
    prev_recv: Vec<u64>,
    /// Per-machine cost of the round being advanced (scratch).
    cost: Vec<u64>,
    /// (sender, receiver) pairs of the round being advanced, captured
    /// from the outbox run tables before placement clears them.
    dep_edges: Vec<(u32, u32)>,
    /// Per-machine row of the most recently advanced round (pipelined
    /// start time, cost, barrier stall) — scratch for the bookkeeping
    /// export, recycled every round.
    latest: Vec<MachineRound>,
}

impl CpTracker {
    pub(crate) fn new(m: usize) -> Self {
        Self {
            barrier_makespan: 0,
            barrier_stall: 0,
            f: vec![0; m],
            incoming: vec![0; m],
            prev_recv: vec![0; m],
            cost: vec![0; m],
            dep_edges: Vec::new(),
            latest: (0..m).map(|_| MachineRound::default()).collect(),
        }
    }

    /// Captures this round's sender→receiver edges from the staged
    /// outboxes. Must run before placement empties the run tables.
    /// Repeated runs to one destination are fine — `advance` folds edges
    /// with `max`, which is idempotent.
    pub(crate) fn capture_deps<M>(&mut self, outboxes: &[Outbox<M>]) {
        for (from, outbox) in outboxes.iter().enumerate() {
            for run in outbox.runs() {
                self.dep_edges.push((from as u32, run.to));
            }
        }
    }

    /// Folds one routed round into the makespans, consuming the captured
    /// dependency edges.
    pub(crate) fn advance(&mut self, sent_words: &[usize], received_words: &[usize]) {
        let m = self.f.len();
        let mut round_max = 0u64;
        for ((cost, &prev), &sent) in self.cost.iter_mut().zip(&self.prev_recv).zip(sent_words) {
            let c = 1 + prev + sent as u64;
            *cost = c;
            round_max = round_max.max(c);
        }
        self.barrier_makespan += round_max;
        for i in 0..m {
            let stall = round_max - self.cost[i];
            self.barrier_stall += stall;
            // A machine starts its round-r work once its own round-(r-1)
            // work and all its senders' round-(r-1) work are done.
            let start = self.f[i].max(self.incoming[i]);
            self.f[i] = start + self.cost[i];
            self.latest[i] = MachineRound {
                start,
                cost: self.cost[i],
                stall_words: stall,
            };
        }
        // Next round's wait-for-senders bound, from this round's edges
        // and the *new* finish times.
        for inc in &mut self.incoming {
            *inc = 0;
        }
        for &(from, to) in &self.dep_edges {
            let t = self.f[from as usize];
            let inc = &mut self.incoming[to as usize];
            if t > *inc {
                *inc = t;
            }
        }
        self.dep_edges.clear();
        for (slot, &r) in self.prev_recv.iter_mut().zip(received_words) {
            *slot = r as u64;
        }
    }

    /// Folds the just-advanced round into the trace's critical path:
    /// refreshes the cumulative scalars and appends the per-machine row.
    /// Allocates (the row copy) — called from the bookkeeping step, which
    /// is outside the fabric's zero-allocation pin.
    pub(crate) fn export_into(&self, cp: &mut CriticalPath) {
        cp.barrier_makespan = self.barrier_makespan;
        cp.pipelined_makespan = self.f.iter().copied().max().unwrap_or(0);
        cp.barrier_stall = self.barrier_stall;
        cp.machine_rounds.push(self.latest.to_vec());
    }

    /// The per-machine rows of the most recently advanced round.
    pub(crate) fn latest(&self) -> &[MachineRound] {
        &self.latest
    }
}

/// One round of a segment: a label plus the round closure, boxed so a
/// segment can hold heterogeneous closures. Built by the executors right
/// where they used to call [`Cluster::round`].
pub struct SegmentRound<'seg, S, M> {
    label: &'seg str,
    body: RoundBody<'seg, S, M>,
}

type RoundBody<'seg, S, M> =
    Box<dyn for<'a> Fn(&mut MachineCtx<M>, &mut S, Inbox<'a, M>) + Sync + Send + 'seg>;

impl<'seg, S, M> SegmentRound<'seg, S, M> {
    /// A segment round running `body` under `label` (same contract as
    /// [`Cluster::round`]).
    pub fn new(
        label: &'seg str,
        body: impl for<'a> Fn(&mut MachineCtx<M>, &mut S, Inbox<'a, M>) + Sync + Send + 'seg,
    ) -> Self {
        Self {
            label,
            body: Box::new(body),
        }
    }

    /// The round's trace label.
    pub fn label(&self) -> &str {
        self.label
    }

    /// Borrowed view of the round body, for engines (the recovery
    /// engine's replay path) that run a segment's rounds by reference.
    pub(crate) fn body(&self) -> &crate::cluster::RoundFn<'seg, S, M>
    where
        S: 'seg,
        M: 'seg,
    {
        &self.body
    }
}

impl<S, M> Cluster<S, M>
where
    S: Send + Words,
    M: Send + Sync + Words,
{
    /// Executes a segment of rounds under the configured
    /// [`RoundScheduler`]: plain [`Cluster::round`] calls under
    /// `Barrier`, [`Cluster::run_pipelined`] under `Pipelined`. Traces,
    /// violations, inbox contents, and strict-enforcement panics are
    /// bit-identical either way.
    pub fn run_segment(&mut self, rounds: Vec<SegmentRound<'_, S, M>>) {
        match self.config.scheduler {
            RoundScheduler::Barrier => {
                for r in rounds {
                    self.round(r.label, r.body);
                }
            }
            RoundScheduler::Pipelined => self.run_pipelined(rounds),
        }
    }

    /// Executes a segment with the dependency-pipelined engine regardless
    /// of the configured scheduler. See the module docs for the design;
    /// the shape per round `k` is: layout (totals + region bounds) →
    /// enforcement + trace bookkeeping → placement overlapped with the
    /// round-`k+1` computes of machines whose regions complete early.
    /// The segment's last round is placed without overlap and left
    /// pending for the next round or segment.
    pub fn run_pipelined(&mut self, rounds: Vec<SegmentRound<'_, S, M>>) {
        if rounds.is_empty() {
            return;
        }
        let m = self.config.num_machines;
        let _segment_span = tracing::span!(tracing::Level::Debug, "segment");
        let mut mark = Instant::now();
        // Round 0's compute has nothing upstream in this segment to
        // overlap with: run it as a plain parallel sweep over the pending
        // inboxes.
        self.compute_all(&rounds[0].body);
        // The segment's leading compute sweep is the only compute that is
        // *not* overlapped into a placement stage; it is attributed to the
        // first round's host phase, later rounds fold theirs into route_s.
        let mut lead_compute_s = mark.elapsed().as_secs_f64();
        for k in 0..rounds.len() {
            let round_index = self.trace.rounds.len();
            let _round_span = tracing::span!(tracing::Level::Debug, "round");
            self.scratch.reset_per_machine(m);
            // Layout before anything moves: word totals, region bounds,
            // and the per-(sender, destination) slot table. The pipelined
            // path always uses the flat layout — placement must know its
            // slots up front — so there is no sequential-shuffle cutover
            // here; output is bit-identical regardless.
            let base = layout_flat(m, &self.outboxes, &mut self.inboxes, &mut self.scratch);
            self.scratch
                .record_region_events(self.inboxes.region_lens());
            tracing::event!(
                tracing::Level::Trace,
                "layout",
                round = round_index,
                machines = m,
                messages = self.inboxes.total_messages()
            );
            self.cp.capture_deps(&self.outboxes);
            // Enforcement and trace bookkeeping run from the layout's
            // final totals, strictly before any round-(k+1) compute can
            // start: a strict-mode violation panics at the same point,
            // with the same message, as the barrier engine.
            cap_check(&self.config, round_index, &mut self.scratch);
            self.bookkeep_round(rounds[k].label, round_index);
            if k + 1 == rounds.len() {
                // Last round of the segment: nothing to overlap with.
                // Plain placement; messages stay pending, exactly like a
                // barrier round's output.
                place_all(m, &mut self.outboxes, base, &mut self.scratch);
                self.inboxes.finish_fill();
            } else {
                self.board.reset(self.inboxes.region_lens());
                self.place_and_compute(base, &rounds[k + 1].body);
            }
            let now = Instant::now();
            let wall = now.duration_since(mark).as_secs_f64();
            self.round_wall.push(wall);
            self.finish_host_phase(lead_compute_s, (wall - lead_compute_s).max(0.0));
            lead_compute_s = 0.0;
            mark = now;
        }
    }

    /// The overlapped stage: places every sender's round-`k` messages
    /// into the laid-out regions and runs machine `i`'s round-`k+1`
    /// compute inline the moment the [`ReadinessBoard`] declares region
    /// `i` complete. Returns once every placement *and* every compute has
    /// run (each region reaches zero within some worker's task), so the
    /// caller can lay out round `k+1` immediately after.
    fn place_and_compute(&mut self, base: *mut M, body: &RoundBody<'_, S, M>) {
        let m = self.config.num_machines;
        let buf = SendPtr(base);
        let slots = SendPtr(self.scratch.starts.as_mut_ptr());
        let states = SendPtr(self.states.as_mut_ptr());
        let outboxes = SendPtr(self.outboxes.as_mut_ptr());
        let state_words = SendPtr(self.state_words.as_mut_ptr());
        let spills = SendPtr(self.spills.as_mut_ptr());
        let board = &self.board;
        let region_starts = self.inboxes.region_starts();
        let region_lens = self.inboxes.region_lens();

        // Runs machine `machine`'s next-round compute. Called exactly
        // once per machine (the board's completion is exactly-once), from
        // whichever worker's decrement completed the region.
        let run_compute = |machine: usize| {
            let (start, len) = (region_starts[machine], region_lens[machine]);
            // SAFETY: the board declared region `machine` complete, so
            // every message of the region has been placed and the final
            // acquire-release decrement ordered those writes before this
            // read; the region is read by exactly one compute (drained
            // inboxes stay non-live, so nothing else touches it).
            let inbox = unsafe { Inbox::from_raw(buf.at(start), len) };
            // SAFETY: the sender token is part of the region count, so
            // the outbox's placement drain happened-before; from here
            // until the compute returns, this closure is the slot's only
            // accessor.
            let outbox = unsafe { &mut *outboxes.at(machine) };
            // SAFETY: spill slots are per-machine and only touched by
            // that machine's exactly-once compute; the accounting drain
            // runs on the caller's thread strictly after this parallel
            // stage returns.
            let spill = unsafe { &mut *spills.at(machine) };
            let mut ctx =
                MachineCtx::new(machine, m, std::mem::take(outbox), std::mem::take(spill));
            // SAFETY: state and state-word slots are per-machine and this
            // is machine `machine`'s exactly-once compute.
            let state = unsafe { &mut *states.at(machine) };
            body(&mut ctx, state, inbox);
            // SAFETY: as above — exclusive per-machine slot.
            unsafe { *state_words.at(machine) = state.words() };
            let (ob, sp) = ctx.into_parts();
            *outbox = ob;
            *spill = sp;
        };

        (0..m).into_par_iter().for_each(|from| {
            {
                // SAFETY: until this sender releases its token below, the
                // board cannot hand outbox `from` to a compute, so the
                // shared borrow is exclusive of writers.
                let outbox = unsafe { &*outboxes.at(from) };
                let on_run = |to: usize, len: usize| {
                    if board.deliver(to, len) && !board.is_poisoned(to) {
                        run_compute(to);
                    }
                };
                // SAFETY: `buf`/`slots` come from this round's
                // `layout_flat` over these outboxes; each sender is
                // placed exactly once and senders' slot ranges are
                // disjoint.
                unsafe { place_sender(m, from, outbox, &buf, &slots, on_run) };
            }
            // SAFETY: every message of outbox `from` was moved out by
            // `place_sender` above; the token is still armed, so no
            // compute aliases the arena during the drain.
            unsafe { (*outboxes.at(from)).forget_moved() };
            if board.finish_sender(from) && !board.is_poisoned(from) {
                run_compute(from);
            }
        });
    }
}

/// One pipelined routing step over bare fabric buffers, sequential — the
/// allocation-discipline harness for the pipelined path
/// (`tests/pipeline_properties.rs` drives it under a counting allocator,
/// the way `tests/fabric_properties.rs` drives `route`). Lays out,
/// enforces caps, arms `board`, then places sender by sender, handing
/// each completed region to `on_ready(region, inbox)` exactly once —
/// the board protocol and region handoff of the parallel engine, minus
/// the pool.
#[doc(hidden)]
pub fn pipelined_route_step<M, F>(
    config: &MpcConfig,
    round: usize,
    outboxes: &mut [Outbox<M>],
    inboxes: &mut FlatInboxes<M>,
    scratch: &mut RouteScratch,
    board: &mut ReadinessBoard,
    mut on_ready: F,
) where
    M: Words + Send + Sync,
    F: FnMut(usize, Inbox<'_, M>),
{
    let m = config.num_machines;
    assert_eq!(outboxes.len(), m, "one outbox per machine");
    assert_eq!(inboxes.num_machines(), m, "inboxes sized for the cluster");
    scratch.reset_per_machine(m);
    let base = layout_flat(m, outboxes, inboxes, scratch);
    scratch.record_region_events(inboxes.region_lens());
    cap_check(config, round, scratch);
    board.reset(inboxes.region_lens());
    let board = &*board;
    let buf = SendPtr(base);
    let slots = SendPtr(scratch.starts.as_mut_ptr());
    let region_starts = inboxes.region_starts();
    let region_lens = inboxes.region_lens();
    for from in 0..m {
        {
            let outbox = &outboxes[from];
            let on_run = |to: usize, len: usize| {
                if board.deliver(to, len) {
                    let (start, len) = (region_starts[to], region_lens[to]);
                    // SAFETY: the board declared region `to` complete:
                    // all its messages are placed, and it is handed out
                    // exactly once (regions stay non-live, so nothing
                    // else drains them).
                    let inbox = unsafe { Inbox::from_raw(buf.at(start), len) };
                    on_ready(to, inbox);
                }
            };
            // SAFETY: `buf`/`slots` come from the `layout_flat` above
            // over these outboxes; each sender is placed exactly once.
            unsafe { place_sender(m, from, outbox, &buf, &slots, on_run) };
        }
        // SAFETY: every message of outbox `from` was moved out above.
        unsafe { outboxes[from].forget_moved() };
        if board.finish_sender(from) {
            // SAFETY: as in the delivery hook — complete, exactly-once.
            let inbox = unsafe { Inbox::from_raw(buf.at(region_starts[from]), region_lens[from]) };
            on_ready(from, inbox);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::Words;

    // -- ReadinessBoard protocol ------------------------------------------

    #[test]
    fn board_region_completes_exactly_once() {
        let mut board = ReadinessBoard::new(3);
        board.reset(&[2, 0, 1]);
        // Region 0: two messages then the token.
        assert!(!board.deliver(0, 1));
        assert!(!board.deliver(0, 1));
        assert!(board.finish_sender(0));
        // Region 1: empty — the token alone completes it.
        assert!(board.finish_sender(1));
        // Region 2: token first, then the delivery completes.
        assert!(!board.finish_sender(2));
        assert!(board.deliver(2, 1));
    }

    #[test]
    fn board_self_delivery_cannot_complete_before_token() {
        let mut board = ReadinessBoard::new(1);
        board.reset(&[3]);
        // A sender delivering all its own messages still holds its token.
        assert!(!board.deliver(0, 3));
        assert!(board.finish_sender(0));
    }

    #[test]
    fn board_poison_is_per_region_and_clearable() {
        let mut board = ReadinessBoard::new(3);
        assert!(!board.is_poisoned(0));
        board.poison(1);
        assert!(!board.is_poisoned(0));
        assert!(board.is_poisoned(1));
        assert!(!board.is_poisoned(2));
        // Poison does not interfere with the completion protocol itself.
        board.reset(&[1, 1, 0]);
        assert!(!board.deliver(1, 1));
        assert!(board.finish_sender(1));
        board.clear_poison();
        assert!(!board.is_poisoned(1));
    }

    #[test]
    fn board_rearms_across_rounds() {
        let mut board = ReadinessBoard::new(2);
        for round in 0..3 {
            board.reset(&[1, 0]);
            assert!(!board.deliver(0, 1), "round {round}");
            assert!(board.finish_sender(0), "round {round}");
            assert!(board.finish_sender(1), "round {round}");
        }
    }

    // -- CpTracker cost model ---------------------------------------------

    /// The tracker's cumulative scalars, via the same export the cluster
    /// uses (the appended per-machine row is ignored here).
    fn snapshot(cp: &CpTracker) -> CriticalPath {
        let mut out = CriticalPath::default();
        cp.export_into(&mut out);
        out
    }

    #[test]
    fn skewed_rounds_pipeline_below_barrier() {
        // Round A: 0→1 carries 100 words, 3→2 carries 1. Round B: 2→3
        // carries 100. Machine 2's expensive round-B work depends only on
        // the cheap 3→2 edge, so the pipeline overlaps it with machine
        // 1's expensive round-A receive.
        let mut cp = CpTracker::new(4);
        let mut ob: Vec<Outbox<u64>> = (0..4).map(|_| Outbox::new()).collect();
        for _ in 0..100 {
            ob[0].push(1, 7);
        }
        ob[3].push(2, 7);
        cp.capture_deps(&ob);
        cp.advance(&[100, 0, 0, 1], &[0, 100, 1, 0]);
        let mut ob: Vec<Outbox<u64>> = (0..4).map(|_| Outbox::new()).collect();
        for _ in 0..100 {
            ob[2].push(3, 7);
        }
        cp.capture_deps(&ob);
        cp.advance(&[0, 0, 100, 0], &[0, 0, 0, 100]);
        let s = snapshot(&cp);
        assert_eq!(s.barrier_makespan, 203);
        assert_eq!(s.pipelined_makespan, 202);
        assert!(s.pipelined_makespan < s.barrier_makespan);
        assert!(s.barrier_stall > 0);
    }

    #[test]
    fn balanced_rounds_have_equal_makespans_and_no_stall() {
        // Perfectly balanced all-to-all: every machine costs the same
        // every round, so the barrier loses nothing.
        let m = 4;
        let mut cp = CpTracker::new(m);
        for _ in 0..5 {
            let mut ob: Vec<Outbox<u64>> = (0..m).map(|_| Outbox::new()).collect();
            for (from, outbox) in ob.iter_mut().enumerate() {
                for to in 0..m {
                    let _ = from;
                    outbox.push(to, 1);
                }
            }
            cp.capture_deps(&ob);
            cp.advance(&[4; 4], &[4; 4]);
        }
        let s = snapshot(&cp);
        assert_eq!(s.barrier_makespan, s.pipelined_makespan);
        assert_eq!(s.barrier_stall, 0);
    }

    #[test]
    fn pipelined_never_exceeds_barrier() {
        // Pseudo-random round shapes; the DAG bound must stay below the
        // barrier sum.
        let m = 5;
        let mut cp = CpTracker::new(m);
        let mut sent = [0usize; 5];
        let mut recv = [0usize; 5];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..20 {
            sent.fill(0);
            recv.fill(0);
            let mut ob: Vec<Outbox<u64>> = (0..m).map(|_| Outbox::new()).collect();
            for (from, outbox) in ob.iter_mut().enumerate() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let to = (x >> 33) as usize % m;
                let w = (x % 17) as usize;
                for _ in 0..w {
                    outbox.push(to, 7);
                }
                sent[from] += w;
                recv[to] += w;
            }
            cp.capture_deps(&ob);
            cp.advance(&sent, &recv);
            let s = snapshot(&cp);
            assert!(s.pipelined_makespan <= s.barrier_makespan);
        }
    }

    // -- Engine equivalence (full cluster) --------------------------------

    /// Machine state for the equivalence tests: a bag of received values.
    #[derive(Default, Debug, PartialEq)]
    struct Bag(Vec<u64>);

    impl Words for Bag {
        fn words(&self) -> usize {
            self.0.len()
        }
    }

    /// A three-round segment with skewed traffic: accumulate the inbox,
    /// then fan values around a ring with id-dependent burst sizes.
    fn segment_rounds<'a>() -> Vec<SegmentRound<'a, Bag, u64>> {
        let mk = |label, round: u64| {
            SegmentRound::new(
                label,
                move |ctx: &mut MachineCtx<u64>, state: &mut Bag, inbox: Inbox<'_, u64>| {
                    state.0.extend(inbox);
                    let m = ctx.num_machines();
                    let bursts = 1 + (ctx.id + round as usize) % 3;
                    for b in 0..bursts {
                        let dest = (ctx.id + b + 1) % m;
                        ctx.send(dest, (ctx.id as u64) * 1000 + round * 100 + b as u64);
                    }
                },
            )
        };
        vec![mk("seg a", 0), mk("seg b", 1), mk("seg c", 2)]
    }

    fn run_mode(
        scheduler: RoundScheduler,
    ) -> (Vec<Vec<u64>>, crate::ExecutionTrace, Vec<Vec<u64>>) {
        let cfg = MpcConfig::new(5, 10_000).with_scheduler(scheduler);
        let mut c: Cluster<Bag, u64> = Cluster::new(cfg, |_| Bag::default());
        // A plain round before the segment: pipelined segments must
        // compose with barrier rounds on both sides.
        c.round("warm", |ctx, _s, _i| {
            ctx.send((ctx.id + 2) % ctx.num_machines(), ctx.id as u64)
        });
        c.run_segment(segment_rounds());
        let pending = (0..5).map(|i| c.pending(i).to_vec()).collect();
        let (states, trace) = c.finish();
        (states.into_iter().map(|b| b.0).collect(), trace, pending)
    }

    #[test]
    fn pipelined_segment_matches_barrier_bit_for_bit() {
        let (sb, tb, pb) = run_mode(RoundScheduler::Barrier);
        let (sp, tp, pp) = run_mode(RoundScheduler::Pipelined);
        assert_eq!(sb, sp, "states diverged");
        assert_eq!(tb, tp, "traces diverged");
        assert_eq!(pb, pp, "pending inboxes diverged");
    }

    #[test]
    fn run_pipelined_forces_the_pipelined_path() {
        // Even on a Barrier-configured cluster, run_pipelined must
        // produce the identical observable outcome.
        let mk_cluster = || {
            let mut c: Cluster<Bag, u64> =
                Cluster::new(MpcConfig::new(4, 10_000), |_| Bag::default());
            c.round("warm", |ctx, _s, _i| ctx.send(0, ctx.id as u64));
            c
        };
        let mut a = mk_cluster();
        a.run_segment(segment_rounds());
        let mut b = mk_cluster();
        b.run_pipelined(segment_rounds());
        assert_eq!(a.trace(), b.trace());
        for i in 0..4 {
            assert_eq!(a.pending(i), b.pending(i));
        }
    }

    #[test]
    fn empty_segment_is_a_no_op() {
        let mut c: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(2, 100).pipelined(), |_| Bag::default());
        c.run_segment(Vec::new());
        assert_eq!(c.trace().num_rounds(), 0);
    }

    #[test]
    fn single_round_segment_matches_plain_round() {
        let body = |ctx: &mut MachineCtx<u64>, _s: &mut Bag, _i: Inbox<'_, u64>| {
            ctx.send((ctx.id + 1) % ctx.num_machines(), 9)
        };
        let mut a: Cluster<Bag, u64> = Cluster::new(MpcConfig::new(3, 100), |_| Bag::default());
        a.round("solo", body);
        let mut b: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(3, 100).pipelined(), |_| Bag::default());
        b.run_segment(vec![SegmentRound::new("solo", body)]);
        assert_eq!(a.trace(), b.trace());
        for i in 0..3 {
            assert_eq!(a.pending(i), b.pending(i));
        }
    }

    #[test]
    #[should_panic(expected = "MPC violation")]
    fn pipelined_strict_send_cap_panics_like_barrier() {
        let mut c: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(2, 4).pipelined(), |_| Bag::default());
        c.run_segment(vec![
            SegmentRound::new(
                "flood",
                |ctx: &mut MachineCtx<u64>, _s: &mut Bag, _i: Inbox<'_, u64>| {
                    if ctx.id == 0 {
                        for _ in 0..5 {
                            ctx.send(1, 1);
                        }
                    }
                },
            ),
            SegmentRound::new(
                "after",
                |_: &mut MachineCtx<u64>, _: &mut Bag, _: Inbox<'_, u64>| {},
            ),
        ]);
    }

    #[test]
    fn pipelined_audit_records_identical_violations() {
        let run = |scheduler| {
            let cfg = MpcConfig::new(2, 4).audited().with_scheduler(scheduler);
            let mut c: Cluster<Bag, u64> = Cluster::new(cfg, |_| Bag::default());
            c.run_segment(vec![
                SegmentRound::new(
                    "flood",
                    |ctx: &mut MachineCtx<u64>, _s: &mut Bag, _i: Inbox<'_, u64>| {
                        if ctx.id == 0 {
                            for _ in 0..6 {
                                ctx.send(1, 1);
                            }
                        }
                    },
                ),
                SegmentRound::new(
                    "hold",
                    |_: &mut MachineCtx<u64>, state: &mut Bag, inbox: Inbox<'_, u64>| {
                        state.0.extend(inbox);
                    },
                ),
            ]);
            c.finish().1
        };
        let tb = run(RoundScheduler::Barrier);
        let tp = run(RoundScheduler::Pipelined);
        assert!(!tb.violations.is_empty());
        assert_eq!(tb, tp);
    }

    #[test]
    fn round_wall_grows_one_entry_per_round() {
        let mut c: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(3, 1000).pipelined(), |_| Bag::default());
        c.round("warm", |_, _, _| {});
        c.run_segment(segment_rounds());
        assert_eq!(c.round_wall().len(), c.trace().num_rounds());
        assert!(c.round_wall().iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn sequential_route_step_hands_every_region_out_once() {
        let m = 3;
        let cfg = MpcConfig::new(m, 1000);
        let mut outboxes: Vec<Outbox<u64>> = (0..m).map(|_| Outbox::new()).collect();
        let mut inboxes = FlatInboxes::new(m);
        let mut scratch = RouteScratch::new();
        let mut board = ReadinessBoard::new(m);
        outboxes[0].push(1, 10);
        outboxes[0].push(1, 11);
        outboxes[2].push(0, 20);
        let mut seen: Vec<(usize, Vec<u64>)> = Vec::new();
        pipelined_route_step(
            &cfg,
            0,
            &mut outboxes,
            &mut inboxes,
            &mut scratch,
            &mut board,
            |region, inbox| seen.push((region, inbox.collect())),
        );
        seen.sort();
        assert_eq!(
            seen,
            vec![(0, vec![20]), (1, vec![10, 11]), (2, vec![])],
            "each region exactly once, canonical contents"
        );
        // Regions were drained by the callbacks: nothing is pending.
        assert_eq!(inboxes.total_messages(), 0);
    }
}
