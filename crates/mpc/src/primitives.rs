//! Reusable MPC dataflow primitives: distributed sorting and keyed
//! aggregation.
//!
//! The MPC model's foundational results (Karloff–Suri–Vassilvitskii,
//! Goodrich–Sitchinava–Zhang — the simulations the paper's Section 1.2
//! leans on) are built from exactly these operations. They are provided
//! here both as substrate for algorithms on the simulator and as
//! self-contained demonstrations that `O(1)`-round `O(S)`-memory dataflow
//! is expressible and *auditable* in [`crate::Cluster`].
//!
//! Both primitives take the input pre-distributed (`input[i]` = machine
//! `i`'s share, as the model assumes) and return the per-machine outputs
//! together with the execution trace.

use crate::cluster::Cluster;
use crate::model::MpcConfig;
use crate::rng::{indexed_rng, streams};
use crate::words::Words;
use crate::{accounting::ExecutionTrace, owner_of_key};
use rand::Rng;

/// State of a sorting machine.
struct SortState<K> {
    data: Vec<K>,
    splitters: Vec<K>,
    output: Vec<K>,
}

impl<K: Words> Words for SortState<K> {
    fn words(&self) -> usize {
        self.data.words() + self.splitters.words() + self.output.words()
    }
}

#[derive(Clone)]
enum SortMsg<K: Clone> {
    Sample(K),
    Splitters(Vec<K>),
    Route(K),
}

impl<K: Words + Clone> Words for SortMsg<K> {
    fn words(&self) -> usize {
        match self {
            SortMsg::Sample(k) | SortMsg::Route(k) => k.words(),
            SortMsg::Splitters(ks) => ks.words(),
        }
    }
}

/// Distributed sample sort in three rounds.
///
/// 1. **sample** — every machine sends `oversample` random local keys to
///    the coordinator,
/// 2. **splitters** — the coordinator broadcasts `M-1` splitters chosen
///    from the sorted sample,
/// 3. **route** — every key moves to its bucket machine; buckets sort
///    locally (free).
///
/// Returns the per-machine sorted buckets (machine `i`'s keys all ≤
/// machine `i+1`'s) and the audited trace. With uniform-ish data and
/// `oversample = Θ(log n)` the buckets are balanced w.h.p.; the router
/// enforces (or audits) the `S`-word cap either way.
pub fn sample_sort<K>(
    config: MpcConfig,
    input: Vec<Vec<K>>,
    oversample: usize,
    seed: u64,
) -> (Vec<Vec<K>>, ExecutionTrace)
where
    K: Ord + Clone + Send + Sync + Words,
{
    assert_eq!(input.len(), config.num_machines);
    assert!(oversample >= 1);
    let mut machines = input.into_iter();
    let mut cluster: Cluster<SortState<K>, SortMsg<K>> = Cluster::new(config, move |_| SortState {
        data: machines.next().expect("one share per machine"),
        splitters: Vec::new(),
        output: Vec::new(),
    });

    cluster.round("sort:sample", move |ctx, st, _| {
        let mut rng = indexed_rng(seed, streams::MACHINE, ctx.id as u64);
        for _ in 0..oversample.min(st.data.len()) {
            let k = st.data[rng.gen_range(0..st.data.len())].clone();
            ctx.send(0, SortMsg::Sample(k));
        }
    });

    cluster.round("sort:splitters", |ctx, _st, inbox| {
        if ctx.id != 0 {
            assert!(inbox.is_empty());
            return;
        }
        let mut sample: Vec<K> = inbox
            .map(|m| match m {
                SortMsg::Sample(k) => k,
                _ => unreachable!("splitter round expects samples"),
            })
            .collect();
        sample.sort();
        let m = ctx.num_machines();
        let splitters: Vec<K> = (1..m)
            .filter_map(|i| {
                if sample.is_empty() {
                    None
                } else {
                    Some(sample[(i * sample.len() / m).min(sample.len() - 1)].clone())
                }
            })
            .collect();
        ctx.broadcast(SortMsg::Splitters(splitters));
    });

    cluster.round("sort:route", |ctx, st, inbox| {
        for msg in inbox {
            match msg {
                SortMsg::Splitters(s) => st.splitters = s,
                _ => unreachable!("route round expects splitters"),
            }
        }
        let splitters = std::mem::take(&mut st.splitters);
        for k in st.data.drain(..) {
            // partition_point: first splitter > k determines the bucket.
            let bucket = splitters.partition_point(|s| s <= &k);
            ctx.send(bucket, SortMsg::Route(k));
        }
        st.splitters = splitters;
    });

    cluster.round("sort:collect", |_ctx, st, inbox| {
        st.output = inbox
            .map(|m| match m {
                SortMsg::Route(k) => k,
                _ => unreachable!("collect round expects routed keys"),
            })
            .collect();
        st.output.sort();
    });

    let (states, trace) = cluster.finish();
    (states.into_iter().map(|s| s.output).collect(), trace)
}

/// State of an aggregation machine.
struct AggState {
    input: Vec<(u64, f64)>,
    output: Vec<(u64, f64)>,
}

impl Words for AggState {
    fn words(&self) -> usize {
        2 * (self.input.len() + self.output.len())
    }
}

/// Keyed sum aggregation (`reduce-by-key`) in one communication round:
/// each machine pre-combines its local pairs, sends each key's partial to
/// `owner_of_key(key)`, and owners fold partials in arrival order.
/// Returns each machine's owned `(key, total)` pairs, sorted by key.
pub fn aggregate_sum(
    config: MpcConfig,
    input: Vec<Vec<(u64, f64)>>,
) -> (Vec<Vec<(u64, f64)>>, ExecutionTrace) {
    assert_eq!(
        input.len(),
        config.num_machines,
        "one input share per machine"
    );
    let mut machines = input.into_iter();
    let mut cluster: Cluster<AggState, (u64, f64)> = Cluster::new(config, move |_| AggState {
        input: machines.next().expect("one share per machine"),
        output: Vec::new(),
    });

    cluster.round("agg:combine+route", |ctx, st, _| {
        let mut local: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &(k, v) in &st.input {
            *local.entry(k).or_default() += v;
        }
        for (k, v) in local {
            ctx.send(owner_of_key(k, ctx.num_machines()), (k, v));
        }
    });

    cluster.round("agg:fold", |_ctx, st, inbox| {
        let mut totals: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for (k, v) in inbox {
            *totals.entry(k).or_default() += v;
        }
        st.output = totals.into_iter().collect();
    });

    let (states, trace) = cluster.finish();
    (states.into_iter().map(|s| s.output).collect(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn distribute(values: Vec<u64>, m: usize) -> Vec<Vec<u64>> {
        let mut shares = vec![Vec::new(); m];
        for (i, v) in values.into_iter().enumerate() {
            shares[i % m].push(v);
        }
        shares
    }

    #[test]
    fn sample_sort_produces_global_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let values: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        let m = 8;
        let config = MpcConfig::new(m, 30_000);
        let (buckets, trace) = sample_sort(config, distribute(values, m), 64, 7);
        // Exactly 4 rounds, within budget.
        assert_eq!(trace.num_rounds(), 4);
        assert!(trace.is_clean());
        // Concatenation equals the sequential sort.
        let got: Vec<u64> = buckets.iter().flatten().copied().collect();
        assert_eq!(got, expected);
        // Bucket boundaries respect the global order.
        for w in buckets.windows(2) {
            if let (Some(a), Some(b)) = (w[0].last(), w[1].first()) {
                assert!(a <= b);
            }
        }
        // Oversampling keeps buckets balanced within a small factor.
        let max = buckets.iter().map(Vec::len).max().unwrap();
        assert!(max < 3 * 20_000 / m, "largest bucket {max}");
    }

    #[test]
    fn sample_sort_handles_duplicates_and_empty_machines() {
        let m = 4;
        let mut shares = vec![Vec::new(); m];
        shares[2] = vec![5u64; 100];
        let config = MpcConfig::new(m, 1000);
        let (buckets, trace) = sample_sort(config, shares, 8, 3);
        assert!(trace.is_clean());
        let got: Vec<u64> = buckets.into_iter().flatten().collect();
        assert_eq!(got, vec![5u64; 100]);
    }

    #[test]
    fn sample_sort_is_deterministic() {
        let values: Vec<u64> = (0..5000).rev().collect();
        let m = 5;
        let config = MpcConfig::new(m, 10_000);
        let (a, _) = sample_sort(config, distribute(values.clone(), m), 32, 9);
        let (b, _) = sample_sort(config, distribute(values, m), 32, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_sum_matches_sequential_reduce() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pairs: Vec<(u64, f64)> = (0..30_000)
            .map(|_| (rng.gen_range(0..500), rng.gen_range(0.0..10.0)))
            .collect();
        let mut expected: std::collections::BTreeMap<u64, f64> = Default::default();
        for &(k, v) in &pairs {
            *expected.entry(k).or_default() += v;
        }
        let m = 6;
        let mut shares = vec![Vec::new(); m];
        for (i, p) in pairs.into_iter().enumerate() {
            shares[i % m].push(p);
        }
        let config = MpcConfig::new(m, 40_000);
        let (outputs, trace) = aggregate_sum(config, shares);
        assert_eq!(trace.num_rounds(), 2);
        assert!(trace.is_clean());
        let mut got: Vec<(u64, f64)> = outputs.into_iter().flatten().collect();
        got.sort_by_key(|&(k, _)| k);
        assert_eq!(got.len(), expected.len());
        for ((gk, gv), (ek, ev)) in got.iter().zip(expected.iter()) {
            assert_eq!(gk, ek);
            assert!((gv - ev).abs() < 1e-6 * (1.0 + ev.abs()));
        }
    }

    #[test]
    fn aggregate_ownership_is_by_hash() {
        let m = 4;
        let mut shares = vec![Vec::new(); m];
        for k in 0..100u64 {
            shares[0].push((k, 1.0));
        }
        let config = MpcConfig::new(m, 2000);
        let (outputs, _) = aggregate_sum(config, shares);
        for (machine, out) in outputs.iter().enumerate() {
            for &(k, _) in out {
                assert_eq!(owner_of_key(k, m), machine);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one input share per machine")]
    fn wrong_share_count_panics() {
        let _ = aggregate_sum(MpcConfig::new(3, 100), vec![vec![]]);
    }
}
