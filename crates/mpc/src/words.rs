//! Word counting: the memory unit of the MPC model.
//!
//! The model measures memory in *words* of `O(log N)` bits. Every value
//! that crosses the network or lives in a machine's resident state
//! implements [`Words`]; fixed-width scalars cost one word, composites sum
//! their parts, and containers add nothing beyond their elements (CSR-style
//! offset overhead is accounted where the container is built, e.g.
//! [`Graph::words`](../mwvc_graph/struct.Graph.html#method.words)).

/// Memory footprint in MPC words.
pub trait Words {
    /// Number of machine words this value occupies.
    fn words(&self) -> usize;
}

macro_rules! scalar_words {
    ($($t:ty),*) => {
        $(impl Words for $t {
            #[inline]
            fn words(&self) -> usize {
                1
            }
        })*
    };
}

scalar_words!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl Words for () {
    fn words(&self) -> usize {
        0
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: Words, B: Words, C: Words, D: Words> Words for (A, B, C, D) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: Words> Words for Option<T> {
    fn words(&self) -> usize {
        match self {
            Some(x) => x.words(),
            None => 0,
        }
    }
}

impl<T: Words> Words for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(Words::words).sum()
    }
}

impl<T: Words> Words for &[T] {
    fn words(&self) -> usize {
        self.iter().map(Words::words).sum()
    }
}

impl<T: Words> Words for Box<T> {
    fn words(&self) -> usize {
        (**self).words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_cost_one_word() {
        assert_eq!(1u32.words(), 1);
        assert_eq!(1.5f64.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn composites_sum() {
        assert_eq!((1u32, 2.0f64).words(), 2);
        assert_eq!((1u32, 2u32, 3u32).words(), 3);
        assert_eq!((1u32, 2u32, 3u32, 4.0f64).words(), 4);
        assert_eq!(Some((1u32, 2u32)).words(), 2);
        assert_eq!(None::<u32>.words(), 0);
    }

    #[test]
    fn containers_sum_elements() {
        let v = vec![(1u32, 2.5f64); 10];
        assert_eq!(v.words(), 20);
        assert_eq!(Vec::<u32>::new().words(), 0);
        assert_eq!(Box::new(7u64).words(), 1);
        let s: &[u32] = &[1, 2, 3];
        assert_eq!(s.words(), 3);
    }
}
