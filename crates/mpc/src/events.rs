//! Deterministic model-domain instrumentation events and the
//! fixed-capacity per-machine rings that carry them through the
//! zero-allocation fabric.
//!
//! The hot paths (`router.rs`, `pipeline.rs`) may not heap-allocate in a
//! steady-state round — the counting-allocator tests and the repo lint
//! pin that — so instrumentation there records into an [`EventRing`]: a
//! small inline array owned (via `RouteScratch`) by the cluster and
//! recycled every round like the outboxes and inbox arena. The
//! bookkeeping step at the end of each round drains the rings into
//! [`ExecutionTrace::events`](crate::ExecutionTrace), where allocation
//! is already permitted (round stats allocate their label there).
//!
//! Everything here is *model-domain*: word counts and region sizes,
//! never host time. Both round schedulers record the same kinds in the
//! same per-machine order, so the event stream is bit-identical across
//! schedulers and host pool widths — the determinism suite pins it.

use serde::{Deserialize, Serialize};

/// What a [`TraceEvent`] measures. Per machine and round, the fabric
/// records these in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Messages laid out into the machine's inbox region this round.
    RegionMsgs,
    /// Words laid out into the machine's inbox region this round.
    RegionWords,
    /// Words the machine spilled to its spill file this round.
    SpillWords,
    /// Words the machine sent this round.
    SentWords,
    /// Idle cost the machine would spend at this round's barrier waiting
    /// for the straggler (`round_max - cost`, in model cost units) — the
    /// readiness wait the pipelined scheduler exists to overlap.
    StallWords,
    /// Faults the deterministic plan injected against this machine this
    /// round (crashes, dropped/duplicated deliveries, stragglers).
    FaultInjected,
    /// Words written to this machine's recovery checkpoint this round.
    CheckpointWords,
    /// Rounds this machine replayed from its checkpoint after a crash.
    ReplayRounds,
    /// Spill I/O attempts this machine retried under injected transient
    /// faults this round.
    RetryCount,
}

/// One deterministic instrumentation event: machine `machine` measured
/// `value` of `kind` in round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Round index (0-based, matching `ExecutionTrace::rounds`).
    pub round: u32,
    /// Machine that the measurement belongs to.
    pub machine: u32,
    /// What was measured.
    pub kind: EventKind,
    /// The measured value (words or messages).
    pub value: u64,
}

/// Ring capacity: the fabric records at most [`EVENTS_PER_ROUND`] plus
/// [`FAULT_EVENTS_PER_ROUND`] events per machine per round and the
/// harness drains every round, so 12 slots never overflow in normal
/// operation.
pub const RING_CAPACITY: usize = 12;

/// Events the fabric records per machine in one fault-free harnessed
/// round.
pub const EVENTS_PER_ROUND: usize = 5;

/// Additional events the recovery layer can record per machine per round
/// under fault injection (`FaultInjected`, `CheckpointWords`,
/// `ReplayRounds`, `RetryCount`). Recorded only when nonzero, so
/// fault-free event streams are unchanged.
pub const FAULT_EVENTS_PER_ROUND: usize = 4;

/// A fixed-capacity, heap-free event buffer for one machine. `record`
/// never allocates: once full, further events are counted in `dropped`
/// instead of stored (that only happens when someone drives the raw
/// route steps without draining, e.g. a microbenchmark loop).
#[derive(Debug, Clone)]
pub struct EventRing {
    slots: [(EventKind, u64); RING_CAPACITY],
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring. The slot array lives inline — no heap.
    pub fn new() -> Self {
        EventRing {
            slots: [(EventKind::SentWords, 0); RING_CAPACITY],
            len: 0,
            dropped: 0,
        }
    }

    /// Records one event; drops (and counts) if the ring is full.
    #[inline]
    pub fn record(&mut self, kind: EventKind, value: u64) {
        if self.len < RING_CAPACITY {
            self.slots[self.len] = (kind, value);
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Moves the buffered events into `out` tagged with their round and
    /// machine, emptying the ring. The destination is the trace's event
    /// vector, outside the zero-allocation pin.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>, round: u32, machine: u32) {
        for &(kind, value) in &self.slots[..self.len] {
            out.push(TraceEvent {
                round,
                machine,
                kind,
                value,
            });
        }
        self.len = 0;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events dropped because the ring was full (never drained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_preserve_order() {
        let mut ring = EventRing::new();
        assert!(ring.is_empty());
        ring.record(EventKind::RegionMsgs, 3);
        ring.record(EventKind::RegionWords, 9);
        ring.record(EventKind::SentWords, 4);
        assert_eq!(ring.len(), 3);
        let mut out = Vec::new();
        ring.drain_into(&mut out, 7, 2);
        assert!(ring.is_empty());
        assert_eq!(
            out,
            vec![
                TraceEvent {
                    round: 7,
                    machine: 2,
                    kind: EventKind::RegionMsgs,
                    value: 3
                },
                TraceEvent {
                    round: 7,
                    machine: 2,
                    kind: EventKind::RegionWords,
                    value: 9
                },
                TraceEvent {
                    round: 7,
                    machine: 2,
                    kind: EventKind::SentWords,
                    value: 4
                },
            ]
        );
    }

    #[test]
    fn overflow_drops_instead_of_growing() {
        let mut ring = EventRing::new();
        for i in 0..(RING_CAPACITY as u64 + 3) {
            ring.record(EventKind::SentWords, i);
        }
        assert_eq!(ring.len(), RING_CAPACITY);
        assert_eq!(ring.dropped(), 3);
        let mut out = Vec::new();
        ring.drain_into(&mut out, 0, 0);
        assert_eq!(out.len(), RING_CAPACITY);
        // The oldest events survive; the overflow was dropped, not wrapped.
        assert_eq!(out[0].value, 0);
        assert_eq!(out[RING_CAPACITY - 1].value, RING_CAPACITY as u64 - 1);
    }

    #[test]
    fn capacity_covers_a_full_harnessed_round() {
        const { assert!(EVENTS_PER_ROUND + FAULT_EVENTS_PER_ROUND <= RING_CAPACITY) }
    }
}
