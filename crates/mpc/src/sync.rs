//! Synchronization facade for the simulator's concurrency core:
//! `std::sync` in normal builds, the vendored `loom` model-checking shims
//! under `RUSTFLAGS="--cfg loom"`.
//!
//! This mirrors `vendor/rayon/src/sync.rs`, which PR 6 introduced for the
//! work-stealing pool. The pipelined round scheduler
//! ([`crate::pipeline`]) must import every synchronization primitive
//! through this module and never from `std::sync` directly — otherwise
//! the loom suite (`tests/loom_pipeline.rs`) silently stops covering the
//! shipped code. `repo-lint` (tools/lint) enforces that rule for
//! `crates/mpc/src/pipeline.rs`.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic;

#[cfg(loom)]
pub(crate) use loom::sync::atomic;

/// Whether a named seeded mutation is active. Mutations are compiled in
/// only under loom and switched at runtime via `LOOM_MUTATE=<name>`;
/// CI's model-check job uses them to prove the pipeline loom suite
/// actually fails when a readiness ordering is weakened or the region
/// handoff protocol is off by one.
#[cfg(loom)]
pub(crate) fn mutation(name: &str) -> bool {
    std::env::var("LOOM_MUTATE").map_or(false, |v| v == name)
}
