//! Round-granular checkpointing and crash replay: the recovery half of
//! the deterministic fault model ([`crate::faults`]).
//!
//! # Design
//!
//! The cluster's `try_` entry points ([`Cluster::try_round`],
//! [`Cluster::try_run_segment`]) are drop-in Result-returning forms of
//! `round`/`run_segment`. With an inactive [`FaultConfig`](crate::FaultConfig) they delegate
//! to the ordinary engines and only add the end-of-segment surfacing of
//! latched spill errors, so fault-free executions are bit-identical to
//! the plain entry points — traces, events, states, everything.
//!
//! With an active plan, a segment first consults the plan: if no
//! round-granular fault fires anywhere in the segment's window, the
//! ordinary engine runs unchanged (same fast path, same scheduler). Only
//! a genuinely faulted window runs under the recovery engine
//! ([`run_recoverable`](Cluster::try_run_segment)), which executes the
//! segment barrier-style and layers on:
//!
//! * **Checkpoints** — at segment entry and every
//!   [`checkpoint_every`](crate::FaultConfig::checkpoint_every) rounds,
//!   each machine's state footprint is written to a per-machine
//!   [`CheckpointStore`] file (built on the [`SpillFile`] layer; words
//!   are accounted as [`FaultStats::checkpoint_words`](crate::FaultStats)
//!   and `CheckpointWords` ring events, *not* as round spill words — the
//!   per-round [`RoundStats`](crate::RoundStats) stay bit-identical to
//!   the fault-free run) and the state itself is snapshotted in memory.
//! * **Retained deliveries** — each round's inbox contents are retained
//!   (re-readable from the arena) until the next checkpoint, so a crash
//!   can re-deliver every round since the snapshot.
//! * **Crash replay** — a crashed machine's state is restored from the
//!   snapshot and the rounds since it are replayed against the retained
//!   deliveries ([`replay_round`](Cluster::try_run_segment)); replayed
//!   sends and spills are discarded (the original execution already
//!   delivered and charged them), so the recovered state is bit-identical
//!   and the model costs do not double-count. Exceeding
//!   [`max_replays`](crate::FaultConfig::max_replays) aborts with
//!   [`ClusterError::ReplayBudgetExhausted`].
//! * **Drop/duplicate repair** — the fabric's flat layout knows every
//!   region's exact message count, so a dropped or duplicated delivery
//!   is detected and repaired from the retained outbox arena before the
//!   next compute observes it; only the fault event is model-visible.
//! * **Graceful degradation** — a pipelined segment whose window
//!   contains a crash is demoted to barrier execution for that segment:
//!   the crash poisons the machine's readiness region
//!   ([`ReadinessBoard::poison`](crate::pipeline::ReadinessBoard)), and a
//!   poisoned region must never hand its inline compute to a state that
//!   is about to be rolled back. Both engines produce bit-identical
//!   model output, so degradation is invisible to everything but
//!   [`FaultStats::degraded_segments`](crate::FaultStats).
//!
//! On an unrecoverable error the trace simply ends at the failed round;
//! the cluster is not meant to be driven further (callers get a typed
//! [`ClusterError`] and abandon it).
//!
//! # Replay contract
//!
//! Replay re-runs a round body against a restored state and the retained
//! inbox with a *fresh* context: sends and spill writes of a replayed
//! round are discarded. This is exact for round bodies that are pure
//! functions of `(machine id, state, inbox)` — which all of the repo's
//! executors are — and for bodies whose spill usage is confined to
//! rounds they do not crash through (the out-of-core executor drives
//! spills through the plain entry points).

use crate::cluster::{Cluster, Inbox, MachineCtx, RoundFn};
use crate::events::EventKind;
use crate::faults::{chaos_mutation, ClusterError, FaultKind, FaultPlan};
use crate::model::RoundScheduler;
use crate::pipeline::SegmentRound;
use crate::router::{route, Outbox};
use crate::spill::SpillFile;
use crate::words::Words;
use std::time::Instant;

/// Words written per chunk when materializing a checkpoint into its
/// backing file.
const CKPT_CHUNK_WORDS: usize = 512;

/// Per-machine recovery checkpoints, built on the [`SpillFile`] layer.
///
/// A checkpoint is modeled, not serialized: machine states are generic
/// over [`Words`] (a footprint, not an encoding), so the store writes a
/// state's exact word count into a real backing file — the words move
/// through the same I/O path the spill layer uses and are accounted as
/// `checkpoint_words` — while the recovery engine keeps the restorable
/// state itself as an in-memory snapshot. Checkpoint files are *not*
/// fault-armed: the store models reliable (replicated) storage, which is
/// what makes crash-restart recovery sound.
pub struct CheckpointStore {
    files: Vec<SpillFile>,
    zeros: [u64; CKPT_CHUNK_WORDS],
}

impl CheckpointStore {
    /// A store with one checkpoint file per machine.
    pub fn new(m: usize) -> Self {
        Self {
            files: (0..m).map(|_| SpillFile::new()).collect(),
            zeros: [0u64; CKPT_CHUNK_WORDS],
        }
    }

    /// Number of machines the store covers.
    pub fn num_machines(&self) -> usize {
        self.files.len()
    }

    /// Replaces `machine`'s checkpoint with one of `words` words,
    /// surfacing any real I/O failure as a typed
    /// [`ClusterError::Checkpoint`].
    pub fn write(&mut self, machine: usize, words: usize) -> Result<(), ClusterError> {
        let file = &mut self.files[machine];
        file.clear();
        let mut left = words;
        while left > 0 {
            let chunk = left.min(CKPT_CHUNK_WORDS);
            file.write_words(&self.zeros[..chunk])
                .map_err(|e| ClusterError::Checkpoint {
                    machine,
                    message: e.to_string(),
                })?;
            left -= chunk;
        }
        Ok(())
    }

    /// Words currently held in `machine`'s checkpoint file.
    pub fn stored_words(&self, machine: usize) -> u64 {
        self.files[machine].stored_words()
    }
}

impl<S, M> Cluster<S, M>
where
    S: Send + Words,
    M: Send + Sync + Words,
{
    /// Drains the first latched spill failure across the machines, if
    /// any, as a typed [`ClusterError::SpillIo`]. Round bodies cannot
    /// propagate `Result`s, so persistent spill failures latch inside
    /// the [`SpillFile`] and the `try_` entry points (and the
    /// out-of-core executor) surface them here.
    pub fn take_spill_error(&mut self) -> Option<ClusterError> {
        for (machine, spill) in self.spills.iter_mut().enumerate() {
            if let Some((attempts, message)) = spill.take_error() {
                return Some(ClusterError::SpillIo {
                    machine,
                    attempts,
                    message,
                });
            }
        }
        None
    }

    /// Post-segment error surfacing shared by the non-recovery paths.
    fn surface_spill_errors(&mut self) -> Result<(), ClusterError> {
        match self.take_spill_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<S, M> Cluster<S, M>
where
    S: Send + Words + Clone,
    M: Send + Sync + Words + Clone,
{
    /// Result-returning form of [`Cluster::round`]: identical semantics
    /// (and bit-identical output) on the fault-free path, typed errors
    /// instead of panics when the configured [`crate::FaultConfig`]
    /// injects an unrecoverable fault.
    pub fn try_round<F>(&mut self, label: &str, f: F) -> Result<(), ClusterError>
    where
        F: for<'a> Fn(&mut MachineCtx<M>, &mut S, Inbox<'a, M>) + Sync + Send,
    {
        self.try_run_segment(vec![SegmentRound::new(label, f)])
    }

    /// Result-returning form of [`Cluster::run_segment`], the entry
    /// point of the recovery engine (see the module docs).
    pub fn try_run_segment(
        &mut self,
        rounds: Vec<SegmentRound<'_, S, M>>,
    ) -> Result<(), ClusterError> {
        if !self.config.faults.is_active() {
            self.run_segment(rounds);
            return self.surface_spill_errors();
        }
        let plan = FaultPlan::new(self.config.faults);
        let base = self.trace.rounds.len();
        let m = self.config.num_machines;
        let window_faulted =
            (0..rounds.len()).any(|k| (0..m).any(|i| plan.round_faulted(i, base + k)));
        if !window_faulted {
            // Spill I/O faults are op-granular and absorbed inside the
            // spill layer; this window needs no recovery engine, so the
            // configured scheduler runs unchanged.
            self.run_segment(rounds);
            return self.surface_spill_errors();
        }
        if self.config.scheduler == RoundScheduler::Pipelined {
            // Graceful degradation: a crash mid-pipeline would hand a
            // completed readiness region to a compute whose state is
            // about to roll back. Poison the crashing machines' regions
            // and run the whole segment barrier-style instead.
            self.trace.faults.degraded_segments += 1;
            for k in 0..rounds.len() {
                for i in 0..m {
                    if plan.fires(FaultKind::Crash, i, base + k) {
                        self.board.poison(i);
                    }
                }
            }
        }
        let result = self.run_recoverable(&rounds, plan, base);
        self.board.clear_poison();
        result
    }

    /// The recovery engine: barrier-style execution of a faulted segment
    /// with checkpoints, retained deliveries, and crash replay. Model
    /// output (states, round stats, critical path, pending messages) is
    /// bit-identical to a fault-free run of the same segment; the only
    /// additions are the fault events and [`crate::FaultStats`].
    fn run_recoverable(
        &mut self,
        rounds: &[SegmentRound<'_, S, M>],
        plan: FaultPlan,
        base: usize,
    ) -> Result<(), ClusterError> {
        let m = self.config.num_machines;
        let every = self.config.faults.checkpoint_every.max(1);
        let max_replays = self.config.faults.max_replays;
        if self.ckpt.is_none() {
            self.ckpt = Some(CheckpointStore::new(m));
        }

        // The restorable snapshot mirroring the checkpoint files, the
        // round it was taken at, and every round's deliveries since —
        // `retained[j][i]` is machine `i`'s inbox for relative round
        // `snapshot_round + j`.
        let mut snapshot: Vec<S> = self.states.clone();
        let mut prev_snapshot: Vec<S> = Vec::new();
        let mut snapshot_round = 0usize;
        let mut retained: Vec<Vec<Vec<M>>> = Vec::new();
        let mut replays = vec![0u32; m];

        for (k, round) in rounds.iter().enumerate() {
            let round_index = self.trace.rounds.len();
            let _round_span = tracing::span!(tracing::Level::Debug, "round");
            let started = Instant::now();
            let mut injected = vec![0u64; m];
            let mut ckpt_words = vec![0u64; m];
            let mut replayed = vec![0u64; m];

            // Checkpoint cadence: segment entry, then every `every`
            // rounds. The previous snapshot is kept one generation so
            // the `stale-checkpoint` seeded mutation has something
            // wrong to restore.
            if k % every == 0 {
                prev_snapshot = std::mem::replace(&mut snapshot, self.states.clone());
                if prev_snapshot.is_empty() {
                    prev_snapshot = snapshot.clone();
                }
                snapshot_round = k;
                retained.clear();
                let store = self.ckpt.as_mut().map_or_else(
                    // Unreachable (created above), but recovery-critical
                    // code does not unwrap.
                    || {
                        Err(ClusterError::Checkpoint {
                            machine: 0,
                            message: "checkpoint store missing".into(),
                        })
                    },
                    Ok,
                )?;
                for (i, state) in self.states.iter().enumerate() {
                    let words = state.words();
                    store.write(i, words)?;
                    ckpt_words[i] = words as u64;
                    self.trace.faults.checkpoint_words += words as u64;
                }
            }
            // Retain this round's deliveries before the computes drain
            // them: replay needs to re-deliver them, and drop/duplicate
            // repair re-reads the damaged region from them.
            retained.push((0..m).map(|i| self.inboxes.slice(i).to_vec()).collect());

            // Straggler delays: a bounded host-side spin before the
            // machine's compute. Host timing only — the determinism
            // contract says the model plane cannot see it.
            for (i, inj) in injected.iter_mut().enumerate() {
                if plan.fires(FaultKind::Straggle, i, base + k) {
                    *inj += 1;
                    for _ in 0..256 {
                        std::hint::spin_loop();
                    }
                }
            }

            self.compute_all(round.body());
            let compute_s = started.elapsed().as_secs_f64();
            self.cp.capture_deps(&self.outboxes);
            let route_mark = Instant::now();
            route(
                &self.config,
                round_index,
                &mut self.outboxes,
                &mut self.inboxes,
                &mut self.scratch,
            );
            let route_s = route_mark.elapsed().as_secs_f64();

            // Dropped / duplicated deliveries: the flat layout's exact
            // region counts make both detectable, and the retained arena
            // makes them repairable before the next compute. The model
            // sees only the fault event.
            for (i, inj) in injected.iter_mut().enumerate() {
                if plan.fires(FaultKind::Drop, i, base + k) {
                    *inj += 1;
                }
                if plan.fires(FaultKind::Duplicate, i, base + k) {
                    *inj += 1;
                }
            }

            // Crash-restarts: restore the snapshot and replay every
            // round since it against the retained deliveries. Replayed
            // sends/spills are discarded, so model costs stay exact.
            for i in 0..m {
                if !plan.fires(FaultKind::Crash, i, base + k) {
                    continue;
                }
                injected[i] += 1;
                replays[i] += 1;
                if replays[i] > max_replays {
                    return Err(ClusterError::ReplayBudgetExhausted {
                        machine: i,
                        round: round_index,
                        budget: max_replays,
                    });
                }
                // The `stale-checkpoint` seeded mutation restores the
                // previous (wrong) snapshot generation; the chaos
                // mutation gate must catch the divergence.
                let restore = if chaos_mutation("stale-checkpoint") {
                    &prev_snapshot
                } else {
                    &snapshot
                };
                self.states[i] = restore[i].clone();
                for (j, past) in retained[..=(k - snapshot_round)].iter().enumerate() {
                    Self::replay_round(
                        rounds[snapshot_round + j].body(),
                        i,
                        m,
                        &mut self.states[i],
                        &past[i],
                    );
                    replayed[i] += 1;
                    self.trace.faults.replayed_rounds += 1;
                }
                self.state_words[i] = self.states[i].words();
            }

            // Fault events precede the bookkeeping drain and are only
            // recorded when nonzero, so fault-free rounds keep their
            // exact event stream.
            for (i, ring) in self.scratch.rings.iter_mut().enumerate() {
                if injected[i] > 0 {
                    ring.record(EventKind::FaultInjected, injected[i]);
                    self.trace.faults.injected += injected[i];
                }
                if ckpt_words[i] > 0 {
                    ring.record(EventKind::CheckpointWords, ckpt_words[i]);
                }
                if replayed[i] > 0 {
                    ring.record(EventKind::ReplayRounds, replayed[i]);
                }
            }

            self.bookkeep_round(round.label(), round_index);
            self.finish_host_phase(compute_s, route_s);
            self.round_wall.push(started.elapsed().as_secs_f64());

            if let Some(e) = self.take_spill_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Re-runs one round body for one crashed machine against a restored
    /// state and that round's retained deliveries. The replay context is
    /// fresh — its sends and spill writes are discarded on return, since
    /// the original execution already delivered and charged them.
    fn replay_round(body: &RoundFn<'_, S, M>, machine: usize, m: usize, state: &mut S, msgs: &[M]) {
        let mut buf: Vec<M> = msgs.to_vec();
        let len = buf.len();
        let ptr = buf.as_mut_ptr();
        // SAFETY: releases the vector's ownership of its `len` messages
        // (leak-on-panic rather than double-drop) before the inbox view
        // takes over; the allocation itself stays with `buf`.
        unsafe { buf.set_len(0) };
        // SAFETY: `ptr..ptr+len` holds `len` initialized messages whose
        // sole owner is now this view; `buf`'s allocation outlives the
        // view (the body consumes the inbox before this frame returns).
        let inbox = unsafe { Inbox::from_raw(ptr, len) };
        let mut ctx = MachineCtx::new(machine, m, Outbox::new(), SpillFile::new());
        body(&mut ctx, state, inbox);
        drop(ctx.into_parts());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::RoundStats;
    use crate::model::MpcConfig;
    use crate::FaultConfig;

    /// Machine state: a rolling hash of everything received, so replay
    /// divergence is loud.
    #[derive(Clone, Default, Debug, PartialEq)]
    struct Acc {
        hash: u64,
        seen: u64,
    }

    impl Words for Acc {
        fn words(&self) -> usize {
            2 + (self.seen as usize % 3)
        }
    }

    fn mix_round<'a>(r: u64) -> SegmentRound<'a, Acc, u64> {
        SegmentRound::new(
            "mix",
            move |ctx: &mut MachineCtx<u64>, state: &mut Acc, inbox: Inbox<'_, u64>| {
                for v in inbox {
                    state.hash = state.hash.wrapping_mul(0x100000001b3).wrapping_add(v);
                    state.seen += 1;
                }
                let m = ctx.num_machines();
                for b in 0..1 + (ctx.id + r as usize) % 3 {
                    let dest = (ctx.id + b + 1) % m;
                    ctx.send(dest, (ctx.id as u64) << 32 | r << 8 | b as u64);
                }
            },
        )
    }

    fn segment<'a>(rounds: u64) -> Vec<SegmentRound<'a, Acc, u64>> {
        (0..rounds).map(mix_round).collect()
    }

    fn run(cfg: MpcConfig, segments: usize) -> Result<Cluster<Acc, u64>, ClusterError> {
        let mut c: Cluster<Acc, u64> = Cluster::new(cfg, |_| Acc::default());
        for _ in 0..segments {
            c.try_run_segment(segment(4))?;
        }
        Ok(c)
    }

    /// Strips the informational fields so runs compare on the model
    /// plane the chaos contract pins: states, round stats, critical
    /// path, pending messages.
    fn fingerprint(c: &Cluster<Acc, u64>) -> (Vec<Acc>, Vec<RoundStats>, Vec<Vec<u64>>) {
        (
            c.states().to_vec(),
            c.trace().rounds.clone(),
            (0..c.num_machines())
                .map(|i| c.pending(i).to_vec())
                .collect(),
        )
    }

    #[test]
    fn fault_free_try_segment_matches_plain_segment() {
        let cfg = MpcConfig::new(4, 10_000);
        let mut plain: Cluster<Acc, u64> = Cluster::new(cfg, |_| Acc::default());
        for _ in 0..2 {
            plain.run_segment(segment(4));
        }
        let tried = run(cfg, 2).unwrap();
        assert_eq!(plain.trace(), tried.trace());
        assert_eq!(fingerprint(&plain), fingerprint(&tried));
        assert_eq!(tried.trace().faults, Default::default());
    }

    #[test]
    fn crash_replay_recovers_bit_identical_state() {
        let clean = run(MpcConfig::new(4, 10_000), 3).unwrap();
        let faulted = MpcConfig::new(4, 10_000).with_faults(FaultConfig {
            seed: 3,
            crash_rate: 0.3,
            checkpoint_every: 2,
            ..FaultConfig::none()
        });
        let recovered = run(faulted, 3).unwrap();
        assert!(
            recovered.trace().faults.injected > 0,
            "rate 0.3 over 12 rounds x 4 machines must crash somewhere"
        );
        assert!(recovered.trace().faults.replayed_rounds > 0);
        assert!(recovered.trace().faults.checkpoint_words > 0);
        assert_eq!(fingerprint(&clean), fingerprint(&recovered));
        // The deterministic plane beyond round stats matches too.
        assert_eq!(clean.trace().critical_path, recovered.trace().critical_path);
        assert_eq!(clean.trace().violations, recovered.trace().violations);
    }

    #[test]
    fn mixed_fault_classes_recover_bit_identical_state() {
        let clean = run(MpcConfig::new(5, 10_000), 3).unwrap();
        let faulted = MpcConfig::new(5, 10_000).with_faults(FaultConfig {
            seed: 9,
            crash_rate: 0.15,
            drop_rate: 0.2,
            dup_rate: 0.2,
            straggler_rate: 0.3,
            checkpoint_every: 2,
            ..FaultConfig::none()
        });
        let recovered = run(faulted, 3).unwrap();
        assert!(recovered.trace().faults.injected > 0);
        assert_eq!(fingerprint(&clean), fingerprint(&recovered));
    }

    #[test]
    fn pipelined_faulted_segment_degrades_and_still_matches() {
        let clean = run(MpcConfig::new(4, 10_000), 3).unwrap();
        let faulted = MpcConfig::new(4, 10_000)
            .pipelined()
            .with_faults(FaultConfig {
                seed: 3,
                crash_rate: 0.3,
                checkpoint_every: 1,
                ..FaultConfig::none()
            });
        let recovered = run(faulted, 3).unwrap();
        assert!(recovered.trace().faults.degraded_segments > 0);
        assert_eq!(fingerprint(&clean), fingerprint(&recovered));
    }

    #[test]
    fn replay_budget_exhaustion_is_a_typed_error() {
        let cfg = MpcConfig::new(3, 10_000).with_faults(FaultConfig {
            crash_rate: 1.0,
            max_replays: 1,
            checkpoint_every: 1,
            ..FaultConfig::none()
        });
        let err = run(cfg, 1).map(|_| ()).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::ReplayBudgetExhausted { budget: 1, .. }
        ));
    }

    #[test]
    fn fault_events_flow_through_the_rings() {
        let cfg = MpcConfig::new(3, 10_000).with_faults(FaultConfig {
            seed: 5,
            crash_rate: 0.4,
            checkpoint_every: 2,
            ..FaultConfig::none()
        });
        let c = run(cfg, 2).unwrap();
        let kinds: Vec<EventKind> = c.trace().events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::FaultInjected));
        assert!(kinds.contains(&EventKind::CheckpointWords));
        assert!(kinds.contains(&EventKind::ReplayRounds));
    }

    #[test]
    fn checkpoint_store_writes_and_replaces() {
        let mut store = CheckpointStore::new(2);
        assert_eq!(store.num_machines(), 2);
        store.write(0, 1000).unwrap();
        assert_eq!(store.stored_words(0), 1000);
        store.write(0, 3).unwrap();
        assert_eq!(store.stored_words(0), 3);
        assert_eq!(store.stored_words(1), 0);
    }

    #[test]
    fn try_round_surfaces_latched_spill_errors() {
        let cfg = MpcConfig::new(2, 10_000).with_faults(FaultConfig {
            seed: 5,
            spill_io_rate: 1.0,
            max_retries: 2,
            ..FaultConfig::none()
        });
        let mut c: Cluster<Acc, u64> = Cluster::new(cfg, |_| Acc::default());
        let err = c
            .try_round("spill", |ctx, _s, _i| {
                if ctx.id == 1 {
                    let _ = ctx.spill().write_words(&[1, 2, 3]);
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::SpillIo {
                machine: 1,
                attempts: 3,
                ..
            }
        ));
    }
}
