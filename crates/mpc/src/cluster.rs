//! The cluster: per-machine state, synchronous rounds, parallel local
//! computation.
//!
//! A [`Cluster<S, M>`] owns one state value `S` per machine and a typed
//! inbox of messages `M`. [`Cluster::round`] runs one synchronous MPC
//! round: every machine's closure executes (in parallel on the host via
//! rayon — the model charges nothing for local computation), emits
//! messages through its [`MachineCtx`], and the router delivers them while
//! enforcing the model's capacity constraints.

use crate::accounting::{ExecutionTrace, RoundStats, Violation, ViolationKind};
use crate::model::{Enforcement, MpcConfig};
use crate::router::route;
use crate::words::Words;
use rayon::prelude::*;

/// A machine's handle for emitting messages during a round.
pub struct MachineCtx<M> {
    /// This machine's index in `0..num_machines`.
    pub id: usize,
    num_machines: usize,
    outbox: Vec<(usize, M)>,
}

impl<M> MachineCtx<M> {
    fn new(id: usize, num_machines: usize) -> Self {
        Self {
            id,
            num_machines,
            outbox: Vec::new(),
        }
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Queues `msg` for delivery to machine `to` at the end of the round.
    pub fn send(&mut self, to: usize, msg: M) {
        debug_assert!(to < self.num_machines);
        self.outbox.push((to, msg));
    }
}

impl<M: Clone> MachineCtx<M> {
    /// Sends a copy of `msg` to every machine (including self). Costs
    /// `num_machines * msg.words()` words of this machine's send budget —
    /// broadcast is not free in MPC.
    pub fn broadcast(&mut self, msg: M) {
        for to in 0..self.num_machines {
            self.outbox.push((to, msg.clone()));
        }
    }
}

/// An MPC cluster executing synchronous rounds over per-machine state `S`
/// and message type `M`.
pub struct Cluster<S, M> {
    config: MpcConfig,
    states: Vec<S>,
    inboxes: Vec<Vec<M>>,
    trace: ExecutionTrace,
}

impl<S, M> Cluster<S, M>
where
    S: Send + Words,
    M: Send + Sync + Words,
{
    /// Creates a cluster with `config.num_machines` machines, initializing
    /// machine `i`'s state to `init(i)`.
    pub fn new(config: MpcConfig, mut init: impl FnMut(usize) -> S) -> Self {
        let states: Vec<S> = (0..config.num_machines).map(&mut init).collect();
        let inboxes = (0..config.num_machines).map(|_| Vec::new()).collect();
        Self {
            config,
            states,
            inboxes,
            trace: ExecutionTrace::default(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.config.num_machines
    }

    /// Immutable view of machine `i`'s state.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// All machine states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Consumes the cluster, returning machine states and the trace.
    pub fn finish(self) -> (Vec<S>, ExecutionTrace) {
        (self.states, self.trace)
    }

    /// Executes one synchronous round.
    ///
    /// For every machine, `f(ctx, state, inbox)` runs with the messages
    /// delivered at the end of the previous round. Messages sent through
    /// `ctx` are routed afterwards under the model's capacity constraints,
    /// and a [`RoundStats`] entry labeled `label` is appended to the trace.
    pub fn round<F>(&mut self, label: &str, f: F)
    where
        F: Fn(&mut MachineCtx<M>, &mut S, Vec<M>) + Sync + Send,
    {
        let m = self.config.num_machines;
        let round_index = self.trace.rounds.len();
        let inboxes = std::mem::replace(&mut self.inboxes, (0..m).map(|_| Vec::new()).collect());

        // Local computation: free in the model, parallel on the host.
        // Each machine also reports its post-computation state footprint,
        // so the resident check below needs no second scan.
        let results: Vec<(Vec<(usize, M)>, usize)> = self
            .states
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .enumerate()
            .map(|(id, (state, inbox))| {
                let mut ctx = MachineCtx::new(id, m);
                f(&mut ctx, state, inbox);
                let state_words = state.words();
                (ctx.outbox, state_words)
            })
            .collect();
        let mut outboxes = Vec::with_capacity(m);
        let mut state_words = Vec::with_capacity(m);
        for (outbox, words) in results {
            outboxes.push(outbox);
            state_words.push(words);
        }

        // Communication: the only thing the model restricts.
        let routed = route(&self.config, round_index, outboxes);
        let mut violations: Vec<Violation> = routed.violations;

        // Resident memory check: state + freshly delivered inbox. The
        // inbox footprint equals the words received this round, which the
        // router already measured.
        let cap = self.config.memory_words;
        let mut max_resident = 0usize;
        let residents = state_words
            .iter()
            .zip(&routed.received_words)
            .map(|(&s, &r)| s + r);
        for (machine, resident) in residents.enumerate() {
            max_resident = max_resident.max(resident);
            if resident > cap {
                let v = Violation {
                    round: round_index,
                    machine,
                    kind: ViolationKind::ResidentExceedsMemory,
                    words: resident,
                    cap,
                };
                match self.config.enforcement {
                    Enforcement::Strict => panic!(
                        "MPC violation: machine {machine} holds {resident} words > cap {cap} \
                         after round {round_index} ({label})"
                    ),
                    Enforcement::Audit => violations.push(v),
                }
            }
        }

        let total_traffic = routed.sent_words.iter().sum();
        self.trace.rounds.push(RoundStats {
            label: label.to_string(),
            max_sent: routed.sent_words.iter().copied().max().unwrap_or(0),
            max_received: routed.received_words.iter().copied().max().unwrap_or(0),
            max_resident,
            total_traffic,
        });
        self.trace.violations.extend(violations);
        self.inboxes = routed.inboxes;
    }

    /// Messages currently pending delivery to machine `i` (sent in the
    /// last round, visible to the next). Primarily for tests.
    pub fn pending(&self, i: usize) -> &[M] {
        &self.inboxes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Machine state: a bag of numbers.
    #[derive(Default)]
    struct Bag(Vec<u64>);

    impl Words for Bag {
        fn words(&self) -> usize {
            self.0.len()
        }
    }

    fn cluster(m: usize, s: usize) -> Cluster<Bag, u64> {
        Cluster::new(MpcConfig::new(m, s), |_| Bag::default())
    }

    #[test]
    fn ring_pass() {
        let mut c = cluster(4, 100);
        // Round 1: each machine sends its id to the next.
        c.round("send", |ctx, _state, _inbox| {
            let next = (ctx.id + 1) % ctx.num_machines();
            ctx.send(next, ctx.id as u64);
        });
        // Round 2: each machine stores what it received.
        c.round("store", |ctx, state, inbox| {
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0], ((ctx.id + 3) % 4) as u64);
            state.0.extend(inbox);
        });
        assert_eq!(c.trace().num_rounds(), 2);
        assert_eq!(c.state(0).0, vec![3]);
        assert_eq!(c.trace().rounds[0].total_traffic, 4);
        assert_eq!(c.trace().rounds[1].total_traffic, 0);
    }

    #[test]
    fn broadcast_counts_full_cost() {
        let mut c = cluster(5, 100);
        c.round("bcast", |ctx, _s, _i| {
            if ctx.id == 0 {
                ctx.broadcast(7u64);
            }
        });
        assert_eq!(c.trace().rounds[0].max_sent, 5);
        assert_eq!(c.trace().rounds[0].max_received, 1);
        for i in 0..5 {
            assert_eq!(c.pending(i), &[7u64]);
        }
    }

    #[test]
    fn resident_memory_is_state_plus_inbox() {
        let mut c = cluster(2, 100);
        c.round("fill", |ctx, state, _| {
            state.0 = vec![1; 10]; // 10 resident words
            ctx.send(1 - ctx.id, 9u64);
        });
        assert_eq!(c.trace().rounds[0].max_resident, 11);
    }

    #[test]
    #[should_panic(expected = "MPC violation")]
    fn strict_resident_cap_panics() {
        let mut c = cluster(1, 5);
        c.round("overflow", |_ctx, state, _| {
            state.0 = vec![0; 6];
        });
    }

    #[test]
    fn audit_mode_records_resident_violation() {
        let mut c: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(1, 5).audited(), |_| Bag::default());
        c.round("overflow", |_ctx, state, _| {
            state.0 = vec![0; 8];
        });
        assert_eq!(c.trace().violations.len(), 1);
        assert_eq!(
            c.trace().violations[0].kind,
            ViolationKind::ResidentExceedsMemory
        );
        assert_eq!(c.trace().violations[0].words, 8);
    }

    #[test]
    fn undelivered_messages_carry_one_round_only() {
        let mut c = cluster(2, 10);
        c.round("send", |ctx, _s, _i| {
            if ctx.id == 0 {
                ctx.send(1, 42u64);
            }
        });
        c.round("consume", |ctx, state, inbox| {
            if ctx.id == 1 {
                assert_eq!(inbox, vec![42]);
                state.0.extend(inbox);
            } else {
                assert!(inbox.is_empty());
            }
        });
        c.round("empty", |_ctx, _s, inbox| {
            assert!(inbox.is_empty(), "messages must not be redelivered");
        });
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let run = || {
            let mut c = cluster(8, 1000);
            for r in 0..5 {
                c.round("mix", move |ctx, state, inbox| {
                    state.0.extend(inbox);
                    let dest = (ctx.id * 7 + r + 1) % ctx.num_machines();
                    ctx.send(dest, (ctx.id * 100 + r) as u64);
                });
            }
            let (states, trace) = c.finish();
            (states.into_iter().map(|b| b.0).collect::<Vec<_>>(), trace)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn finish_returns_states_and_trace() {
        let mut c = cluster(3, 10);
        c.round("noop", |_, _, _| {});
        let (states, trace) = c.finish();
        assert_eq!(states.len(), 3);
        assert_eq!(trace.num_rounds(), 1);
    }
}
