//! The cluster: per-machine state, synchronous rounds, parallel local
//! computation.
//!
//! A [`Cluster<S, M>`] owns one state value `S` per machine and the
//! communication fabric's buffers. [`Cluster::round`] runs one synchronous
//! MPC round: every machine's closure executes (in parallel on the host
//! via rayon — the model charges nothing for local computation), emits
//! messages through its [`MachineCtx`], and the router delivers them while
//! enforcing the model's capacity constraints.
//!
//! # Allocation discipline
//!
//! All round buffers — the per-machine [`Outbox`] arenas inside the
//! contexts, the CSR [`FlatInboxes`] the router fills, and the router's
//! [`RouteScratch`] — live in the cluster and are recycled across rounds.
//! A machine reads its inbox through [`Inbox`], a by-value draining view
//! of its slice of the shared flat buffer; nothing is copied and nothing
//! is freed. After a warm-up round at the peak message shape, steady-state
//! rounds perform no inbox/outbox heap allocation
//! (`tests/fabric_properties.rs` pins this with a counting allocator).

use crate::accounting::{ExecutionTrace, RoundStats, Violation, ViolationKind};
use crate::events::EventKind;
use crate::metrics::{HostPhase, MetricsRegistry};
use crate::model::{Enforcement, MemoryBudget, MpcConfig};
use crate::pipeline::{CpTracker, ReadinessBoard};
use crate::router::{route, FlatInboxes, Outbox, RouteScratch};
use crate::spill::SpillFile;
use crate::words::Words;
use rayon::prelude::*;
use std::marker::PhantomData;
use std::time::Instant;

/// A machine's handle for emitting messages during a round. Owns the
/// machine's reusable outbox arena and its spill file for the duration of
/// the round; the cluster reclaims both (retaining capacity and stored
/// spill words) at the end of every round.
pub struct MachineCtx<M> {
    /// This machine's index in `0..num_machines`.
    pub id: usize,
    num_machines: usize,
    outbox: Outbox<M>,
    spill: SpillFile,
}

impl<M> MachineCtx<M> {
    pub(crate) fn new(id: usize, num_machines: usize, outbox: Outbox<M>, spill: SpillFile) -> Self {
        Self {
            id,
            num_machines,
            outbox,
            spill,
        }
    }

    pub(crate) fn into_parts(self) -> (Outbox<M>, SpillFile) {
        (self.outbox, self.spill)
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// This machine's persistent [`SpillFile`]: an append-only word log
    /// that survives across rounds, for working sets that must leave RAM
    /// to respect the resident cap under
    /// [`MemoryBudget::Enforced`](crate::MemoryBudget). Words written
    /// here are charged to [`RoundStats::spill_words`] for the round.
    #[inline]
    pub fn spill(&mut self) -> &mut SpillFile {
        &mut self.spill
    }

    /// Queues `msg` for delivery to machine `to` at the end of the round.
    /// Consecutive sends to the same destination share one run in the
    /// outbox, which keeps the shuffle's tally stage O(destinations) for
    /// grouped senders.
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(
            to < self.num_machines,
            "machine {} addressed nonexistent machine {to}",
            self.id
        );
        self.outbox.push(to, msg);
    }

    /// Capacity hint: reserves message storage for `n` further sends in
    /// this machine's outbox arena, so a burst of known size never
    /// reallocates its payloads mid-round. (The much smaller run table
    /// grows amortized; both buffers keep their capacity across rounds.)
    #[inline]
    pub fn reserve_sends(&mut self, n: usize) {
        self.outbox.reserve(n);
    }
}

impl<M: Clone> MachineCtx<M> {
    /// Sends a copy of `msg` to every machine (including self). Costs
    /// `num_machines * msg.words()` words of this machine's send budget —
    /// broadcast is not free in MPC. Clones for the first `m - 1`
    /// recipients and moves the original into the last slot; `Copy`
    /// message types need no further fast path (their `clone` is the
    /// same memcpy).
    pub fn broadcast(&mut self, msg: M) {
        let m = self.num_machines;
        self.outbox.reserve(m);
        for to in 0..m - 1 {
            self.outbox.push(to, msg.clone());
        }
        self.outbox.push(m - 1, msg);
    }
}

/// The borrowed form of a round body: one machine's compute closure for
/// one round, shared by the barrier and pipelined schedulers.
pub(crate) type RoundFn<'seg, S, M> =
    dyn for<'a> Fn(&mut MachineCtx<M>, &mut S, Inbox<'a, M>) + Sync + Send + 'seg;

/// A by-value draining view of one machine's inbox: iterates the
/// machine's slice of the shared flat buffer, moving each message out.
/// Unconsumed messages are dropped when the view is dropped, so partial
/// reads are safe; the underlying buffer is recycled by the cluster.
pub struct Inbox<'a, M> {
    ptr: *mut M,
    len: usize,
    pos: usize,
    _buf: PhantomData<&'a mut [M]>,
}

// SAFETY: the view exclusively owns its slice's messages (disjoint per
// machine); sending it to the worker running that machine is safe.
unsafe impl<M: Send> Send for Inbox<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    /// View over `len` messages starting at `ptr`.
    ///
    /// # Safety
    /// The range must hold initialized messages exclusively owned by this
    /// view for `'a` (each message moved out or dropped exactly once).
    pub(crate) unsafe fn from_raw(ptr: *mut M, len: usize) -> Self {
        Inbox {
            ptr,
            len,
            pos: 0,
            _buf: PhantomData,
        }
    }

    /// Messages remaining in the view.
    pub fn len(&self) -> usize {
        self.len - self.pos
    }

    /// Whether the view is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos == self.len
    }

    /// The undrained remainder, by reference.
    pub fn as_slice(&self) -> &[M] {
        // SAFETY: `pos..len` holds initialized messages owned by the view.
        unsafe { std::slice::from_raw_parts(self.ptr.add(self.pos), self.len - self.pos) }
    }
}

impl<M> Iterator for Inbox<'_, M> {
    type Item = M;

    #[inline]
    fn next(&mut self) -> Option<M> {
        if self.pos == self.len {
            return None;
        }
        // SAFETY: `pos` is advanced past the slot before anything can
        // observe it again, so the message is moved out exactly once.
        let msg = unsafe { self.ptr.add(self.pos).read() };
        self.pos += 1;
        Some(msg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len - self.pos;
        (n, Some(n))
    }
}

impl<M> ExactSizeIterator for Inbox<'_, M> {}

impl<M> Drop for Inbox<'_, M> {
    fn drop(&mut self) {
        // Drop any unread tail so ownership is always fully discharged.
        for i in self.pos..self.len {
            // SAFETY: slots `pos..len` are initialized and unread.
            unsafe { self.ptr.add(i).drop_in_place() };
        }
        self.pos = self.len;
    }
}

/// Raw shared pointer for handing disjoint inbox ranges to the parallel
/// round workers.
struct BufPtr<M>(*mut M);
// SAFETY: the wrapper only hands out raw pointers; the round loop gives
// each worker a disjoint machine region.
unsafe impl<M: Send> Send for BufPtr<M> {}
// SAFETY: as above — shared access is to disjoint regions only.
unsafe impl<M: Send> Sync for BufPtr<M> {}

impl<M> BufPtr<M> {
    /// Pointer `index` elements past the base. Going through a method
    /// (not the field) keeps closure captures on the `Sync` wrapper.
    #[inline]
    fn at(&self, index: usize) -> *mut M {
        // SAFETY: callers stay within the buffer's capacity.
        unsafe { self.0.add(index) }
    }
}

/// An MPC cluster executing synchronous rounds over per-machine state `S`
/// and message type `M`.
pub struct Cluster<S, M> {
    pub(crate) config: MpcConfig,
    pub(crate) states: Vec<S>,
    /// Per-machine outbox arenas, recycled each round.
    pub(crate) outboxes: Vec<Outbox<M>>,
    /// Routed messages pending delivery, CSR layout, recycled each round.
    pub(crate) inboxes: FlatInboxes<M>,
    /// Router working memory, recycled each round.
    pub(crate) scratch: RouteScratch,
    /// Per-machine post-computation state footprint, recycled each round.
    pub(crate) state_words: Vec<usize>,
    /// Per-machine spill files, lent to the contexts each round.
    pub(crate) spills: Vec<SpillFile>,
    pub(crate) trace: ExecutionTrace,
    /// Per-region delivery counters of the pipelined scheduler, recycled
    /// each round.
    pub(crate) board: ReadinessBoard,
    /// Critical-path accounting, advanced identically by both schedulers.
    pub(crate) cp: CpTracker,
    /// Host wall-clock seconds per executed round — informational (host-
    /// and thread-count-dependent), so deliberately *not* part of the
    /// [`ExecutionTrace`] the determinism suite compares.
    pub(crate) round_wall: Vec<f64>,
    /// Per-round host wall-clock split by phase (compute / route /
    /// spill). Informational, like `round_wall`.
    pub(crate) host_phases: Vec<HostPhase>,
    /// Always-on metrics: the deterministic model plane and the
    /// informational host plane.
    pub(crate) metrics: MetricsRegistry,
    /// Recovery checkpoint store, created lazily by the first
    /// recoverable segment (see [`crate::checkpoint`]).
    pub(crate) ckpt: Option<crate::checkpoint::CheckpointStore>,
}

impl<S, M> Cluster<S, M>
where
    S: Send + Words,
    M: Send + Sync + Words,
{
    /// Creates a cluster with `config.num_machines` machines, initializing
    /// machine `i`'s state to `init(i)`.
    pub fn new(config: MpcConfig, mut init: impl FnMut(usize) -> S) -> Self {
        let m = config.num_machines;
        let states: Vec<S> = (0..m).map(&mut init).collect();
        let outboxes = (0..m).map(|_| Outbox::new()).collect();
        let mut spills: Vec<SpillFile> = (0..m).map(|_| SpillFile::new()).collect();
        if config.faults.spill_io_rate > 0.0 {
            let plan = crate::faults::FaultPlan::new(config.faults);
            for (i, spill) in spills.iter_mut().enumerate() {
                spill.arm_faults(plan, i);
            }
        }
        Self {
            config,
            states,
            outboxes,
            inboxes: FlatInboxes::new(m),
            scratch: RouteScratch::new(),
            state_words: vec![0; m],
            spills,
            trace: ExecutionTrace::default(),
            board: ReadinessBoard::new(m),
            cp: CpTracker::new(m),
            round_wall: Vec::new(),
            host_phases: Vec::new(),
            metrics: MetricsRegistry::default(),
            ckpt: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.config.num_machines
    }

    /// Immutable view of machine `i`'s state.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// All machine states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Consumes the cluster, returning machine states and the trace.
    pub fn finish(self) -> (Vec<S>, ExecutionTrace) {
        (self.states, self.trace)
    }

    /// Executes one synchronous round.
    ///
    /// For every machine, `f(ctx, state, inbox)` runs with the messages
    /// delivered at the end of the previous round (an [`Inbox`] draining
    /// view — iterate it to take messages by value). Messages sent through
    /// `ctx` are routed afterwards under the model's capacity constraints,
    /// and a [`RoundStats`] entry labeled `label` is appended to the trace.
    pub fn round<F>(&mut self, label: &str, f: F)
    where
        F: for<'a> Fn(&mut MachineCtx<M>, &mut S, Inbox<'a, M>) + Sync + Send,
    {
        let round_index = self.trace.rounds.len();
        let _round_span = tracing::span!(tracing::Level::Debug, "round");
        let started = Instant::now();

        self.compute_all(&f);
        let compute_s = started.elapsed().as_secs_f64();

        // Dependency capture must precede routing: the router empties the
        // outboxes' run tables while delivering.
        self.cp.capture_deps(&self.outboxes);

        // Communication: the only thing the model restricts.
        let route_mark = Instant::now();
        route(
            &self.config,
            round_index,
            &mut self.outboxes,
            &mut self.inboxes,
            &mut self.scratch,
        );
        let route_s = route_mark.elapsed().as_secs_f64();

        self.bookkeep_round(label, round_index);
        self.finish_host_phase(compute_s, route_s);
        self.round_wall.push(started.elapsed().as_secs_f64());
    }

    /// The local-computation half of a round: every machine drains its
    /// disjoint slice of the shared inbox buffer, refills its own outbox
    /// arena, and reports its post-computation state footprint (so the
    /// resident check needs no second scan). Free in the model, parallel
    /// on the host, no per-round allocation. `f` is the borrowed form of
    /// a round body ([`RoundFn`]), shared by both schedulers.
    pub(crate) fn compute_all(&mut self, f: &RoundFn<'_, S, M>) {
        let m = self.config.num_machines;
        let base = BufPtr(self.inboxes.begin_drain());
        let starts = self.inboxes.region_starts();
        let lens = self.inboxes.region_lens();
        self.states
            .par_iter_mut()
            .zip(self.outboxes.par_iter_mut())
            .zip(self.state_words.par_iter_mut())
            .zip(self.spills.par_iter_mut())
            .enumerate()
            .for_each(|(id, (((state, outbox), words), spill))| {
                // SAFETY: machine regions are disjoint by the layout
                // tables; the drained buffer outlives this scope and
                // each message is owned by exactly one view.
                let inbox = unsafe { Inbox::from_raw(base.at(starts[id]), lens[id]) };
                // The context temporarily owns this machine's arena and
                // spill file; all moves are pointer swaps, not
                // allocations.
                let mut ctx = MachineCtx::new(id, m, std::mem::take(outbox), std::mem::take(spill));
                f(&mut ctx, state, inbox);
                *words = state.words();
                let (ob, sp) = ctx.into_parts();
                *outbox = ob;
                *spill = sp;
            });
    }

    /// The accounting half of a round, run once the word totals are final
    /// (after the fused route in barrier mode; after the layout pass —
    /// *before* placement — in pipelined mode, where the totals are
    /// already final and enforcement must fire before any overlapped
    /// compute can observe the round): the resident-memory check, the
    /// [`RoundStats`] entry, the violation handoff into the trace, and the
    /// critical-path advance.
    pub(crate) fn bookkeep_round(&mut self, label: &str, round_index: usize) {
        // Resident memory check: state + freshly delivered inbox. The
        // inbox footprint equals the words received this round, which the
        // router already measured.
        let cap = self.config.memory_words;
        let mut max_resident = 0usize;
        let residents = self
            .state_words
            .iter()
            .zip(&self.scratch.received_words)
            .map(|(&s, &r)| s + r);
        let mut violations: Vec<Violation> = std::mem::take(&mut self.scratch.violations);
        for (machine, resident) in residents.enumerate() {
            max_resident = max_resident.max(resident);
            if resident > cap {
                // Under an enforced budget the cap is not negotiable:
                // a machine holding more than `S` words should have moved
                // the excess to its spill file, and no enforcement policy
                // downgrades that to a recorded violation.
                if self.config.budget == MemoryBudget::Enforced {
                    panic!(
                        "MPC budget violation: machine {machine} holds {resident} words > cap \
                         {cap} after round {round_index} ({label}); under \
                         MemoryBudget::Enforced the machine must spill the excess instead"
                    );
                }
                let v = Violation {
                    round: round_index,
                    machine,
                    kind: ViolationKind::ResidentExceedsMemory,
                    words: resident,
                    cap,
                };
                match self.config.enforcement {
                    Enforcement::Strict => panic!(
                        "MPC violation: machine {machine} holds {resident} words > cap {cap} \
                         after round {round_index} ({label})"
                    ),
                    Enforcement::Audit => violations.push(v),
                }
            }
        }

        // Per-machine spill accounting: the round's spilled words go into
        // each machine's event ring (deterministic plane) and the host
        // seconds the spill files measured go into the round's host
        // phase (informational plane).
        let mut spill_words = 0u64;
        let mut spill_s = 0f64;
        let mut retries = 0u64;
        for (spill, ring) in self.spills.iter_mut().zip(&mut self.scratch.rings) {
            let w = spill.take_round_words();
            ring.record(EventKind::SpillWords, w);
            spill_words += w;
            spill_s += spill.take_round_secs();
            // Injected-fault retries (zero without injection, so the
            // fault-free event stream is unchanged).
            let r = spill.take_round_retries();
            if r > 0 {
                ring.record(EventKind::RetryCount, r);
                retries += r;
            }
        }
        self.trace.faults.retries += retries;
        let total_traffic = self.scratch.sent_words.iter().sum();
        self.trace.rounds.push(RoundStats {
            label: label.to_string(),
            max_sent: self.scratch.sent_words.iter().copied().max().unwrap_or(0),
            max_received: self
                .scratch
                .received_words
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            max_resident,
            total_traffic,
            spill_words,
        });
        self.trace.violations.append(&mut violations);
        // Give the (now empty) violation buffer back for reuse.
        self.scratch.violations = violations;

        self.cp
            .advance(&self.scratch.sent_words, &self.scratch.received_words);
        self.cp.export_into(&mut self.trace.critical_path);

        // Finish every machine's event row for the round — send volume
        // and barrier stall, now that the critical-path advance fixed the
        // round maximum — then drain the rings into the trace and fold
        // the same quantities into the model metrics plane.
        let latest = self.cp.latest();
        for (i, ring) in self.scratch.rings.iter_mut().enumerate() {
            let sent = self.scratch.sent_words[i] as u64;
            let received = self.scratch.received_words[i] as u64;
            let stall = latest[i].stall_words;
            ring.record(EventKind::SentWords, sent);
            ring.record(EventKind::StallWords, stall);
            ring.drain_into(&mut self.trace.events, round_index as u32, i as u32);
            self.metrics.model.words_routed.add(sent);
            self.metrics.model.region_words.record(received);
            self.metrics.model.stall_words.add(stall);
            if stall > 0 {
                self.metrics.model.readiness_waits.inc();
            }
        }
        self.metrics.model.spill_words.add(spill_words);
        // Open this round's host-phase row with the spill seconds; the
        // scheduler fills compute/route via `finish_host_phase` once it
        // knows its own wall-clock split.
        self.metrics.host.spill_s.add(spill_s);
        self.host_phases.push(HostPhase {
            compute_s: 0.0,
            route_s: 0.0,
            spill_s,
        });
    }

    /// Completes the host-phase row opened by [`Self::bookkeep_round`]
    /// with the scheduler's compute/route wall-clock split.
    pub(crate) fn finish_host_phase(&mut self, compute_s: f64, route_s: f64) {
        if let Some(hp) = self.host_phases.last_mut() {
            hp.compute_s = compute_s;
            hp.route_s = route_s;
        }
        self.metrics.host.compute_s.add(compute_s);
        self.metrics.host.route_s.add(route_s);
    }

    /// Host wall-clock seconds per executed round, in round order.
    /// Informational only: host- and thread-count-dependent, never part
    /// of the deterministic [`ExecutionTrace`]. In pipelined mode entry
    /// `k` covers round `k`'s layout/placement plus the overlapped
    /// round-`k+1` compute.
    pub fn round_wall(&self) -> &[f64] {
        &self.round_wall
    }

    /// Per-round host wall-clock split by phase (compute / route /
    /// spill), in round order. Informational, like [`Self::round_wall`];
    /// under the pipelined scheduler overlapped compute is folded into
    /// `route_s` (see [`HostPhase`]).
    pub fn host_phases(&self) -> &[HostPhase] {
        &self.host_phases
    }

    /// The cluster's metrics registry: deterministic model-domain
    /// counters plus informational host-time gauges, updated once per
    /// round by the bookkeeping step.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Messages currently pending delivery to machine `i` (sent in the
    /// last round, visible to the next). Primarily for tests.
    pub fn pending(&self, i: usize) -> &[M] {
        self.inboxes.slice(i)
    }

    /// Base pointer of the shared inbox buffer — stable across
    /// steady-state rounds (buffer-identity probe for the allocation
    /// tests).
    #[doc(hidden)]
    pub fn inbox_buffer_ptr(&self) -> *const M {
        self.inboxes.buffer_ptr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Machine state: a bag of numbers.
    #[derive(Default)]
    struct Bag(Vec<u64>);

    impl Words for Bag {
        fn words(&self) -> usize {
            self.0.len()
        }
    }

    fn cluster(m: usize, s: usize) -> Cluster<Bag, u64> {
        Cluster::new(MpcConfig::new(m, s), |_| Bag::default())
    }

    #[test]
    fn ring_pass() {
        let mut c = cluster(4, 100);
        // Round 1: each machine sends its id to the next.
        c.round("send", |ctx, _state, _inbox| {
            let next = (ctx.id + 1) % ctx.num_machines();
            ctx.send(next, ctx.id as u64);
        });
        // Round 2: each machine stores what it received.
        c.round("store", |ctx, state, inbox| {
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox.as_slice()[0], ((ctx.id + 3) % 4) as u64);
            state.0.extend(inbox);
        });
        assert_eq!(c.trace().num_rounds(), 2);
        assert_eq!(c.state(0).0, vec![3]);
        assert_eq!(c.trace().rounds[0].total_traffic, 4);
        assert_eq!(c.trace().rounds[1].total_traffic, 0);
    }

    #[test]
    fn broadcast_counts_full_cost() {
        let mut c = cluster(5, 100);
        c.round("bcast", |ctx, _s, _i| {
            if ctx.id == 0 {
                ctx.broadcast(7u64);
            }
        });
        assert_eq!(c.trace().rounds[0].max_sent, 5);
        assert_eq!(c.trace().rounds[0].max_received, 1);
        for i in 0..5 {
            assert_eq!(c.pending(i), &[7u64]);
        }
    }

    #[test]
    fn broadcast_reaches_every_machine_in_order() {
        // The last recipient gets the moved original; the delivered value
        // must be indistinguishable from the clones.
        let mut c: Cluster<Bag, Vec<u64>> =
            Cluster::new(MpcConfig::new(3, 100), |_| Bag::default());
        c.round("bcast", |ctx, _s, _i| {
            if ctx.id == 1 {
                ctx.broadcast(vec![1, 2, 3]);
            }
        });
        for i in 0..3 {
            assert_eq!(c.pending(i), &[vec![1, 2, 3]]);
        }
        assert_eq!(c.trace().rounds[0].max_sent, 9);
    }

    #[test]
    fn resident_memory_is_state_plus_inbox() {
        let mut c = cluster(2, 100);
        c.round("fill", |ctx, state, _| {
            state.0 = vec![1; 10]; // 10 resident words
            ctx.send(1 - ctx.id, 9u64);
        });
        assert_eq!(c.trace().rounds[0].max_resident, 11);
    }

    #[test]
    #[should_panic(expected = "MPC violation")]
    fn strict_resident_cap_panics() {
        let mut c = cluster(1, 5);
        c.round("overflow", |_ctx, state, _| {
            state.0 = vec![0; 6];
        });
    }

    #[test]
    #[should_panic(expected = "MPC budget violation")]
    fn enforced_budget_panics_even_in_audit_mode() {
        let cfg = MpcConfig::new(1, 5)
            .audited()
            .with_budget(MemoryBudget::Enforced);
        let mut c: Cluster<Bag, u64> = Cluster::new(cfg, |_| Bag::default());
        c.round("overflow", |_ctx, state, _| {
            state.0 = vec![0; 6];
        });
    }

    #[test]
    fn spilled_words_are_charged_to_the_round() {
        let mut c = cluster(2, 100);
        c.round("spill", |ctx, _state, _| {
            if ctx.id == 1 {
                ctx.spill().write_words(&[1, 2, 3]).unwrap();
            }
        });
        c.round("quiet", |_ctx, _state, _| {});
        assert_eq!(c.trace().rounds[0].spill_words, 3);
        assert_eq!(c.trace().rounds[1].spill_words, 0);
        assert_eq!(c.trace().total_spill(), 3);
    }

    #[test]
    fn spill_files_persist_across_rounds() {
        let mut c = cluster(2, 100);
        c.round("write", |ctx, _state, _| {
            if ctx.id == 0 {
                ctx.spill().write_words(&[10, 20]).unwrap();
            }
        });
        c.round("read back", |ctx, state, _| {
            if ctx.id == 0 {
                let mut buf = [0u64; 4];
                ctx.spill().rewind();
                assert_eq!(ctx.spill().read_words(&mut buf).unwrap(), 2);
                state.0.extend_from_slice(&buf[..2]);
            }
        });
        assert_eq!(c.state(0).0, vec![10, 20]);
    }

    #[test]
    fn audit_mode_records_resident_violation() {
        let mut c: Cluster<Bag, u64> =
            Cluster::new(MpcConfig::new(1, 5).audited(), |_| Bag::default());
        c.round("overflow", |_ctx, state, _| {
            state.0 = vec![0; 8];
        });
        assert_eq!(c.trace().violations.len(), 1);
        assert_eq!(
            c.trace().violations[0].kind,
            ViolationKind::ResidentExceedsMemory
        );
        assert_eq!(c.trace().violations[0].words, 8);
    }

    #[test]
    fn undelivered_messages_carry_one_round_only() {
        let mut c = cluster(2, 10);
        c.round("send", |ctx, _s, _i| {
            if ctx.id == 0 {
                ctx.send(1, 42u64);
            }
        });
        c.round("consume", |ctx, state, inbox| {
            if ctx.id == 1 {
                assert_eq!(inbox.as_slice(), &[42]);
                state.0.extend(inbox);
            } else {
                assert!(inbox.is_empty());
            }
        });
        c.round("empty", |_ctx, _s, inbox| {
            assert!(inbox.is_empty(), "messages must not be redelivered");
        });
    }

    #[test]
    fn unread_inbox_messages_are_dropped_not_redelivered() {
        // A machine that ignores its inbox entirely must not leak or
        // redeliver; the drop runs inside the round.
        let mut c: Cluster<Bag, Vec<u64>> =
            Cluster::new(MpcConfig::new(2, 100), |_| Bag::default());
        c.round("send", |ctx, _s, _i| {
            if ctx.id == 0 {
                ctx.send(1, vec![7; 5]);
            }
        });
        c.round("ignore", |_ctx, _s, _inbox| { /* drop unread */ });
        c.round("check", |_ctx, _s, inbox| assert!(inbox.is_empty()));
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let run = || {
            let mut c = cluster(8, 1000);
            for r in 0..5 {
                c.round("mix", move |ctx, state, inbox| {
                    state.0.extend(inbox);
                    let dest = (ctx.id * 7 + r + 1) % ctx.num_machines();
                    ctx.send(dest, (ctx.id * 100 + r) as u64);
                });
            }
            let (states, trace) = c.finish();
            (states.into_iter().map(|b| b.0).collect::<Vec<_>>(), trace)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn reserve_sends_accepts_hints() {
        let mut c = cluster(3, 100);
        c.round("hinted", |ctx, _s, _i| {
            ctx.reserve_sends(2);
            ctx.send(0, 1u64);
            ctx.send(2, 2u64);
        });
        assert_eq!(c.pending(0).len(), 3);
        assert_eq!(c.pending(2).len(), 3);
    }

    #[test]
    fn finish_returns_states_and_trace() {
        let mut c = cluster(3, 10);
        c.round("noop", |_, _, _| {});
        let (states, trace) = c.finish();
        assert_eq!(states.len(), 3);
        assert_eq!(trace.num_rounds(), 1);
    }
}
