//! Deterministic per-stream randomness.
//!
//! MPC round compression assumes *shared randomness*: every machine can
//! locally evaluate the same random choices (vertex partitions, per-vertex
//! thresholds) without communication. We realize this with counter-style
//! stream derivation: `(seed, stream)` fully determines a generator, so two
//! runs — or two machines — that name the same stream draw identical values.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Well-known stream salts, so unrelated subsystems never collide.
pub mod streams {
    /// Vertex → machine partition draws.
    pub const PARTITION: u64 = 0x7061_7274; // "part"
    /// Per-vertex threshold draws `T_{v,t}`.
    pub const THRESHOLD: u64 = 0x7468_7265; // "thre"
    /// Initial distribution of input edges over machines.
    pub const DISTRIBUTE: u64 = 0x6469_7374; // "dist"
    /// Per-machine scratch randomness.
    pub const MACHINE: u64 = 0x6d61_6368; // "mach"
}

/// Domain tag finishing a `(seed, stream)` derivation.
const STREAM_LEAF: u64 = 0x5354_5245_414d_5f31; // "STREAM_1"
/// Domain tag finishing a `(seed, stream, index)` derivation.
const INDEX_LEAF: u64 = 0x494e_4445_5845_445f; // "INDEXED_"
/// Domain tag finishing a `(seed, stream, [k_0, .., k_{n-1}])` derivation.
/// The component count is absorbed too, so a shorter tuple can never
/// collide with a longer one sharing a prefix.
const COMPOSITE_LEAF: u64 = 0x434f_4d50_4f53_4954; // "COMPOSIT"

/// Derives an independent generator for `(seed, stream)`.
pub fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    // Sequentially chained splitmix64, then seed ChaCha. ChaCha8 is
    // overkill for simulation purposes but guarantees stream independence.
    //
    // The chaining (rather than XOR-combining independently hashed
    // components, as an earlier revision did) matters for determinism
    // *correctness*: XOR is commutative, so hashed components can swap or
    // cancel, making structurally different `(seed, stream, index)`
    // tuples draw the same underlying stream. Chained hashing is
    // order-sensitive, and the distinct leaf tags separate the two- and
    // three-component derivations.
    let mixed = chain(chain(splitmix64(seed), stream), STREAM_LEAF);
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Derives a generator for `(seed, stream, index)` — e.g. per-vertex or
/// per-machine substreams.
pub fn indexed_rng(seed: u64, stream: u64, index: u64) -> ChaCha8Rng {
    let mixed = chain(chain(chain(splitmix64(seed), stream), index), INDEX_LEAF);
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Derives a generator for `(seed, stream, keys[0], keys[1], ...)` with
/// every component absorbed at full 64-bit width.
///
/// This is the derivation to use when the index is logically a tuple
/// (e.g. the threshold key `(phase, vertex, iteration)`): packing tuple
/// components into one `u64` with shifts silently collides once a
/// component outgrows its bit field, whereas chained absorption keeps
/// arbitrary-magnitude components separated. The component count is
/// absorbed as well, so prefix tuples of different lengths stay distinct.
pub fn composite_rng(seed: u64, stream: u64, keys: &[u64]) -> ChaCha8Rng {
    let mut h = chain(splitmix64(seed), stream);
    for &k in keys {
        h = chain(h, k);
    }
    h = chain(h, keys.len() as u64);
    ChaCha8Rng::seed_from_u64(chain(h, COMPOSITE_LEAF))
}

/// One order-sensitive absorption step: feed `value` into the running
/// hash state `h`.
#[inline]
fn chain(h: u64, value: u64) -> u64 {
    splitmix64(h.rotate_left(23) ^ value)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let a: u64 = stream_rng(1, streams::PARTITION).gen();
        let b: u64 = stream_rng(1, streams::PARTITION).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let a: u64 = stream_rng(1, streams::PARTITION).gen();
        let b: u64 = stream_rng(1, streams::THRESHOLD).gen();
        let c: u64 = stream_rng(2, streams::PARTITION).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn indexed_streams_differ() {
        let a: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        let b: u64 = indexed_rng(1, streams::MACHINE, 1).gen();
        assert_ne!(a, b);
        let a2: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn indexed_zero_differs_from_plain_stream() {
        let a: u64 = stream_rng(1, streams::MACHINE).gen();
        let b: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn swapped_stream_and_index_do_not_collide() {
        // Regression: the pre-workspace-bootstrap derivation XOR-combined
        // splitmix64(stream) with splitmix64(index + 0x1234), which is
        // commutative — swapping (stream, index + 0x1234) with
        // (index + 0x1234 - 0, stream - 0x1234) produced the *same*
        // generator for structurally different substreams. The chained
        // derivation must keep every such pair distinct.
        for (s1, i1) in [(streams::PARTITION, streams::THRESHOLD), (7u64, 13u64)] {
            let a: u64 = indexed_rng(1, s1, i1).gen();
            let b: u64 = indexed_rng(1, i1.wrapping_add(0x1234), s1.wrapping_sub(0x1234)).gen();
            assert_ne!(a, b, "commutative-mixing collision for ({s1}, {i1})");
        }
    }

    #[test]
    fn composite_streams_separate_every_component() {
        let base: u64 = composite_rng(1, streams::THRESHOLD, &[2, 3, 4]).gen();
        assert_ne!(
            base,
            composite_rng(2, streams::THRESHOLD, &[2, 3, 4]).gen(),
            "seed"
        );
        assert_ne!(
            base,
            composite_rng(1, streams::PARTITION, &[2, 3, 4]).gen(),
            "stream"
        );
        for i in 0..3 {
            let mut keys = [2u64, 3, 4];
            keys[i] += 1;
            assert_ne!(
                base,
                composite_rng(1, streams::THRESHOLD, &keys).gen(),
                "component {i}"
            );
        }
        // Length is part of the derivation: a prefix is not the tuple.
        assert_ne!(base, composite_rng(1, streams::THRESHOLD, &[2, 3]).gen());
        assert_ne!(
            base,
            composite_rng(1, streams::THRESHOLD, &[2, 3, 4, 0]).gen()
        );
        // And reproducible.
        assert_eq!(base, composite_rng(1, streams::THRESHOLD, &[2, 3, 4]).gen());
    }

    #[test]
    fn composite_differs_from_indexed_and_plain() {
        let a: u64 = composite_rng(1, streams::MACHINE, &[5]).gen();
        let b: u64 = indexed_rng(1, streams::MACHINE, 5).gen();
        let c: u64 = stream_rng(1, streams::MACHINE).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn argument_order_is_significant() {
        let a: u64 = indexed_rng(1, 2, 3).gen();
        let b: u64 = indexed_rng(1, 3, 2).gen();
        let c: u64 = indexed_rng(2, 1, 3).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn draws_are_identical_across_interleavings() {
        // Thread-count independence: a stream's values depend only on its
        // derivation key, never on which other streams were drawn first or
        // concurrently. Simulate two different machine-execution orders.
        let forward: Vec<u64> = (0..16u64)
            .map(|i| indexed_rng(9, streams::MACHINE, i).gen())
            .collect();
        let mut reverse: Vec<u64> = (0..16u64)
            .rev()
            .map(|i| indexed_rng(9, streams::MACHINE, i).gen())
            .collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
    }
}
