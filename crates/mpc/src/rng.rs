//! Deterministic per-stream randomness.
//!
//! MPC round compression assumes *shared randomness*: every machine can
//! locally evaluate the same random choices (vertex partitions, per-vertex
//! thresholds) without communication. We realize this with counter-style
//! stream derivation: `(seed, stream)` fully determines a generator, so two
//! runs — or two machines — that name the same stream draw identical values.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Well-known stream salts, so unrelated subsystems never collide.
pub mod streams {
    /// Vertex → machine partition draws.
    pub const PARTITION: u64 = 0x7061_7274; // "part"
    /// Per-vertex threshold draws `T_{v,t}`.
    pub const THRESHOLD: u64 = 0x7468_7265; // "thre"
    /// Initial distribution of input edges over machines.
    pub const DISTRIBUTE: u64 = 0x6469_7374; // "dist"
    /// Per-machine scratch randomness.
    pub const MACHINE: u64 = 0x6d61_6368; // "mach"
}

/// Derives an independent generator for `(seed, stream)`.
pub fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    // splitmix64 over the pair, then seed ChaCha. ChaCha8 is overkill for
    // simulation purposes but guarantees stream independence.
    let mixed = splitmix64(seed ^ splitmix64(stream));
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Derives a generator for `(seed, stream, index)` — e.g. per-vertex or
/// per-machine substreams.
pub fn indexed_rng(seed: u64, stream: u64, index: u64) -> ChaCha8Rng {
    let mixed = splitmix64(seed ^ splitmix64(stream) ^ splitmix64(index.wrapping_add(0x1234)));
    ChaCha8Rng::seed_from_u64(mixed)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let a: u64 = stream_rng(1, streams::PARTITION).gen();
        let b: u64 = stream_rng(1, streams::PARTITION).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let a: u64 = stream_rng(1, streams::PARTITION).gen();
        let b: u64 = stream_rng(1, streams::THRESHOLD).gen();
        let c: u64 = stream_rng(2, streams::PARTITION).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn indexed_streams_differ() {
        let a: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        let b: u64 = indexed_rng(1, streams::MACHINE, 1).gen();
        assert_ne!(a, b);
        let a2: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn indexed_zero_differs_from_plain_stream() {
        let a: u64 = stream_rng(1, streams::MACHINE).gen();
        let b: u64 = indexed_rng(1, streams::MACHINE, 0).gen();
        assert_ne!(a, b);
    }
}
