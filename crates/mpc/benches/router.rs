//! Criterion bench: the router's destination shuffle, isolated from any
//! algorithm — the pinned microbenchmark for fabric changes.
//!
//! Sweeps machine count (m ∈ {4, 64, 512}, plus 63 as an alignment
//! control: 63 vs 64 separates cache-set aliasing effects from
//! algorithmic ones in perfectly balanced rounds), destination
//! distribution (uniform vs skewed onto one hot machine), and message
//! size (1 word vs 8 words). Each shape is measured three ways:
//!
//! * `flat`  — the production fabric: senders stage into **reused**
//!   [`Outbox`] arenas (run-length destination bucketing), [`route`]
//!   delivers into a **reused** CSR [`FlatInboxes`] buffer,
//! * `prior` — the fabric this one replaced, reproduced verbatim:
//!   unsized `(dest, message)` pair outboxes, per-round inbox `Vec`
//!   allocation, and (at these sizes) the old parallel shuffle's
//!   `Vec<Vec<usize>>` tally/start tables with a cursor clone per
//!   sender,
//! * `naive` — the minimal push shuffle retained as the bit-exactness
//!   oracle ([`reference_shuffle`]): a lower bound with no staging,
//!   accounting bundled into one pass, and allocator-placed buffers.
//!
//! All sides clone each message exactly once per iteration from the same
//! prototype, so the difference is purely fabric overhead. The paths
//! produce bit-identical inboxes (pinned by `tests/fabric_properties.rs`).
//!
//! Numbers from this container carry the usual caveat: one hardware
//! thread, so parallel shuffle stages run sequentially here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpc_sim::router::{reference_shuffle, route, stage_outboxes, FlatInboxes, RouteScratch};
use mpc_sim::{MpcConfig, Words};
use rayon::prelude::*;

/// An 8-word payload — the "fat message" end of the sweep.
#[derive(Clone, Copy)]
struct Big([u64; 8]);

impl Words for Big {
    fn words(&self) -> usize {
        self.0.len()
    }
}

/// Total messages per shape, split evenly across senders. Above the
/// parallel cutover (4096) for every swept machine count.
const TOTAL_MSGS: usize = 16_384;

/// Destination of message `k` from `from` under the given skew. Skewed
/// shapes hammer machine 0 with 80% of all traffic (the hot-aggregator
/// pattern of the executors' stats/gather rounds).
fn dest(m: usize, from: usize, k: usize, skewed: bool) -> usize {
    if skewed && !k.is_multiple_of(5) {
        0
    } else {
        (from * 31 + k * 7) % m
    }
}

/// Prototype pair lists for one shape.
fn prototype<M: Clone>(m: usize, skewed: bool, payload: M) -> Vec<Vec<(usize, M)>> {
    let per = TOTAL_MSGS / m;
    (0..m)
        .map(|from| {
            (0..per)
                .map(|k| (dest(m, from, k, skewed), payload.clone()))
                .collect()
        })
        .collect()
}

/// Raw slot pointer of the prior fabric's place stage.
struct InboxPtr<M>(*mut M);
// SAFETY: the wrapper only hands out raw pointers; the place stage
// writes disjoint slot ranges per sender.
unsafe impl<M: Send> Send for InboxPtr<M> {}
// SAFETY: as above — shared access is to disjoint ranges only.
unsafe impl<M: Send> Sync for InboxPtr<M> {}

impl<M> InboxPtr<M> {
    fn slot(&self, index: usize) -> *mut M {
        // SAFETY: callers stay within the reserved capacity.
        unsafe { self.0.add(index) }
    }
}

/// The shuffle this PR's fabric replaced, reproduced verbatim: the old
/// three-stage parallel path with per-sender `Vec` tallies, a
/// `Vec<Vec<usize>>` start table built from a cursor clone per sender,
/// and freshly allocated inbox `Vec`s. The old router took this path
/// unconditionally at >= 4096 messages, on any thread count.
#[allow(clippy::type_complexity)]
fn prior_shuffle<M: Words + Send + Sync>(
    m: usize,
    outboxes: Vec<Vec<(usize, M)>>,
) -> (Vec<Vec<M>>, Vec<usize>, Vec<usize>) {
    struct Tally {
        sent: usize,
        msgs_to: Vec<u32>,
        words_to: Vec<usize>,
    }
    let tallies: Vec<Tally> = outboxes
        .par_iter()
        .enumerate()
        .map(|(from, outbox)| {
            let mut t = Tally {
                sent: 0,
                msgs_to: vec![0u32; m],
                words_to: vec![0usize; m],
            };
            for (to, msg) in outbox {
                assert!(*to < m, "machine {from} addressed nonexistent machine {to}");
                let w = msg.words();
                t.sent += w;
                t.words_to[*to] += w;
                t.msgs_to[*to] += 1;
            }
            t
        })
        .collect();

    let sent_words: Vec<usize> = tallies.iter().map(|t| t.sent).collect();
    let mut received_words = vec![0usize; m];
    let mut recv_msgs = vec![0usize; m];
    for t in &tallies {
        for (to, (rw, rm)) in received_words.iter_mut().zip(&mut recv_msgs).enumerate() {
            *rw += t.words_to[to];
            *rm += t.msgs_to[to] as usize;
        }
    }
    let mut starts: Vec<Vec<usize>> = Vec::with_capacity(m);
    let mut cursor = vec![0usize; m];
    for t in &tallies {
        starts.push(cursor.clone());
        for (to, c) in cursor.iter_mut().enumerate() {
            *c += t.msgs_to[to] as usize;
        }
    }

    let mut inboxes: Vec<Vec<M>> = recv_msgs.iter().map(|&n| Vec::with_capacity(n)).collect();
    let bases: Vec<InboxPtr<M>> = inboxes
        .iter_mut()
        .map(|v| InboxPtr(v.as_mut_ptr()))
        .collect();
    outboxes
        .into_par_iter()
        .zip(starts.into_par_iter())
        .for_each(|(outbox, mut next)| {
            for (to, msg) in outbox {
                // SAFETY: disjoint slots by the prefix-sum layout.
                unsafe { bases[to].slot(next[to]).write(msg) };
                next[to] += 1;
            }
        });
    for (inbox, &n) in inboxes.iter_mut().zip(&recv_msgs) {
        // SAFETY: exactly `n` slots were initialized above.
        unsafe { inbox.set_len(n) };
    }
    (inboxes, sent_words, received_words)
}

fn bench_shape<M: Words + Clone + Send + Sync>(
    c: &mut Criterion,
    label: &str,
    m: usize,
    skewed: bool,
    payload: M,
) {
    let pairs = prototype(m, skewed, payload);
    let shape = format!("m{m}/{}/{label}", if skewed { "skewed" } else { "uniform" });
    let config = MpcConfig::new(m, usize::MAX / 4);
    let mut group = c.benchmark_group("router");
    group.throughput(Throughput::Elements(TOTAL_MSGS as u64));

    // Production fabric, buffers reused across iterations as the cluster
    // reuses them across rounds.
    let mut outboxes = stage_outboxes(m, prototype(m, skewed, pairs[0][0].1.clone()));
    let mut inboxes = FlatInboxes::new(m);
    let mut scratch = RouteScratch::new();
    // Warm the buffers, then drain so the timed loop starts clean.
    route(&config, 0, &mut outboxes, &mut inboxes, &mut scratch);
    group.bench_with_input(BenchmarkId::new("flat", &shape), &pairs, |b, pairs| {
        b.iter(|| {
            // Discard last iteration's delivery (capacity retained), then
            // stage and route this round into the recycled buffers.
            inboxes.clear();
            for (outbox, list) in outboxes.iter_mut().zip(pairs) {
                for (to, msg) in list {
                    outbox.push(*to, msg.clone());
                }
            }
            route(&config, 0, &mut outboxes, &mut inboxes, &mut scratch);
            inboxes.total_messages()
        })
    });

    // The replaced fabric: pair-list outboxes staged fresh each round,
    // old parallel shuffle, freshly allocated inboxes.
    group.bench_with_input(BenchmarkId::new("prior", &shape), &pairs, |b, pairs| {
        b.iter(|| {
            let staged: Vec<Vec<(usize, M)>> = pairs
                .iter()
                .map(|list| {
                    let mut out = Vec::new();
                    for (to, msg) in list {
                        out.push((*to, msg.clone()));
                    }
                    out
                })
                .collect();
            let (inb, ..) = prior_shuffle(m, staged);
            inb.len()
        })
    });

    // Pre-flat reference: fresh per-destination Vec pushes.
    group.bench_with_input(BenchmarkId::new("naive", &shape), &pairs, |b, pairs| {
        b.iter(|| {
            let staged: Vec<Vec<(usize, M)>> = pairs
                .iter()
                .map(|list| {
                    let mut out = Vec::new();
                    for (to, msg) in list {
                        out.push((*to, msg.clone()));
                    }
                    out
                })
                .collect();
            let (inb, ..) = reference_shuffle(m, staged);
            inb.len()
        })
    });
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    for &m in &[4usize, 63, 64, 512] {
        for &skewed in &[false, true] {
            bench_shape(c, "small", m, skewed, 7u64);
            bench_shape(c, "large", m, skewed, Big([7; 8]));
        }
    }
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
