//! Induced subgraph extraction with vertex remapping.
//!
//! The MPC algorithm's central operation is: partition the vertices at
//! random, then hand each machine the subgraph *induced* by its part
//! (Algorithm 2, line 2f-2g). [`InducedSubgraph`] extracts that subgraph
//! into a compact local id space while remembering the global ids.

use crate::csr::{Graph, VertexId};

/// The subgraph induced by a vertex subset, with dense local ids
/// `0..k` and a two-way mapping to the original graph's ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The induced subgraph over local ids.
    pub graph: Graph,
    /// `local_to_global[local] = global`.
    pub local_to_global: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph of `g` induced by `vertices`.
    ///
    /// `vertices` may be in any order; duplicates panic in debug builds.
    /// Runs in `O(Σ_{v ∈ S} deg(v))` using a global scatter array, so
    /// repeated extraction over a partition of V totals `O(n + m)`.
    pub fn extract(g: &Graph, vertices: &[VertexId]) -> Self {
        let mut global_to_local = vec![u32::MAX; g.num_vertices()];
        for (local, &v) in vertices.iter().enumerate() {
            debug_assert_eq!(
                global_to_local[v as usize],
                u32::MAX,
                "duplicate vertex {v} in induced set"
            );
            global_to_local[v as usize] = local as u32;
        }
        let mut b = crate::builder::GraphBuilder::new(vertices.len());
        for (local_u, &gu) in vertices.iter().enumerate() {
            for &gv in g.neighbors(gu) {
                let local_v = global_to_local[gv as usize];
                if local_v != u32::MAX && (local_u as u32) < local_v {
                    b.add_edge(local_u as VertexId, local_v);
                }
            }
        }
        Self {
            graph: b.build(),
            local_to_global: vertices.to_vec(),
        }
    }

    /// Like [`extract`](Self::extract) but reuses a caller-provided scatter
    /// buffer of size `g.num_vertices()` (must be filled with `u32::MAX`);
    /// the buffer is restored before returning. Avoids `O(n)` allocation
    /// per machine when extracting a whole partition.
    pub fn extract_with_scratch(g: &Graph, vertices: &[VertexId], scratch: &mut [u32]) -> Self {
        assert_eq!(scratch.len(), g.num_vertices());
        for (local, &v) in vertices.iter().enumerate() {
            debug_assert_eq!(scratch[v as usize], u32::MAX);
            scratch[v as usize] = local as u32;
        }
        let mut b = crate::builder::GraphBuilder::new(vertices.len());
        for (local_u, &gu) in vertices.iter().enumerate() {
            for &gv in g.neighbors(gu) {
                let local_v = scratch[gv as usize];
                if local_v != u32::MAX && (local_u as u32) < local_v {
                    b.add_edge(local_u as VertexId, local_v);
                }
            }
        }
        for &v in vertices {
            scratch[v as usize] = u32::MAX;
        }
        Self {
            graph: b.build(),
            local_to_global: vertices.to_vec(),
        }
    }

    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges in the subgraph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Maps a local id back to the original graph's id.
    pub fn global(&self, local: VertexId) -> VertexId {
        self.local_to_global[local as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique, gnp};

    #[test]
    fn induced_triangle_from_clique() {
        let g = clique(6);
        let sub = InducedSubgraph::extract(&g, &[1, 3, 5]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.global(0), 1);
        assert_eq!(sub.global(2), 5);
    }

    #[test]
    fn induced_preserves_only_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let sub = InducedSubgraph::extract(&g, &[0, 1, 3]);
        // Only (0,1) is internal; (2,3),(3,4) cross out.
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.graph.has_edge(0, 1));
    }

    #[test]
    fn empty_subset() {
        let g = clique(4);
        let sub = InducedSubgraph::extract(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn scratch_variant_matches_and_restores() {
        let g = gnp(200, 0.05, 3);
        let mut scratch = vec![u32::MAX; g.num_vertices()];
        let set: Vec<VertexId> = (0..100).collect();
        let a = InducedSubgraph::extract(&g, &set);
        let b = InducedSubgraph::extract_with_scratch(&g, &set, &mut scratch);
        assert_eq!(a.graph, b.graph);
        assert!(scratch.iter().all(|&x| x == u32::MAX), "scratch restored");
    }

    #[test]
    fn partition_edges_sum_to_internal_edges() {
        // Extracting over a partition counts each internal edge exactly once.
        let g = gnp(300, 0.03, 9);
        let parts: Vec<Vec<VertexId>> = (0..3)
            .map(|i| {
                (0..300)
                    .filter(|v| v % 3 == i)
                    .map(|v| v as VertexId)
                    .collect()
            })
            .collect();
        let sum: usize = parts
            .iter()
            .map(|p| InducedSubgraph::extract(&g, p).num_edges())
            .sum();
        let internal = g.edges().filter(|e| e.u() % 3 == e.v() % 3).count();
        assert_eq!(sum, internal);
    }
}
