//! Out-of-core graph storage: a chunked on-disk CSR format, a streaming
//! builder that sorts and deduplicates under an explicit byte budget, and
//! a bounded-buffer bucket reader.
//!
//! # The format (`OCSR`, version 1)
//!
//! A chunked-CSR file holds the half-edge array of a simple undirected
//! graph — every edge `{u, v}` appears twice, as `(u, v)` and `(v, u)` —
//! globally sorted by `(src, dst)` and deduplicated, cut into fixed-size
//! *buckets* of [`DEFAULT_BUCKET_ENTRIES`] entries each (only the last
//! bucket may be short). Because the array is sorted by source, a bucket
//! range is exactly a contiguous adjacency shard, and the per-bucket index
//! (first source vertex + entry count) lets a consumer map any contiguous
//! bucket range to the source-vertex span it covers without touching the
//! payload.
//!
//! Layout, all little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "OCSR"
//! 4       4     version (u32, = 1)
//! 8       8     n          (u64, vertex count)
//! 16      8     half_edges (u64, total entries = 2·m)
//! 24      4     bucket_entries (u32, max entries per bucket)
//! 28      4     reserved (0)
//! 32      8     num_buckets (u64)
//! 40      —     payload: half_edges × (src: u32, dst: u32)
//! then    —     index: num_buckets × (first_src: u32, entries: u32)
//! ```
//!
//! # Memory discipline
//!
//! [`StreamingGraphBuilder`] never holds more than its byte budget of
//! half-edges in RAM: it accumulates packed half-edges into a bounded
//! buffer, sorts and deduplicates bucket-by-bucket into on-disk *runs*,
//! and k-way-merges the runs into the final bucketed file, splitting the
//! same budget across the run readers. [`BucketStream`] reads buckets
//! back through one reusable bucket-sized buffer. Peak resident memory of
//! the whole build-then-stream pipeline is `O(byte_budget)` regardless of
//! the edge count.
//!
//! The produced graph is **identical** to what [`GraphBuilder`](crate::GraphBuilder) builds
//! from the same edge sequence: both paths end at the sorted, deduplicated
//! half-edge array, so [`ChunkedCsr::load_graph`] on the file equals
//! [`GraphBuilder::build`](crate::GraphBuilder::build) on the same inserts (pinned by tests).

use crate::builder::EdgeSink;
use crate::csr::{Graph, VertexId};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes of the chunked-CSR format.
pub const OCSR_MAGIC: [u8; 4] = *b"OCSR";
/// Current format version.
pub const OCSR_VERSION: u32 = 1;
/// Byte offset where the bucket payload starts.
const HEADER_BYTES: u64 = 40;
/// Default entries per bucket (64 Ki half-edges = 512 KiB payload).
pub const DEFAULT_BUCKET_ENTRIES: u32 = 1 << 16;
/// Smallest half-edge buffer the streaming builder will run with, in
/// entries; budgets below this are rounded up so the builder always
/// makes progress.
const MIN_BUFFER_ENTRIES: usize = 1 << 10;

/// Packs a directed half-edge into one `u64` word (`src` in the high
/// half), preserving `(src, dst)` lexicographic order under integer
/// comparison.
#[inline]
pub fn pack_half_edge(src: VertexId, dst: VertexId) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Inverse of [`pack_half_edge`].
#[inline]
pub fn unpack_half_edge(packed: u64) -> (VertexId, VertexId) {
    ((packed >> 32) as VertexId, packed as u32)
}

fn io_err<T>(path: &Path, what: &str, e: std::io::Error) -> Result<T, String> {
    Err(format!("{what} {path:?}: {e}"))
}

/// Reinterprets a word slice as bytes for bulk file I/O.
fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding; every byte pattern is valid; the length
    // is scaled by the element size. Lifetime is tied to the input slice.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Reinterprets a mutable word slice as bytes for bulk file I/O.
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as in `words_as_bytes`, and any byte pattern read into the
    // buffer is a valid u64. Files written by this module are same-machine
    // temporaries, so no endianness conversion is needed.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
}

/// One entry of the bucket index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketIndexEntry {
    /// Source vertex of the bucket's first half-edge.
    pub first_src: VertexId,
    /// Number of half-edges stored in the bucket (equals the file's
    /// `bucket_entries` for every bucket but possibly the last).
    pub entries: u32,
}

/// An opened chunked-CSR file: the parsed header and bucket index (a few
/// words per bucket — the only part held in RAM) plus the path, from
/// which any number of independent [`BucketStream`] readers can be
/// opened. Cheap to share across threads; holds no file handle itself.
#[derive(Debug, Clone)]
pub struct ChunkedCsr {
    path: PathBuf,
    n: u64,
    half_edges: u64,
    bucket_entries: u32,
    index: Vec<BucketIndexEntry>,
}

impl ChunkedCsr {
    /// Opens and validates a chunked-CSR file, reading only the header
    /// and the bucket index.
    pub fn open(path: impl Into<PathBuf>) -> Result<ChunkedCsr, String> {
        let path = path.into();
        let mut f = match File::open(&path) {
            Ok(f) => f,
            Err(e) => return io_err(&path, "cannot open", e),
        };
        let mut header = [0u8; HEADER_BYTES as usize];
        if let Err(e) = f.read_exact(&mut header) {
            return io_err(&path, "cannot read header of", e);
        }
        if header[0..4] != OCSR_MAGIC {
            return Err(format!("{path:?} is not a chunked-CSR file (bad magic)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != OCSR_VERSION {
            return Err(format!(
                "{path:?} has chunked-CSR version {version}, this build reads {OCSR_VERSION}"
            ));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let half_edges = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let bucket_entries = u32::from_le_bytes(header[24..28].try_into().unwrap());
        let num_buckets = u64::from_le_bytes(header[32..40].try_into().unwrap());
        if bucket_entries == 0 {
            return Err(format!("{path:?}: zero bucket size"));
        }
        if num_buckets != half_edges.div_ceil(bucket_entries as u64) {
            return Err(format!(
                "{path:?}: bucket count {num_buckets} inconsistent with \
                 {half_edges} entries of {bucket_entries}"
            ));
        }
        if let Err(e) = f.seek(SeekFrom::Start(HEADER_BYTES + half_edges * 8)) {
            return io_err(&path, "cannot seek to index of", e);
        }
        let mut raw = vec![0u8; num_buckets as usize * 8];
        if let Err(e) = f.read_exact(&mut raw) {
            return io_err(&path, "cannot read bucket index of", e);
        }
        let index: Vec<BucketIndexEntry> = raw
            .chunks_exact(8)
            .map(|c| BucketIndexEntry {
                first_src: u32::from_le_bytes(c[0..4].try_into().unwrap()),
                entries: u32::from_le_bytes(c[4..8].try_into().unwrap()),
            })
            .collect();
        let indexed: u64 = index.iter().map(|b| b.entries as u64).sum();
        if indexed != half_edges {
            return Err(format!(
                "{path:?}: index covers {indexed} entries, header says {half_edges}"
            ));
        }
        Ok(ChunkedCsr {
            path,
            n,
            half_edges,
            bucket_entries,
            index,
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of undirected edges (half the stored entries).
    pub fn num_edges(&self) -> u64 {
        self.half_edges / 2
    }

    /// Number of stored half-edges (`2·m`).
    pub fn num_half_edges(&self) -> u64 {
        self.half_edges
    }

    /// Maximum entries per bucket.
    pub fn bucket_entries(&self) -> u32 {
        self.bucket_entries
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.index.len()
    }

    /// The bucket index: first source vertex and entry count per bucket.
    pub fn bucket_index(&self) -> &[BucketIndexEntry] {
        &self.index
    }

    /// Total half-edges in the contiguous bucket range `lo..hi`.
    pub fn entries_in_buckets(&self, lo: usize, hi: usize) -> u64 {
        self.index[lo..hi].iter().map(|b| b.entries as u64).sum()
    }

    /// Opens a reader over the contiguous bucket range `lo..hi` with its
    /// own file handle (independent readers may stream concurrently).
    pub fn stream_range(&self, lo: usize, hi: usize) -> Result<BucketStream, String> {
        assert!(
            lo <= hi && hi <= self.index.len(),
            "bucket range out of bounds"
        );
        let mut f = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) => return io_err(&self.path, "cannot open", e),
        };
        let first_entry: u64 = self.entries_in_buckets(0, lo);
        if let Err(e) = f.seek(SeekFrom::Start(HEADER_BYTES + first_entry * 8)) {
            return io_err(&self.path, "cannot seek in", e);
        }
        Ok(BucketStream {
            file: f,
            sizes: self.index[lo..hi].iter().map(|b| b.entries).collect(),
            next: 0,
            words: vec![0u64; self.bucket_entries as usize],
            entries: Vec::with_capacity(self.bucket_entries as usize),
        })
    }

    /// Opens a reader over every bucket.
    pub fn stream(&self) -> Result<BucketStream, String> {
        self.stream_range(0, self.index.len())
    }

    /// Degree of every vertex, computed in one bounded-memory pass over
    /// the file (`O(n)` result + one bucket buffer).
    pub fn degrees(&self) -> Result<Vec<u32>, String> {
        let mut deg = vec![0u32; self.n as usize];
        let mut s = self.stream()?;
        while let Some(bucket) = s.next_bucket()? {
            for &(src, _) in bucket {
                deg[src as usize] += 1;
            }
        }
        Ok(deg)
    }

    /// Materializes the full in-memory [`Graph`]. This intentionally
    /// abandons the memory bound (`O(m)` RAM) — it exists for control
    /// instances and tests that compare the streamed pipeline against the
    /// in-memory one.
    pub fn load_graph(&self) -> Result<Graph, String> {
        let deg = self.degrees()?;
        let n = self.n as usize;
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v] as usize;
        }
        let mut flat = vec![0 as VertexId; offsets[n]];
        let mut write = 0usize;
        let mut s = self.stream()?;
        while let Some(bucket) = s.next_bucket()? {
            for &(_, dst) in bucket {
                flat[write] = dst;
                write += 1;
            }
        }
        debug_assert_eq!(write, offsets[n]);
        Ok(Graph::from_csr_unchecked(offsets, flat))
    }
}

/// A bounded-buffer reader over a contiguous bucket range of a
/// [`ChunkedCsr`] file: one bucket of half-edges is resident at a time,
/// in one buffer reused across buckets.
pub struct BucketStream {
    file: File,
    /// Entry counts of the remaining buckets, in order.
    sizes: Vec<u32>,
    next: usize,
    /// Reusable packed read buffer.
    words: Vec<u64>,
    /// Reusable decoded view handed to the caller.
    entries: Vec<(VertexId, VertexId)>,
}

impl BucketStream {
    /// Reads the next bucket into the reusable buffer, returning its
    /// half-edges (sorted by `(src, dst)`), or `None` after the last
    /// bucket of the range.
    pub fn next_bucket(&mut self) -> Result<Option<&[(VertexId, VertexId)]>, String> {
        let Some(&count) = self.sizes.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        let count = count as usize;
        self.words.resize(count, 0);
        if let Err(e) = self.file.read_exact(words_as_bytes_mut(&mut self.words)) {
            return Err(format!("short read in chunked-CSR payload: {e}"));
        }
        self.entries.clear();
        self.entries.extend(
            self.words
                .iter()
                .map(|&w| unpack_half_edge(u64::from_le(w))),
        );
        Ok(Some(&self.entries))
    }

    /// Buckets left to read (including the one `next_bucket` would return).
    pub fn buckets_remaining(&self) -> usize {
        self.sizes.len() - self.next
    }
}

/// Streaming writer of a chunked-CSR file. Input must be strictly
/// increasing packed half-edges (sorted, deduplicated); the writer cuts
/// them into fixed-size buckets and assembles the index and header.
struct ChunkedCsrWriter {
    path: PathBuf,
    file: File,
    bucket_entries: u32,
    bucket: Vec<u64>,
    index: Vec<BucketIndexEntry>,
    written: u64,
    last: Option<u64>,
}

impl ChunkedCsrWriter {
    fn create(path: &Path, n: u64, bucket_entries: u32) -> Result<Self, String> {
        assert!(bucket_entries > 0);
        let mut file = match File::create(path) {
            Ok(f) => f,
            Err(e) => return io_err(path, "cannot create", e),
        };
        // Placeholder header; half_edges and num_buckets are patched in
        // `finish`.
        let mut header = [0u8; HEADER_BYTES as usize];
        header[0..4].copy_from_slice(&OCSR_MAGIC);
        header[4..8].copy_from_slice(&OCSR_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&n.to_le_bytes());
        header[24..28].copy_from_slice(&bucket_entries.to_le_bytes());
        if let Err(e) = file.write_all(&header) {
            return io_err(path, "cannot write header of", e);
        }
        Ok(ChunkedCsrWriter {
            path: path.to_path_buf(),
            file,
            bucket_entries,
            bucket: Vec::with_capacity(bucket_entries as usize),
            index: Vec::new(),
            written: 0,
            last: None,
        })
    }

    fn push(&mut self, packed: u64) -> Result<(), String> {
        debug_assert!(
            self.last.is_none_or(|l| l < packed),
            "chunked-CSR writer requires strictly increasing input"
        );
        self.last = Some(packed);
        self.bucket.push(packed.to_le());
        if self.bucket.len() == self.bucket_entries as usize {
            self.flush_bucket()?;
        }
        Ok(())
    }

    fn flush_bucket(&mut self) -> Result<(), String> {
        if self.bucket.is_empty() {
            return Ok(());
        }
        let first_src = (u64::from_le(self.bucket[0]) >> 32) as u32;
        self.index.push(BucketIndexEntry {
            first_src,
            entries: self.bucket.len() as u32,
        });
        self.written += self.bucket.len() as u64;
        if let Err(e) = self.file.write_all(words_as_bytes(&self.bucket)) {
            return io_err(&self.path, "cannot write bucket to", e);
        }
        self.bucket.clear();
        Ok(())
    }

    fn finish(mut self) -> Result<ChunkedCsr, String> {
        self.flush_bucket()?;
        let mut raw = Vec::with_capacity(self.index.len() * 8);
        for b in &self.index {
            raw.extend_from_slice(&b.first_src.to_le_bytes());
            raw.extend_from_slice(&b.entries.to_le_bytes());
        }
        if let Err(e) = self.file.write_all(&raw) {
            return io_err(&self.path, "cannot write index to", e);
        }
        if let Err(e) = self.file.seek(SeekFrom::Start(16)) {
            return io_err(&self.path, "cannot seek in", e);
        }
        let mut patch = [0u8; 8];
        patch.copy_from_slice(&self.written.to_le_bytes());
        if let Err(e) = self.file.write_all(&patch) {
            return io_err(&self.path, "cannot patch header of", e);
        }
        if let Err(e) = self.file.seek(SeekFrom::Start(32)) {
            return io_err(&self.path, "cannot seek in", e);
        }
        patch.copy_from_slice(&(self.index.len() as u64).to_le_bytes());
        if let Err(e) = self.file.write_all(&patch) {
            return io_err(&self.path, "cannot patch header of", e);
        }
        if let Err(e) = self.file.sync_all() {
            return io_err(&self.path, "cannot sync", e);
        }
        ChunkedCsr::open(self.path)
    }
}

/// A buffered sorted-run reader for the k-way merge in
/// [`StreamingGraphBuilder::finish`].
struct RunReader {
    file: File,
    buf: Vec<u64>,
    pos: usize,
    remaining_words: u64,
    chunk: usize,
}

impl RunReader {
    fn open(path: &Path, chunk: usize) -> Result<Self, String> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => return io_err(path, "cannot reopen run", e),
        };
        let remaining_words = match file.metadata() {
            Ok(m) => m.len() / 8,
            Err(e) => return io_err(path, "cannot stat run", e),
        };
        Ok(RunReader {
            file,
            buf: Vec::new(),
            pos: 0,
            remaining_words,
            chunk,
        })
    }

    fn next(&mut self) -> Result<Option<u64>, String> {
        if self.pos == self.buf.len() {
            let take = (self.remaining_words as usize).min(self.chunk);
            if take == 0 {
                return Ok(None);
            }
            self.buf.resize(take, 0);
            if let Err(e) = self.file.read_exact(words_as_bytes_mut(&mut self.buf)) {
                return Err(format!("short read in sorted run: {e}"));
            }
            self.remaining_words -= take as u64;
            self.pos = 0;
        }
        let w = u64::from_le(self.buf[self.pos]);
        self.pos += 1;
        Ok(Some(w))
    }
}

/// Accumulates undirected edges like [`GraphBuilder`](crate::GraphBuilder), but under an
/// explicit byte budget: half-edges beyond the budget are sorted,
/// deduplicated, and flushed to on-disk runs, and
/// [`finish`](StreamingGraphBuilder::finish) merges the runs into a
/// bucketed [`ChunkedCsr`] file. The resulting graph is identical to
/// `GraphBuilder` fed the same edge sequence; only the peak RAM differs.
pub struct StreamingGraphBuilder {
    n: usize,
    /// In-RAM packed half-edges, bounded by the byte budget.
    buf: Vec<u64>,
    cap: usize,
    runs: Vec<PathBuf>,
    scratch_dir: PathBuf,
    tag: String,
    half_edges_pushed: u64,
    byte_budget: usize,
    /// First run-flush failure, latched: `add_edge` is infallible by
    /// signature ([`EdgeSink`]), so a failed flush parks its error here
    /// and [`finish`](Self::finish) surfaces it as a typed `Err` instead
    /// of panicking mid-stream.
    deferred_error: Option<String>,
}

impl StreamingGraphBuilder {
    /// New streaming builder for a graph on vertices `0..n` whose build
    /// pipeline keeps at most roughly `byte_budget` bytes of half-edges
    /// resident (floored at a small working minimum). Run files are
    /// written to `scratch_dir` (the system temp directory if `None`).
    pub fn new(n: usize, byte_budget: usize, scratch_dir: Option<&Path>) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        let cap = (byte_budget / 8).max(MIN_BUFFER_ENTRIES);
        let scratch_dir = scratch_dir
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        // Unique per builder instance: concurrent builders (e.g. parallel
        // tests) must not collide on run-file names.
        static NEXT_TAG: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let uniq = NEXT_TAG.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tag = format!("ocsr-run-{}-{uniq}", std::process::id());
        StreamingGraphBuilder {
            n,
            buf: Vec::with_capacity(cap),
            cap,
            runs: Vec::new(),
            scratch_dir,
            tag,
            half_edges_pushed: 0,
            byte_budget,
            deferred_error: None,
        }
    }

    /// Number of vertices this builder targets.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Half-edges pushed so far (before deduplication).
    pub fn half_edges_pushed(&self) -> u64 {
        self.half_edges_pushed
    }

    /// Adds the undirected edge `(u, v)`; duplicates collapse at
    /// [`finish`](Self::finish) time, self-loops panic (matching
    /// [`GraphBuilder::add_edge`](crate::GraphBuilder::add_edge)).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert_ne!(u, v, "self-loops are not representable");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        if self.buf.len() + 2 > self.cap {
            if let Err(e) = self.flush_run() {
                // Keep the memory bound even while broken: drop the
                // buffered half-edges (finish errors out anyway).
                self.buf.clear();
                self.deferred_error.get_or_insert(e);
            }
        }
        self.buf.push(pack_half_edge(u, v));
        self.buf.push(pack_half_edge(v, u));
        self.half_edges_pushed += 2;
    }

    fn run_path(&self, i: usize) -> PathBuf {
        self.scratch_dir.join(format!("{}-{i}.run", self.tag))
    }

    /// Sorts and deduplicates the in-RAM buffer and writes it out as one
    /// sorted run.
    fn flush_run(&mut self) -> Result<(), String> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self.run_path(self.runs.len());
        let mut f = match File::create(&path) {
            Ok(f) => f,
            Err(e) => return io_err(&path, "cannot create run", e),
        };
        // Byte order: runs are same-machine temporaries, stored native;
        // the final bucketed file is written little-endian by the writer.
        let le: Vec<u64> = self.buf.iter().map(|w| w.to_le()).collect();
        if let Err(e) = f.write_all(words_as_bytes(&le)) {
            return io_err(&path, "cannot write run", e);
        }
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Merges all runs (and the in-RAM tail) into the bucketed file at
    /// `out_path` with [`DEFAULT_BUCKET_ENTRIES`]-sized buckets, deletes
    /// the runs, and opens the result.
    pub fn finish(self, out_path: &Path) -> Result<ChunkedCsr, String> {
        self.finish_with_buckets(out_path, DEFAULT_BUCKET_ENTRIES)
    }

    /// [`finish`](Self::finish) with an explicit bucket size (mainly for
    /// tests that want many small buckets).
    pub fn finish_with_buckets(
        mut self,
        out_path: &Path,
        bucket_entries: u32,
    ) -> Result<ChunkedCsr, String> {
        if let Some(e) = self.deferred_error.take() {
            return Err(format!("add_edge run flush failed earlier: {e}"));
        }
        let mut writer = ChunkedCsrWriter::create(out_path, self.n as u64, bucket_entries)?;
        if self.runs.is_empty() {
            // Single-run fast path: everything fit in the budget.
            self.buf.sort_unstable();
            self.buf.dedup();
            for &w in &self.buf {
                writer.push(w)?;
            }
            return writer.finish();
        }
        self.flush_run()?;
        // K-way merge under the same budget: each run reader gets an
        // equal slice of the byte budget as its read-ahead chunk.
        let k = self.runs.len();
        let chunk = ((self.byte_budget / 8) / k).max(MIN_BUFFER_ENTRIES / 4);
        let mut readers = Vec::with_capacity(k);
        for p in &self.runs {
            readers.push(RunReader::open(p, chunk)?);
        }
        // Min-heap via Reverse; ties across runs are exact duplicates and
        // collapse below.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::with_capacity(k);
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(w) = r.next()? {
                heap.push(std::cmp::Reverse((w, i)));
            }
        }
        let mut last: Option<u64> = None;
        while let Some(std::cmp::Reverse((w, i))) = heap.pop() {
            if last != Some(w) {
                writer.push(w)?;
                last = Some(w);
            }
            if let Some(next) = readers[i].next()? {
                heap.push(std::cmp::Reverse((next, i)));
            }
        }
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
        self.runs.clear();
        writer.finish()
    }
}

impl Drop for StreamingGraphBuilder {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl EdgeSink for StreamingGraphBuilder {
    #[inline]
    fn add_edge(&mut self, u: VertexId, v: VertexId) {
        StreamingGraphBuilder::add_edge(self, u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ocsr-test-{}-{name}", std::process::id()))
    }

    /// A deterministic pseudo-random edge sequence with duplicates.
    fn edge_sequence(n: u32, count: u64) -> Vec<(u32, u32)> {
        (0..count)
            .filter_map(|i| {
                let u = ((i.wrapping_mul(2654435761)) % n as u64) as u32;
                let v = ((i.wrapping_mul(40503).wrapping_add(7)) % n as u64) as u32;
                (u != v).then_some((u, v))
            })
            .collect()
    }

    #[test]
    fn pack_preserves_order_and_roundtrips() {
        let pairs = [(0u32, 1u32), (0, 2), (1, 0), (7, 3), (u32::MAX, 0)];
        let mut packed: Vec<u64> = pairs.iter().map(|&(u, v)| pack_half_edge(u, v)).collect();
        packed.sort_unstable();
        let mut sorted = pairs.to_vec();
        sorted.sort_unstable();
        let unpacked: Vec<(u32, u32)> = packed.iter().map(|&w| unpack_half_edge(w)).collect();
        assert_eq!(unpacked, sorted);
    }

    #[test]
    fn streamed_build_equals_in_memory_build() {
        let n = 300u32;
        let edges = edge_sequence(n, 20_000);
        let mut mem = GraphBuilder::new(n as usize);
        // Tiny budget: forces many runs and a real k-way merge.
        let mut ooc = StreamingGraphBuilder::new(n as usize, 4096, None);
        for &(u, v) in &edges {
            mem.add_edge(u, v);
            ooc.add_edge(u, v);
        }
        let path = tmp("equal.ocsr");
        let csr = ooc.finish_with_buckets(&path, 512).unwrap();
        let g_mem = mem.build();
        let g_ooc = csr.load_graph().unwrap();
        assert_eq!(g_mem, g_ooc);
        assert_eq!(csr.num_edges() as usize, g_mem.num_edges());
        assert_eq!(csr.num_vertices(), n as usize);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn single_run_fast_path_equals_merged_path() {
        let n = 120u32;
        let edges = edge_sequence(n, 3_000);
        let build = |budget: usize, name: &str| {
            let mut b = StreamingGraphBuilder::new(n as usize, budget, None);
            for &(u, v) in &edges {
                b.add_edge(u, v);
            }
            let path = tmp(name);
            let csr = b.finish_with_buckets(&path, 256).unwrap();
            let g = csr.load_graph().unwrap();
            let _ = std::fs::remove_file(path);
            g
        };
        assert_eq!(build(1 << 26, "big.ocsr"), build(1, "small.ocsr"));
    }

    #[test]
    fn bucket_index_covers_sorted_contiguous_shards() {
        let n = 200u32;
        let edges = edge_sequence(n, 10_000);
        let mut b = StreamingGraphBuilder::new(n as usize, 1 << 16, None);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let path = tmp("index.ocsr");
        let csr = b.finish_with_buckets(&path, 128).unwrap();
        assert!(csr.num_buckets() > 1, "want a multi-bucket file");
        // Every bucket except the last is full; first_src entries are
        // non-decreasing; payload is globally sorted.
        for (i, e) in csr.bucket_index().iter().enumerate() {
            if i + 1 < csr.num_buckets() {
                assert_eq!(e.entries, 128);
                assert!(e.first_src <= csr.bucket_index()[i + 1].first_src);
            }
        }
        let mut s = csr.stream().unwrap();
        let mut prev: Option<(u32, u32)> = None;
        let mut total = 0u64;
        while let Some(bucket) = s.next_bucket().unwrap() {
            for &e in bucket {
                assert!(prev.is_none_or(|p| p < e), "payload must be sorted");
                prev = Some(e);
                total += 1;
            }
        }
        assert_eq!(total, csr.num_half_edges());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_range_reads_exactly_its_buckets() {
        let n = 100u32;
        let edges = edge_sequence(n, 5_000);
        let mut b = StreamingGraphBuilder::new(n as usize, 1 << 16, None);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let path = tmp("range.ocsr");
        let csr = b.finish_with_buckets(&path, 64).unwrap();
        let nb = csr.num_buckets();
        let mid = nb / 2;
        // Concatenating [0, mid) and [mid, nb) reproduces the full stream.
        let collect = |lo: usize, hi: usize| {
            let mut out = Vec::new();
            let mut s = csr.stream_range(lo, hi).unwrap();
            while let Some(bucket) = s.next_bucket().unwrap() {
                out.extend_from_slice(bucket);
            }
            out
        };
        let mut both = collect(0, mid);
        both.extend(collect(mid, nb));
        assert_eq!(both, collect(0, nb));
        assert_eq!(both.len() as u64, csr.num_half_edges());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn open_rejects_corrupt_headers() {
        let path = tmp("corrupt.ocsr");
        std::fs::write(&path, [b'x'; HEADER_BYTES as usize + 8]).unwrap();
        let err = ChunkedCsr::open(&path).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
        let _ = std::fs::remove_file(path);
        assert!(ChunkedCsr::open(tmp("missing.ocsr")).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let b = StreamingGraphBuilder::new(5, 1 << 12, None);
        let path = tmp("empty.ocsr");
        let csr = b.finish(&path).unwrap();
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.num_buckets(), 0);
        let g = csr.load_graph().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn failed_run_flush_is_deferred_to_finish_as_a_typed_error() {
        // An unwritable scratch directory makes every run flush fail;
        // add_edge must keep going (latching the first error) and finish
        // must surface it as a clean Err, never a panic.
        let bad_dir = tmp("no-such-scratch-dir");
        let mut b = StreamingGraphBuilder::new(64, 1, Some(&bad_dir));
        for i in 0..4_000u32 {
            b.add_edge(i % 64, (i + 1) % 64);
        }
        let err = b.finish(&tmp("deferred.ocsr")).unwrap_err();
        assert!(err.contains("add_edge run flush failed earlier"), "{err}");
    }

    #[test]
    fn degrees_match_loaded_graph() {
        let n = 80u32;
        let edges = edge_sequence(n, 2_000);
        let mut b = StreamingGraphBuilder::new(n as usize, 2048, None);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let path = tmp("deg.ocsr");
        let csr = b.finish_with_buckets(&path, 100).unwrap();
        let deg = csr.degrees().unwrap();
        let g = csr.load_graph().unwrap();
        for v in 0..n {
            assert_eq!(deg[v as usize] as usize, g.degree(v));
        }
        let _ = std::fs::remove_file(path);
    }
}
