//! Graph substrate for the MWVC-MPC reproduction.
//!
//! This crate provides the graph machinery the algorithms of
//! Ghaffari–Jin–Nilis (SPAA 2020) operate on:
//!
//! * [`Graph`] — a compact, immutable CSR (compressed sparse row)
//!   representation of a simple undirected graph,
//! * [`builder::GraphBuilder`] — deduplicating construction from edge lists,
//! * [`weights`] — vertex-weight models (uniform, exponential, Zipf,
//!   degree-correlated, …),
//! * [`generators`] — random graph families used as workloads (Erdős–Rényi,
//!   Chung–Lu power law, R-MAT, random regular, grids, trees, planted
//!   covers, …),
//! * [`presets`] — named, size-scaled workload families on top of the
//!   generators (the benchmark matrix's generator axis),
//! * [`outofcore`] — a chunked on-disk CSR format plus a byte-budgeted
//!   streaming builder and bounded [`outofcore::BucketStream`] reader,
//!   for instances that must not fit in RAM,
//! * [`io`] — plain edge-list and DIMACS reading/writing (in-memory and
//!   streaming),
//! * [`subgraph`] / [`partition`] — induced subgraphs and random vertex
//!   partitions (the core operation of MPC round compression),
//! * [`stats`] / [`validate`] — degree statistics and structural checking.
//!
//! Vertices are dense `u32` identifiers `0..n`. All randomized components
//! take explicit seeds and are fully deterministic given those seeds.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod edge_index;
pub mod generators;
pub mod io;
pub mod outofcore;
pub mod partition;
pub mod presets;
pub mod stats;
pub mod subgraph;
pub mod validate;
pub mod weights;

pub use builder::{EdgeSink, GraphBuilder};
pub use csr::{Edge, Graph, VertexId};
pub use edge_index::{EdgeId, EdgeIndex};
pub use outofcore::{BucketStream, ChunkedCsr, StreamingGraphBuilder};
pub use partition::VertexPartition;
pub use presets::{GraphFileFormat, GraphPreset};
pub use subgraph::InducedSubgraph;
pub use weights::{VertexWeights, WeightModel};

/// A vertex-weighted undirected graph: the input object of the minimum
/// weight vertex cover problem.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// Graph structure.
    pub graph: Graph,
    /// Positive vertex weights, indexed by vertex id.
    pub weights: VertexWeights,
}

impl WeightedGraph {
    /// Bundles a graph with weights. Panics if the weight vector length does
    /// not match the vertex count or any weight is not strictly positive.
    pub fn new(graph: Graph, weights: VertexWeights) -> Self {
        assert_eq!(
            graph.num_vertices(),
            weights.len(),
            "weight vector length must equal vertex count"
        );
        assert!(
            weights.iter().all(|w| w > 0.0 && w.is_finite()),
            "vertex weights must be positive and finite"
        );
        Self { graph, weights }
    }

    /// The unweighted special case: every vertex has weight 1.
    pub fn unweighted(graph: Graph) -> Self {
        let n = graph.num_vertices();
        Self {
            graph,
            weights: VertexWeights::constant(n, 1.0),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Weight of a single vertex.
    pub fn weight(&self, v: VertexId) -> f64 {
        self.weights[v]
    }

    /// Total weight of a vertex set.
    pub fn set_weight(&self, set: &[VertexId]) -> f64 {
        set.iter().map(|&v| self.weights[v]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_graph_construction() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 2.0, 3.0]));
        assert_eq!(wg.num_vertices(), 3);
        assert_eq!(wg.num_edges(), 2);
        assert_eq!(wg.weight(1), 2.0);
        assert_eq!(wg.set_weight(&[0, 2]), 4.0);
    }

    #[test]
    fn unweighted_has_unit_weights() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let wg = WeightedGraph::unweighted(g);
        assert!(wg.weights.iter().all(|w| w == 1.0));
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn mismatched_weights_panic() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_weight_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let _ = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 0.0]));
    }
}
