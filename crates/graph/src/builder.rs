//! Incremental, deduplicating graph construction.

use crate::csr::{Graph, VertexId};
use rayon::prelude::*;

/// Anything that can absorb a stream of undirected edges: the in-memory
/// [`GraphBuilder`] and the byte-budgeted
/// [`StreamingGraphBuilder`](crate::outofcore::StreamingGraphBuilder)
/// both implement it, so generators and file parsers written against
/// this trait feed either construction path from the identical edge
/// sequence — the basis of the streamed-equals-in-memory guarantee.
pub trait EdgeSink {
    /// Adds the undirected edge `(u, v)`. Duplicates are allowed (sinks
    /// deduplicate at finalization); self-loops panic.
    fn add_edge(&mut self, u: VertexId, v: VertexId);
}

impl EdgeSink for GraphBuilder {
    #[inline]
    fn add_edge(&mut self, u: VertexId, v: VertexId) {
        GraphBuilder::add_edge(self, u, v);
    }
}

/// Below this half-edge count the sequential finalization wins (the
/// parallel path produces identical output, so the cutover is invisible).
const PARALLEL_BUILD_MIN_HALF_EDGES: usize = 1 << 14;

/// Accumulates undirected edges and produces a validated CSR [`Graph`].
///
/// Duplicate insertions (in either orientation) collapse to a single edge.
/// Self-loops panic at insertion time.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Directed half-edges `(u, v)`; both directions are pushed per edge.
    half_edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// New builder for a graph on vertices `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        Self {
            n,
            half_edges: Vec::new(),
        }
    }

    /// New builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.half_edges.reserve(2 * m);
        b
    }

    /// Number of vertices this builder targets.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `(u, v)`. Duplicates are allowed and
    /// collapse at [`build`](Self::build) time; self-loops panic.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert_ne!(u, v, "self-loops are not representable");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.half_edges.push((u, v));
        self.half_edges.push((v, u));
    }

    /// Current number of inserted (not yet deduplicated) edges.
    pub fn pending_edges(&self) -> usize {
        self.half_edges.len() / 2
    }

    /// Finalizes into a CSR graph: counting-sorts half-edges by source,
    /// sorts each adjacency list, and removes duplicates.
    ///
    /// Large builds run the per-vertex sort/dedup and the compaction
    /// host-parallel; the result is bit-identical to the sequential path
    /// (each adjacency list is an independent sort into its own slice),
    /// so neither the thread count nor the cutover affects the graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let parallel = self.half_edges.len() >= PARALLEL_BUILD_MIN_HALF_EDGES;
        // Counting sort by source vertex (sequential: memory-bound scatter).
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &self.half_edges {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut neighbors = vec![0 as VertexId; self.half_edges.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &self.half_edges {
            let slot = cursor[u as usize];
            neighbors[slot] = v;
            cursor[u as usize] += 1;
        }
        if !parallel {
            return Self::finalize_sequential(n, &counts, neighbors);
        }

        // Parallel finalization. Carve one disjoint mutable sub-slice per
        // vertex, sort + dedup each independently, then compact into the
        // final CSR arrays at prefix-sum offsets.
        let mut lists: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut neighbors;
        for u in 0..n {
            let (head, tail) = rest.split_at_mut(counts[u + 1] - counts[u]);
            lists.push(head);
            rest = tail;
        }
        let dedup_lens: Vec<usize> = lists
            .par_iter_mut()
            .map(|list| {
                list.sort_unstable();
                dedup_in_place(list)
            })
            .collect();
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + dedup_lens[u];
        }
        let mut flat = vec![0 as VertexId; offsets[n]];
        let mut out_slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut flat;
        for &len in &dedup_lens {
            let (head, tail) = rest.split_at_mut(len);
            out_slices.push(head);
            rest = tail;
        }
        out_slices
            .into_par_iter()
            .zip(lists.into_par_iter())
            .zip(dedup_lens.into_par_iter())
            .for_each(|((dst, src), len)| dst.copy_from_slice(&src[..len]));
        Graph::from_csr_unchecked(offsets, flat)
    }

    /// The in-place sequential finalization, for small builds.
    fn finalize_sequential(n: usize, counts: &[usize], mut neighbors: Vec<VertexId>) -> Graph {
        let mut offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        for u in 0..n {
            let (start, end) = (counts[u], counts[u + 1]);
            let list_start = write;
            {
                let list = &mut neighbors[start..end];
                list.sort_unstable();
            }
            let mut prev: Option<VertexId> = None;
            for idx in start..end {
                let v = neighbors[idx];
                if prev != Some(v) {
                    neighbors[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            offsets[u] = list_start;
            offsets[u + 1] = write;
        }
        neighbors.truncate(write);
        Graph::from_csr_unchecked(offsets, neighbors)
    }
}

/// Moves the unique elements of a sorted slice to its front, returning
/// their count.
fn dedup_in_place(list: &mut [VertexId]) -> usize {
    let mut w = 0usize;
    for r in 0..list.len() {
        let v = list[r];
        if w == 0 || list[w - 1] != v {
            list[w] = v;
            w += 1;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn dedup_collapses_multi_edges() {
        let mut b = GraphBuilder::new(2);
        for _ in 0..10 {
            b.add_edge(0, 1);
            b.add_edge(1, 0);
        }
        assert_eq!(b.pending_edges(), 20);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn isolated_vertices_have_empty_lists() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parallel_and_sequential_finalization_agree() {
        // Big enough to cross PARALLEL_BUILD_MIN_HALF_EDGES, with heavy
        // duplication and skewed degrees.
        let n = 400u32;
        let edges: Vec<(u32, u32)> = (0..40_000u64)
            .map(|i| {
                let u = ((i * 2654435761) % n as u64) as u32;
                let v = ((i * 40503 + 7) % n as u64) as u32;
                (u, v)
            })
            .filter(|&(u, v)| u != v)
            .collect();
        let mut big = GraphBuilder::new(n as usize);
        for &(u, v) in &edges {
            big.add_edge(u, v);
        }
        assert!(big.pending_edges() * 2 >= super::PARALLEL_BUILD_MIN_HALF_EDGES);
        let g_par = big.build();
        // Same edges through the sequential finalizer (below the gate,
        // built in small batches is impossible — call it directly).
        let mut counts = vec![0usize; n as usize + 1];
        let mut half: Vec<(u32, u32)> = Vec::new();
        for &(u, v) in &edges {
            half.push((u, v));
            half.push((v, u));
        }
        for &(u, _) in &half {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            counts[i + 1] += counts[i];
        }
        let mut neighbors = vec![0u32; half.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &half {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        let g_seq = GraphBuilder::finalize_sequential(n as usize, &counts, neighbors);
        assert_eq!(g_par, g_seq);
    }
}
