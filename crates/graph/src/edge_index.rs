//! Dense edge identifiers over a CSR graph.
//!
//! The primal-dual algorithms maintain one dual variable `x_e` per
//! undirected edge. [`EdgeIndex`] assigns each edge a dense id `0..m` (in
//! canonical `(u,v), u<v` lexicographic order, matching
//! [`Graph::edges`](crate::Graph::edges)) and answers "which edges are
//! incident to `v`" with ids attached.

use crate::csr::{Edge, Graph, VertexId};

/// Dense edge id.
pub type EdgeId = u32;

/// Edge id assignment for a graph, with per-adjacency-slot lookup.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// For each CSR adjacency slot, the id of the edge it belongs to
    /// (each edge owns two slots).
    slot_edge: Vec<EdgeId>,
    /// `edges[eid]` is the canonical endpoint pair.
    edges: Vec<Edge>,
    /// CSR offsets copied from the graph for slot arithmetic.
    offsets: Vec<usize>,
}

impl EdgeIndex {
    /// Builds the index in `O(n + m log d)`.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for v in g.vertices() {
            offsets.push(offsets[v as usize] + g.degree(v));
        }
        let mut slot_edge = vec![EdgeId::MAX; *offsets.last().unwrap()];
        let mut edges = Vec::with_capacity(g.num_edges());
        for u in g.vertices() {
            let base = offsets[u as usize];
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                if u < v {
                    let eid = edges.len() as EdgeId;
                    edges.push(Edge::new(u, v));
                    slot_edge[base + i] = eid;
                    // Mirror slot in v's list.
                    let pos = g
                        .neighbors(v)
                        .binary_search(&u)
                        .expect("CSR symmetry violated");
                    slot_edge[offsets[v as usize] + pos] = eid;
                }
            }
        }
        debug_assert!(slot_edge.iter().all(|&e| e != EdgeId::MAX));
        Self {
            slot_edge,
            edges,
            offsets,
        }
    }

    /// Number of indexed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints of edge `eid`.
    pub fn edge(&self, eid: EdgeId) -> Edge {
        self.edges[eid as usize]
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates `(neighbor, edge id)` pairs for vertex `v`, in neighbor
    /// order (ascending neighbor id).
    pub fn incident<'a>(
        &'a self,
        g: &'a Graph,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + 'a {
        let base = self.offsets[v as usize];
        g.neighbors(v)
            .iter()
            .enumerate()
            .map(move |(i, &u)| (u, self.slot_edge[base + i]))
    }

    /// Id of edge `(u, v)`, if present.
    pub fn edge_id(&self, g: &Graph, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let pos = g.neighbors(u).binary_search(&v).ok()?;
        Some(self.slot_edge[self.offsets[u as usize] + pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp;

    #[test]
    fn ids_match_canonical_edge_order() {
        let g = Graph::from_edges(4, &[(2, 3), (0, 1), (1, 3), (0, 2)]);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.num_edges(), 4);
        // Canonical order: (0,1), (0,2), (1,3), (2,3).
        let canonical: Vec<Edge> = g.edges().collect();
        assert_eq!(idx.edges(), &canonical[..]);
        for (eid, e) in canonical.iter().enumerate() {
            assert_eq!(idx.edge(eid as EdgeId), *e);
            assert_eq!(idx.edge_id(&g, e.u(), e.v()), Some(eid as EdgeId));
            assert_eq!(idx.edge_id(&g, e.v(), e.u()), Some(eid as EdgeId));
        }
    }

    #[test]
    fn incident_covers_each_edge_twice() {
        let g = gnp(100, 0.08, 5);
        let idx = EdgeIndex::build(&g);
        let mut count = vec![0usize; idx.num_edges()];
        for v in g.vertices() {
            for (u, eid) in idx.incident(&g, v) {
                assert!(idx.edge(eid).is_incident(v) && idx.edge(eid).is_incident(u));
                count[eid as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    fn missing_edge_lookup() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.edge_id(&g, 0, 2), None);
        assert_eq!(idx.edge_id(&g, 1, 1), None);
    }

    #[test]
    fn empty_graph_index() {
        let g = Graph::empty(3);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.num_edges(), 0);
    }
}
