//! Degree statistics and simple structural summaries used by the
//! experiment harness.

use crate::csr::{Graph, VertexId};
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree `2m/n`.
    pub avg: f64,
    /// Maximum degree.
    pub max: usize,
    /// Minimum degree.
    pub min: usize,
    /// Median degree.
    pub median: usize,
    /// 99th percentile degree.
    pub p99: usize,
    /// Number of isolated vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes the summary for `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let pick = |q: f64| -> usize {
            if degs.is_empty() {
                0
            } else {
                degs[((q * (n - 1) as f64).round() as usize).min(n - 1)]
            }
        };
        Self {
            n,
            m: g.num_edges(),
            avg: g.average_degree(),
            max: degs.last().copied().unwrap_or(0),
            min: degs.first().copied().unwrap_or(0),
            median: pick(0.5),
            p99: pick(0.99),
            isolated: degs.iter().take_while(|&&d| d == 0).count(),
        }
    }

    /// Degree skew `Δ/d` (∞-safe: 0 for empty graphs).
    pub fn skew(&self) -> f64 {
        if self.avg == 0.0 {
            0.0
        } else {
            self.max as f64 / self.avg
        }
    }
}

/// Histogram of degrees in logarithmic buckets `[2^k, 2^{k+1})`.
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        let b = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(b, c)| (if b == 0 { 0 } else { 1 << (b - 1) }, c))
        .collect()
}

/// Number of connected components (iterative BFS over the whole graph).
pub fn connected_components(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut components = 0;
    let mut queue: Vec<VertexId> = Vec::new();
    for s in g.vertices() {
        if visited[s as usize] {
            continue;
        }
        components += 1;
        visited[s as usize] = true;
        queue.push(s);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique, disjoint_cliques, path, star};

    #[test]
    fn stats_of_star() {
        let s = DegreeStats::of(&star(11));
        assert_eq!(s.n, 11);
        assert_eq!(s.m, 10);
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 1);
        assert_eq!(s.isolated, 0);
        assert!(s.skew() > 5.0);
    }

    #[test]
    fn stats_of_empty() {
        let s = DegreeStats::of(&Graph::empty(4));
        assert_eq!(s.max, 0);
        assert_eq!(s.isolated, 4);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&clique(5)); // all degrees 4
        assert_eq!(h, vec![(4, 5)]);
        let h = degree_histogram(&path(3)); // degrees 1,2,1
        assert_eq!(h, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn component_counting() {
        assert_eq!(connected_components(&clique(5)), 1);
        assert_eq!(connected_components(&disjoint_cliques(4, 3)), 4);
        assert_eq!(connected_components(&Graph::empty(7)), 7);
    }
}
