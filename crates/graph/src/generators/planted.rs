//! Planted-cover instances: weighted graphs whose optimal vertex cover is
//! known by construction, enabling exact approximation-ratio measurements
//! at sizes far beyond what an exact solver can handle.
//!
//! Construction: a planted cover set `C` of `k` hubs, each with `p ≥ 2`
//! private leaves of the *same weight* as their hub, plus arbitrary extra
//! random edges between `C` and the leaf side and inside `C`.
//!
//! Optimality argument: any vertex cover `S` must, for each hub `c ∉ S`,
//! contain all `p` private leaves of `c` (their only edges go to `c`), at
//! cost `p·w(c) ≥ 2·w(c) > w(c)`. Hence
//! `w(S) ≥ Σ_{c∈C∩S} w(c) + Σ_{c∈C∖S} p·w(c) ≥ Σ_{c∈C} w(c) = w(C)`,
//! with equality only for `S ⊇ C`-style covers of weight exactly `w(C)`.
//! All non-private edges have an endpoint in `C`, so `C` itself is a valid
//! cover and `OPT = w(C)`.

use crate::builder::GraphBuilder;
use crate::csr::VertexId;
use crate::weights::VertexWeights;
use crate::WeightedGraph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A weighted instance with a known-optimal planted cover.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The instance itself.
    pub graph: WeightedGraph,
    /// The planted optimal cover (the hub set `C`).
    pub planted: Vec<VertexId>,
    /// `w(C)` — the optimal cover weight.
    pub opt_weight: f64,
}

/// Generates a planted-cover instance.
///
/// * `hubs` — size of the planted cover `C` (vertices `0..hubs`),
/// * `private_leaves` — private leaves per hub, must be `≥ 2` for strict
///   optimality,
/// * `extra_edge_prob` — probability of each additional hub↔leaf edge and
///   hub↔hub edge (these only make the instance harder, never change OPT),
/// * hub weights are uniform in `[1, max_hub_weight]`.
pub fn planted_cover(
    hubs: usize,
    private_leaves: usize,
    extra_edge_prob: f64,
    max_hub_weight: f64,
    seed: u64,
) -> PlantedInstance {
    assert!(hubs >= 1);
    assert!(
        private_leaves >= 2,
        "need >= 2 private leaves for strict optimality"
    );
    assert!((0.0..=1.0).contains(&extra_edge_prob));
    assert!(max_hub_weight >= 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0070_6c61_6e74); // "plant"
    let n = hubs * (1 + private_leaves);
    let mut b = GraphBuilder::new(n);
    let mut weights = vec![0.0f64; n];

    let leaf_id = |h: usize, l: usize| hubs + h * private_leaves + l;

    for h in 0..hubs {
        let w_h = rng.gen_range(1.0..=max_hub_weight);
        weights[h] = w_h;
        for l in 0..private_leaves {
            let leaf = leaf_id(h, l);
            weights[leaf] = w_h;
            b.add_edge(h as VertexId, leaf as VertexId);
        }
    }
    // Extra hub-hub edges.
    for a in 0..hubs {
        for c in (a + 1)..hubs {
            if rng.gen_range(0.0..1.0) < extra_edge_prob {
                b.add_edge(a as VertexId, c as VertexId);
            }
        }
    }
    // Extra hub-leaf edges (a hub may now touch other hubs' leaves).
    for h in 0..hubs {
        for other in 0..hubs {
            if other == h {
                continue;
            }
            for l in 0..private_leaves {
                if rng.gen_range(0.0..1.0) < extra_edge_prob {
                    b.add_edge(h as VertexId, leaf_id(other, l) as VertexId);
                }
            }
        }
    }
    let graph = b.build();
    let opt_weight: f64 = weights[..hubs].iter().sum();
    let planted: Vec<VertexId> = (0..hubs as VertexId).collect();
    PlantedInstance {
        graph: WeightedGraph::new(graph, VertexWeights::from_vec(weights)),
        planted,
        opt_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_structure;

    fn covers_all_edges(inst: &PlantedInstance) -> bool {
        let in_cover: std::collections::HashSet<_> = inst.planted.iter().copied().collect();
        inst.graph
            .graph
            .edges()
            .all(|e| in_cover.contains(&e.u()) || in_cover.contains(&e.v()))
    }

    #[test]
    fn planted_set_is_a_cover() {
        let inst = planted_cover(20, 3, 0.05, 10.0, 7);
        check_structure(&inst.graph.graph).unwrap();
        assert!(covers_all_edges(&inst));
        assert!((inst.opt_weight - inst.graph.set_weight(&inst.planted)).abs() < 1e-9);
    }

    #[test]
    fn leaves_share_hub_weight() {
        let inst = planted_cover(5, 4, 0.0, 100.0, 3);
        for h in 0..5usize {
            for l in 0..4usize {
                let leaf = (5 + h * 4 + l) as VertexId;
                assert_eq!(inst.graph.weight(leaf), inst.graph.weight(h as VertexId));
            }
        }
    }

    #[test]
    fn no_extra_edges_when_prob_zero() {
        let inst = planted_cover(6, 2, 0.0, 5.0, 1);
        // Exactly hubs * leaves edges.
        assert_eq!(inst.graph.num_edges(), 12);
    }

    #[test]
    fn extra_edges_never_reduce_opt() {
        // The planted set must remain a cover with extra edges present.
        let inst = planted_cover(10, 2, 0.5, 5.0, 11);
        assert!(covers_all_edges(&inst));
        assert!(inst.graph.num_edges() >= 20);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = planted_cover(8, 3, 0.1, 4.0, 42);
        let b = planted_cover(8, 3, 0.1, 4.0, 42);
        assert_eq!(a.graph.graph, b.graph.graph);
        assert_eq!(a.opt_weight, b.opt_weight);
    }

    #[test]
    #[should_panic(expected = "private leaves")]
    fn single_leaf_rejected() {
        let _ = planted_cover(3, 1, 0.0, 2.0, 0);
    }
}
