//! Random and structured graph generators used as experiment workloads.
//!
//! Every generator is deterministic given its seed and produces a simple
//! undirected [`Graph`](crate::Graph). The families cover the regimes the
//! paper's analysis distinguishes:
//!
//! * `gnp` / `gnm` — Erdős–Rényi, the concentrated-degree regime where
//!   `Δ ≈ d`,
//! * `chung_lu` / `rmat` — skewed power-law degrees where `Δ ≫ d`
//!   (separates the `O(log log d)` bound from `O(log log Δ)`),
//! * `random_regular` — exactly uniform degrees,
//! * `star_composite` — extreme hub skew with a tunable `Δ/d` ratio,
//! * `grid` / `tree` / `star` / `clique` / `barbell` / `disjoint_cliques`
//!   / `random_bipartite` — structured instances with known covers,
//! * `planted_cover` — instances whose optimal weighted cover is known by
//!   construction, for ratio measurements without an exact solver,
//! * `gnm_stream` — an `O(1)`-state Erdős–Rényi variant that can feed the
//!   out-of-core build path ([`crate::outofcore`]) without holding the
//!   edge set in RAM.

mod classic;
mod planted;
mod random;
mod stream;

pub use classic::{
    barbell, clique, disjoint_cliques, grid, low_arboricity, path, star, star_composite, tree,
};
pub use planted::{planted_cover, PlantedInstance};
pub use random::{chung_lu, gnm, gnp, random_bipartite, random_regular, rmat, RmatParams};
pub use stream::{gnm_stream, gnm_stream_into};
