//! Structured graph families with analytically known properties.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Path on `n` vertices (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Star: center `0` joined to leaves `1..n`. `Δ = n-1`, `d ≈ 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// `count` disjoint copies of `K_size`. OPT of the unweighted VC is
/// `count * (size - 1)`.
pub fn disjoint_cliques(count: usize, size: usize) -> Graph {
    let n = count * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                b.add_edge((base + u) as VertexId, (base + v) as VertexId);
            }
        }
    }
    b.build()
}

/// Two `K_k` cliques joined by a path of `bridge` vertices.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 1);
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    let add_clique = |b: &mut GraphBuilder, base: usize| {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge((base + u) as VertexId, (base + v) as VertexId);
            }
        }
    };
    add_clique(&mut b, 0);
    add_clique(&mut b, k + bridge);
    // Chain: last vertex of clique 1 -> bridge vertices -> first of clique 2.
    let mut prev = k - 1;
    for i in 0..bridge {
        let cur = k + i;
        b.add_edge(prev as VertexId, cur as VertexId);
        prev = cur;
    }
    b.add_edge(prev as VertexId, (k + bridge) as VertexId);
    b.build()
}

/// 2D grid graph `rows x cols` (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Random recursive tree on `n` vertices: vertex `v` attaches to a uniform
/// random earlier vertex.
pub fn tree(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7472_6565); // "tree"
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent as VertexId, v as VertexId);
    }
    b.build()
}

/// A star forest overlaid on a sparse Erdős–Rényi graph: `hubs` star
/// centers each with `leaves_per_hub` private leaves, plus `G(n, p)`
/// background noise over everything.
///
/// This is the `Δ ≫ d` workload for experiment E09: the average degree
/// stays near `2·hubs·leaves/n + p·n` while the max degree is
/// `≈ leaves_per_hub`, so the gap between `O(log log d)` and
/// `O(log log Δ)` round bounds is tunable.
pub fn star_composite(hubs: usize, leaves_per_hub: usize, background_p: f64, seed: u64) -> Graph {
    let n = hubs * (1 + leaves_per_hub);
    let mut b = GraphBuilder::new(n);
    // Hubs are 0..hubs; leaves follow in blocks.
    for h in 0..hubs {
        for l in 0..leaves_per_hub {
            let leaf = hubs + h * leaves_per_hub + l;
            b.add_edge(h as VertexId, leaf as VertexId);
        }
    }
    let mut g = b.build();
    if background_p > 0.0 {
        let noise = super::random::gnp(n, background_p, seed ^ 0x6e6f_6973); // "nois"
        let mut b2 = GraphBuilder::new(n);
        for e in g.edges().chain(noise.edges()) {
            b2.add_edge(e.u(), e.v());
        }
        g = b2.build();
    }
    g
}

/// A graph of arboricity at most `k`: the union of `k` independent random
/// recursive forests over uniformly relabeled vertices.
///
/// The strongly-sublinear-memory MPC literature the paper's Section 1.2
/// surveys ([BBD+19]) gets `poly(log log n)` rounds exactly for this
/// family; the generator exists so experiments can probe it.
pub fn low_arboricity(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new(n);
    for forest in 0..k {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (forest as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x0061_7262, // "arb"
        );
        // Random relabeling so the forests are independent.
        let mut label: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            label.swap(i, j);
        }
        for v in 1..n {
            let parent = rng.gen_range(0..v);
            if label[parent] != label[v] {
                b.add_edge(label[parent], label[v]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_structure;

    #[test]
    fn path_shape() {
        let g = path(5);
        check_structure(&g).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        check_structure(&g).unwrap();
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.max_degree(), 9);
        for v in 1..10 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn clique_shape() {
        let g = clique(6);
        check_structure(&g).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn disjoint_cliques_shape() {
        let g = disjoint_cliques(3, 4);
        check_structure(&g).unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 6);
        // No cross-clique edges.
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        check_structure(&g).unwrap();
        assert_eq!(g.num_vertices(), 10);
        // 2 cliques of 6 edges + path of 3 edges.
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        check_structure(&g).unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn tree_is_acyclic_and_connected_by_count() {
        let g = tree(100, 3);
        check_structure(&g).unwrap();
        assert_eq!(g.num_edges(), 99);
    }

    #[test]
    fn star_composite_skew() {
        let g = star_composite(10, 100, 0.0, 1);
        check_structure(&g).unwrap();
        assert_eq!(g.num_vertices(), 1010);
        assert_eq!(g.max_degree(), 100);
        assert!(g.average_degree() < 3.0);
    }

    #[test]
    fn star_composite_with_background_noise() {
        let quiet = star_composite(5, 20, 0.0, 2);
        let noisy = star_composite(5, 20, 0.02, 2);
        assert!(noisy.num_edges() > quiet.num_edges());
        check_structure(&noisy).unwrap();
    }

    #[test]
    fn low_arboricity_edge_budget() {
        // Union of k forests: at most k*(n-1) edges, at least one forest's
        // worth after dedup.
        let (n, k) = (500usize, 4usize);
        let g = low_arboricity(n, k, 9);
        check_structure(&g).unwrap();
        assert!(g.num_edges() <= k * (n - 1));
        assert!(g.num_edges() >= n - 1);
        // Every subgraph of a union of k forests has average degree < 2k.
        assert!(g.average_degree() < 2.0 * k as f64);
    }

    #[test]
    fn low_arboricity_single_forest_is_tree_like() {
        let g = low_arboricity(200, 1, 5);
        check_structure(&g).unwrap();
        assert!(g.num_edges() <= 199);
    }
}
