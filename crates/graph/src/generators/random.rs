//! Random graph families: Erdős–Rényi, Chung–Lu, R-MAT, random regular,
//! random bipartite.
//!
//! # Parallel generation, reproducible seeds
//!
//! Every generator whose samples are independent (all but the
//! configuration-model shuffle of [`random_regular`]) is generated
//! host-parallel: the sample-index domain is split into chunks whose
//! boundaries depend only on the instance parameters — never on the
//! thread count — and each chunk draws from its own derived RNG
//! substream. A seed therefore reproduces the identical graph at any
//! thread count (and on the 1-thread inline path); chunks are spliced
//! back in index order.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

fn rng_for(seed: u64, salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt)
}

/// Fixed chunk count for parallel generation. Determinism requires only
/// that the chunk *shape* is a pure function of the instance parameters;
/// 64 chunks load-balance any plausible host width.
const GEN_CHUNKS: u64 = 64;

/// Splits `0..total` into at most [`GEN_CHUNKS`] contiguous ranges.
pub(super) fn chunk_ranges(total: u64) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let size = total.div_ceil(GEN_CHUNKS).max(1);
    (0..total.div_ceil(size))
        .map(|c| (c * size, ((c + 1) * size).min(total)))
        .collect()
}

/// Per-chunk RNG substream: sequentially chained, domain-separated
/// derivation of `(seed, salt, chunk)`, mirroring `mpc_sim::rng`'s
/// indexed-substream scheme (commutative mixing collides; chaining does
/// not). Chunks draw independently, so any chunk can be generated on any
/// thread without affecting any other chunk's stream.
pub(super) fn chunk_rng(seed: u64, salt: u64, chunk: u64) -> ChaCha8Rng {
    const CHUNK_LEAF: u64 = 0x4745_4e5f_4348_554e; // "GEN_CHUN"
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    fn chain(h: u64, value: u64) -> u64 {
        splitmix64(h.rotate_left(23) ^ value)
    }
    ChaCha8Rng::seed_from_u64(chain(
        chain(chain(splitmix64(seed), salt), chunk),
        CHUNK_LEAF,
    ))
}

/// Runs `gen_chunk(chunk_index, lo, hi)` over the fixed chunking of
/// `0..total` in parallel and splices the per-chunk edge lists into `b`
/// in chunk order.
fn generate_chunked(
    b: &mut GraphBuilder,
    total: u64,
    gen_chunk: impl Fn(u64, u64, u64) -> Vec<(VertexId, VertexId)> + Sync,
) {
    let ranges = chunk_ranges(total);
    let per_chunk: Vec<Vec<(VertexId, VertexId)>> = ranges
        .par_iter()
        .enumerate()
        .map(|(c, &(lo, hi))| gen_chunk(c as u64, lo, hi))
        .collect();
    for chunk in per_chunk {
        for (u, v) in chunk {
            b.add_edge(u, v);
        }
    }
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges appears
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n^2)`,
/// which keeps million-vertex sparse instances cheap.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Enumerate pairs (u, v), u < v, in lexicographic order and skip
    // geometrically: the next present edge is `floor(log(U)/log(1-p))`
    // positions ahead. Pair presence is i.i.d., so restarting the skip
    // chain at each chunk boundary (with the chunk's own substream)
    // samples the same distribution.
    let log1p = (1.0 - p).ln();
    let total: u64 = n as u64 * (n as u64 - 1) / 2;
    generate_chunked(&mut b, total, |c, lo, hi| {
        let mut rng = chunk_rng(seed, 0x0067_6e70, c); // "gnp"
        let mut out = Vec::new();
        let mut idx = lo;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (u.ln() / log1p).floor() as u64;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= hi {
                break;
            }
            let (a, bv) = pair_from_index(n as u64, idx);
            out.push((a as VertexId, bv as VertexId));
            idx += 1;
        }
        out
    });
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the lexicographically ordered
/// pair `(u, v)` with `u < v`.
pub(super) fn pair_from_index(n: u64, idx: u64) -> (u64, u64) {
    // Row u starts at offset f(u) = u*n - u*(u+1)/2. Solve for the largest
    // u with f(u) <= idx via the quadratic formula, then fix up.
    let fi = idx as f64;
    let nf = n as f64;
    let mut u = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * fi).sqrt()) / 2.0) as u64;
    let row_start = |u: u64| u * n - u * (u + 1) / 2;
    while u + 1 < n && row_start(u + 1) <= idx {
        u += 1;
    }
    while row_start(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - row_start(u));
    (u, v)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges
/// (rejection-sampled, so `m` must be at most the number of vertex pairs).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= total,
        "requested {m} edges but only {total} pairs exist"
    );
    let mut rng = rng_for(seed, 0x0067_6e6d); // "gnm"
    let mut b = GraphBuilder::with_capacity(n, m);
    if m == 0 {
        return b.build();
    }
    // Uniform sampling without replacement is sequential (each draw
    // conditions on the previous ones), but the index→pair decode — the
    // arithmetic-heavy part — parallelizes freely.
    // Dense request: sample which pairs are *absent* instead.
    if m * 3 > total * 2 {
        let mut present = vec![true; total];
        let mut absent = total - m;
        while absent > 0 {
            let i = rng.gen_range(0..total);
            if present[i] {
                present[i] = false;
                absent -= 1;
            }
        }
        generate_chunked(&mut b, total as u64, |_, lo, hi| {
            (lo..hi)
                .filter(|&i| present[i as usize])
                .map(|i| {
                    let (u, v) = pair_from_index(n as u64, i);
                    (u as VertexId, v as VertexId)
                })
                .collect()
        });
        return b.build();
    }
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut chosen: Vec<u64> = Vec::with_capacity(m);
    while chosen.len() < m {
        let i = rng.gen_range(0..total as u64);
        if seen.insert(i) {
            chosen.push(i);
        }
    }
    let pairs: Vec<(VertexId, VertexId)> = chosen
        .par_iter()
        .map(|&i| {
            let (u, v) = pair_from_index(n as u64, i);
            (u as VertexId, v as VertexId)
        })
        .collect();
    for (u, v) in pairs {
        b.add_edge(u, v);
    }
    b.build()
}

/// Chung–Lu random graph with power-law expected degrees.
///
/// Expected degree of vertex `v` is `~ w_v` where `w_v ∝ (v+1)^(-1/(β-1))`
/// scaled to hit `target_avg_degree`; `β` is the power-law exponent
/// (2 < β < 3 is the social-network regime). Edge `(u,v)` appears with
/// probability `min(1, w_u w_v / Σw)`. Sampled in `O(n + m)` expected time
/// with the Miller–Hagberg bucket technique simplified to sorted weights.
pub fn chung_lu(n: usize, beta: f64, target_avg_degree: f64, seed: u64) -> Graph {
    assert!(beta > 1.0, "power-law exponent must exceed 1");
    assert!(target_avg_degree >= 0.0);
    // Desired weights, descending (vertex 0 is the biggest hub).
    let gamma = 1.0 / (beta - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum: f64 = w.iter().sum();
    let scale = target_avg_degree * n as f64 / sum;
    for x in &mut w {
        *x *= scale;
    }
    let total_w: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    if n < 2 || total_w == 0.0 {
        return b.build();
    }
    // Each source row u is sampled independently of every other row, so
    // rows are chunked across threads; within a chunk, each u scans
    // candidates v > u with geometric skipping at rate
    // q = min(1, w_u * w_v / total_w) — since w is descending, the
    // standard two-phase (skip with p_max, accept with p/p_max) scheme.
    generate_chunked(&mut b, (n - 1) as u64, |c, lo, hi| {
        let mut rng = chunk_rng(seed, 0x0063_6c75, c); // "clu"
        let mut out = Vec::new();
        for u in lo as usize..hi as usize {
            let mut v = u + 1;
            let mut p_max = (w[u] * w[v] / total_w).min(1.0);
            while v < n && p_max > 0.0 {
                // Skip ahead geometrically at rate p_max.
                if p_max < 1.0 {
                    let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let skip = (r.ln() / (1.0 - p_max).ln()).floor() as usize;
                    v = match v.checked_add(skip) {
                        Some(x) => x,
                        None => break,
                    };
                }
                if v >= n {
                    break;
                }
                let p = (w[u] * w[v] / total_w).min(1.0);
                if rng.gen_range(0.0..1.0) < p / p_max {
                    out.push((u as VertexId, v as VertexId));
                }
                p_max = p;
                v += 1;
            }
        }
        out
    });
    b.build()
}

/// Parameters of the R-MAT recursive matrix generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability mass of the four quadrants; must sum to ~1.
    pub a: f64,
    /// Top-right quadrant mass.
    pub b: f64,
    /// Bottom-left quadrant mass.
    pub c: f64,
    /// Bottom-right quadrant mass.
    pub d: f64,
}

impl Default for RmatParams {
    /// The classic Graph500-style skewed parameterization.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// R-MAT graph on `2^scale` vertices with `edge_factor * 2^scale` sampled
/// edges (self-loops dropped, duplicates collapsed, so the realized edge
/// count is somewhat lower).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "R-MAT quadrant masses must sum to 1"
    );
    let n: usize = 1 << scale;
    let m = edge_factor * n;
    let mut b = GraphBuilder::with_capacity(n, m);
    // Every edge sample is independent: chunk the m draws.
    generate_chunked(&mut b, m as u64, |c, lo, hi| {
        let mut rng = chunk_rng(seed, 0x726d_6174, c); // "rmat"
        let mut out = Vec::new();
        for _ in lo..hi {
            let (mut lo_u, mut hi_u) = (0usize, n);
            let (mut lo_v, mut hi_v) = (0usize, n);
            while hi_u - lo_u > 1 {
                let r: f64 = rng.gen_range(0.0..1.0);
                let mid_u = (lo_u + hi_u) / 2;
                let mid_v = (lo_v + hi_v) / 2;
                if r < params.a {
                    hi_u = mid_u;
                    hi_v = mid_v;
                } else if r < params.a + params.b {
                    hi_u = mid_u;
                    lo_v = mid_v;
                } else if r < params.a + params.b + params.c {
                    lo_u = mid_u;
                    hi_v = mid_v;
                } else {
                    lo_u = mid_u;
                    lo_v = mid_v;
                }
            }
            if lo_u != lo_v {
                out.push((lo_u as VertexId, lo_v as VertexId));
            }
        }
        out
    });
    b.build()
}

/// Random `k`-regular-ish graph via the configuration model: `k` stubs per
/// vertex are paired uniformly; self-loops and duplicate pairings are
/// dropped, so degrees are `≤ k` and concentrated at `k` for `k ≪ n`.
///
/// Stays sequential: the Fisher–Yates shuffle is a chain of dependent
/// swaps with no independent substructure to chunk (only the CSR
/// finalization parallelizes, inside [`GraphBuilder::build`]).
pub fn random_regular(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k < n, "degree must be below vertex count");
    let mut rng = rng_for(seed, 0x0072_6567); // "reg"
    let mut stubs: Vec<VertexId> = (0..n as VertexId)
        .flat_map(|v| std::iter::repeat_n(v, k))
        .collect();
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Random bipartite graph: sides of size `n_left` and `n_right` (vertex ids
/// `0..n_left` and `n_left..n_left+n_right`), each cross pair present
/// independently with probability `p`.
pub fn random_bipartite(n_left: usize, n_right: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let n = n_left + n_right;
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n_left == 0 || n_right == 0 {
        return b.build();
    }
    let total = (n_left as u64) * (n_right as u64);
    if p >= 1.0 {
        for u in 0..n_left {
            for v in 0..n_right {
                b.add_edge(u as VertexId, (n_left + v) as VertexId);
            }
        }
        return b.build();
    }
    // I.i.d. cross pairs: geometric skipping per chunk, as in `gnp`.
    let log1p = (1.0 - p).ln();
    generate_chunked(&mut b, total, |c, lo, hi| {
        let mut rng = chunk_rng(seed, 0x0062_6970, c); // "bip"
        let mut out = Vec::new();
        let mut idx = lo;
        loop {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / log1p).floor() as u64;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= hi {
                break;
            }
            let u = (idx / n_right as u64) as usize;
            let v = (idx % n_right as u64) as usize;
            out.push((u as VertexId, (n_left + v) as VertexId));
            idx += 1;
        }
        out
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_structure;

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 500;
        let p = 0.02;
        let g = gnp(n, p, 11);
        check_structure(&g).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 20.0,
            "edges {got} far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(100, 0.1, 5), gnp(100, 0.1, 5));
        assert_ne!(gnp(100, 0.1, 5), gnp(100, 0.1, 6));
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 17u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        for &(n, m) in &[(50usize, 0usize), (50, 100), (50, 1225), (50, 1000)] {
            let g = gnm(n, m, 3);
            check_structure(&g).unwrap();
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn gnm_too_many_edges_panics() {
        let _ = gnm(4, 7, 0);
    }

    #[test]
    fn chung_lu_has_skewed_degrees() {
        let g = chung_lu(2000, 2.2, 8.0, 13);
        check_structure(&g).unwrap();
        let avg = g.average_degree();
        assert!((2.0..32.0).contains(&avg), "avg degree {avg}");
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "power law should produce hubs: max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn rmat_basics() {
        let g = rmat(10, 8, RmatParams::default(), 17);
        check_structure(&g).unwrap();
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 2000, "edges {}", g.num_edges());
        assert!(g.max_degree() > 3 * g.average_degree() as usize);
    }

    #[test]
    fn random_regular_degrees_concentrate() {
        let k = 8;
        let g = random_regular(400, k, 23);
        check_structure(&g).unwrap();
        for v in g.vertices() {
            assert!(g.degree(v) <= k);
        }
        assert!(g.average_degree() > 0.9 * k as f64);
    }

    #[test]
    fn bipartite_has_no_side_internal_edges() {
        let (l, r) = (40, 60);
        let g = random_bipartite(l, r, 0.1, 29);
        check_structure(&g).unwrap();
        for e in g.edges() {
            let left = (e.u() as usize) < l;
            let right = (e.v() as usize) >= l;
            assert!(left && right, "edge {:?} not crossing", e);
        }
        assert_eq!(random_bipartite(3, 4, 1.0, 0).num_edges(), 12);
    }
}
