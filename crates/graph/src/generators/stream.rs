//! Streaming generator: a `G(n, m)`-style family whose sampling state is
//! `O(1)`, so it can feed an [`EdgeSink`] of either construction path —
//! the in-memory [`GraphBuilder`](crate::GraphBuilder) or the
//! byte-budgeted
//! [`StreamingGraphBuilder`](crate::outofcore::StreamingGraphBuilder) —
//! without ever holding the edge set in RAM.
//!
//! # Why not exact `gnm`?
//!
//! Exact uniform sampling *without* replacement (what [`gnm`] does)
//! needs `Θ(m)` rejection state (a hash set of chosen pair indices) or a
//! `Θ(n²)` presence bitmap — both defeat the point of an out-of-core
//! build. [`gnm_stream_into`] instead draws `samples` pair indices
//! uniformly **with** replacement from the `n(n-1)/2` pairs; the sink's
//! deduplication collapses collisions, so the realized edge count is
//! `total·(1 − (1 − 1/total)^samples)` — within a fraction of a percent
//! of `samples` in the sparse regime `m ≪ n²` the huge tiers live in.
//! The degree distribution matches `G(n, m)` asymptotically.
//!
//! # Determinism
//!
//! The sample-index domain is split by the same fixed chunking as the
//! other generators ([`GEN_CHUNKS`](super::random) chunks, one derived
//! RNG substream each), and chunks are emitted in index order, so a seed
//! reproduces the identical edge *sequence* — hence the identical graph
//! through either sink — independent of thread count (this path does not
//! even use threads) and of the sink's byte budget.
//!
//! [`gnm`]: super::gnm

use super::random::{chunk_ranges, chunk_rng, pair_from_index};
use crate::builder::{EdgeSink, GraphBuilder};
use crate::csr::{Graph, VertexId};
use rand::Rng;

/// Domain separation salt for the streamed family ("gnms").
const GNM_STREAM_SALT: u64 = 0x676e_6d73;

/// Emits `samples` uniform random vertex pairs (with replacement, no
/// self-pairs — see the module docs for the exact-`m` trade-off) into
/// `sink`, in a deterministic order given `seed`.
///
/// Memory: `O(1)` beyond the sink itself.
pub fn gnm_stream_into(n: usize, samples: u64, seed: u64, sink: &mut impl EdgeSink) {
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
    if n < 2 {
        assert_eq!(samples, 0, "no pairs exist for n={n}");
        return;
    }
    let total: u64 = n as u64 * (n as u64 - 1) / 2;
    for (c, (lo, hi)) in chunk_ranges(samples).into_iter().enumerate() {
        let mut rng = chunk_rng(seed, GNM_STREAM_SALT, c as u64);
        for _ in lo..hi {
            let idx = rng.gen_range(0..total);
            let (u, v) = pair_from_index(n as u64, idx);
            sink.add_edge(u as VertexId, v as VertexId);
        }
    }
}

/// In-memory materialization of [`gnm_stream_into`]: the control-instance
/// path, guaranteed to equal the streamed build from the same seed
/// because both consume the identical edge sequence.
pub fn gnm_stream(n: usize, samples: u64, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    gnm_stream_into(n, samples, seed, &mut b);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outofcore::StreamingGraphBuilder;
    use crate::validate::check_structure;

    #[test]
    fn stream_family_is_deterministic_and_near_target() {
        let (n, samples) = (1_000usize, 8_000u64);
        let a = gnm_stream(n, samples, 42);
        let b = gnm_stream(n, samples, 42);
        check_structure(&a).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, gnm_stream(n, samples, 43));
        // With-replacement shrinkage is tiny in the sparse regime.
        assert!(
            a.num_edges() as f64 > 0.98 * samples as f64,
            "edges {} vs {} samples",
            a.num_edges(),
            samples
        );
    }

    #[test]
    fn streamed_and_in_memory_sinks_agree() {
        let (n, samples, seed) = (400usize, 5_000u64, 7u64);
        let g_mem = gnm_stream(n, samples, seed);
        let mut ooc = StreamingGraphBuilder::new(n, 2048, None);
        gnm_stream_into(n, samples, seed, &mut ooc);
        let path = std::env::temp_dir().join(format!("gnms-{}.ocsr", std::process::id()));
        let csr = ooc.finish_with_buckets(&path, 512).unwrap();
        let g_ooc = csr.load_graph().unwrap();
        assert_eq!(g_mem, g_ooc);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_stream() {
        let g = gnm_stream(1, 0, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
