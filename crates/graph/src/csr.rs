//! Compressed sparse row (CSR) representation of a simple undirected graph.
//!
//! Vertices are dense `u32` ids in `0..n`. Each undirected edge `(u, v)` is
//! stored in both adjacency lists; neighbor lists are sorted, self-loop-free
//! and duplicate-free. The structure is immutable after construction, which
//! lets every algorithm in the workspace share it by reference without
//! synchronization.

use serde::{Deserialize, Serialize};

/// Dense vertex identifier.
pub type VertexId = u32;

/// An undirected edge as an (unordered) pair, stored canonically with
/// `u() <= v()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge(VertexId, VertexId);

impl Edge {
    /// Creates a canonical edge from an unordered endpoint pair.
    /// Panics on self-loops: the vertex cover LP has no constraint shape for
    /// them and every generator in this workspace is loop-free.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not representable");
        if a < b {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }

    /// Smaller endpoint.
    pub fn u(&self) -> VertexId {
        self.0
    }

    /// Larger endpoint.
    pub fn v(&self) -> VertexId {
        self.1
    }

    /// The endpoint that is not `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.0 {
            self.1
        } else {
            assert_eq!(x, self.1, "vertex {x} is not an endpoint of {self:?}");
            self.0
        }
    }

    /// Whether `x` is one of the two endpoints.
    pub fn is_incident(&self, x: VertexId) -> bool {
        self.0 == x || self.1 == x
    }
}

/// An immutable simple undirected graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges (half the adjacency entries).
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an edge list over vertices `0..n`.
    ///
    /// Duplicate edges and both orientations are deduplicated; self-loops
    /// panic. For incremental construction use
    /// [`crate::builder::GraphBuilder`].
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = crate::builder::GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal constructor from pre-validated CSR arrays. `neighbors` lists
    /// must be sorted per vertex, loop-free, duplicate-free and symmetric.
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len() % 2, 0);
        let num_edges = neighbors.len() / 2;
        Self {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor slice of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `(u, v)` exists. O(log deg(u)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over the unique undirected edges in canonical `(u < v)`
    /// order (lexicographic).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge(u, v))
        })
    }

    /// Collects the unique edges into a vector.
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Maximum degree `Δ`; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2|E|/n`; 0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / n as f64
        }
    }

    /// Total memory footprint of the CSR arrays in machine words, as counted
    /// by the MPC model (one word per offset, one per adjacency entry).
    pub fn words(&self) -> usize {
        self.offsets.len() + self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_canonicalization() {
        let e = Edge::new(5, 2);
        assert_eq!(e.u(), 2);
        assert_eq!(e.v(), 5);
        assert_eq!(e, Edge::new(2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert!(e.is_incident(2) && e.is_incident(5) && !e.is_incident(3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_self_loop_panics() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    #[should_panic]
    fn edge_other_non_endpoint_panics() {
        let _ = Edge::new(0, 1).other(2);
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        let g = path4();
        let es = g.edge_vec();
        assert_eq!(es, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edge_vec(), vec![]);
    }

    #[test]
    fn words_counts_csr_arrays() {
        let g = path4();
        assert_eq!(g.words(), 5 + 6);
    }
}
