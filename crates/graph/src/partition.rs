//! Random vertex partitions (Algorithm 2, line 2f).
//!
//! Each vertex is assigned to one of `m` parts independently and uniformly
//! at random. The assignment is a pure function of `(seed, vertex)` via a
//! counter-based RNG, so any machine in the MPC simulation can recompute
//! any vertex's part without communication — exactly the "shared
//! randomness" assumption round compression relies on.

use crate::csr::VertexId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A random assignment of an (arbitrary) subset of vertices to `m` parts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VertexPartition {
    num_parts: usize,
    seed: u64,
    /// Materialized parts (global vertex ids, ascending within each part).
    parts: Vec<Vec<VertexId>>,
}

impl VertexPartition {
    /// Assigns each vertex in `vertices` to one of `num_parts` parts
    /// uniformly at random, deterministically in `(seed, vertex id)`.
    pub fn assign(vertices: &[VertexId], num_parts: usize, seed: u64) -> Self {
        assert!(num_parts >= 1);
        let mut parts = vec![Vec::new(); num_parts];
        for &v in vertices {
            parts[Self::part_of_vertex(v, num_parts, seed)].push(v);
        }
        for p in &mut parts {
            p.sort_unstable();
        }
        Self {
            num_parts,
            seed,
            parts,
        }
    }

    /// The pure assignment function: which part vertex `v` lands in.
    /// Any participant holding `(seed, num_parts)` computes this locally.
    pub fn part_of_vertex(v: VertexId, num_parts: usize, seed: u64) -> usize {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0xd134_2543_de82_ef95));
        rng.gen_range(0..num_parts)
    }

    /// Number of parts `m`.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// The seed this partition was drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Vertices of part `i` (ascending).
    pub fn part(&self, i: usize) -> &[VertexId] {
        &self.parts[i]
    }

    /// Iterates over all parts.
    pub fn parts(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        self.parts.iter().map(|p| p.as_slice())
    }

    /// Which part `v` belongs to (recomputed, works for any vertex id).
    pub fn part_of(&self, v: VertexId) -> usize {
        Self::part_of_vertex(v, self.num_parts, self.seed)
    }

    /// Total number of assigned vertices.
    pub fn total_vertices(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Size of the largest part.
    pub fn max_part_size(&self) -> usize {
        self.parts.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_vertices_once() {
        let vs: Vec<VertexId> = (0..1000).collect();
        let p = VertexPartition::assign(&vs, 7, 42);
        assert_eq!(p.total_vertices(), 1000);
        let mut seen = vec![false; 1000];
        for part in p.parts() {
            for &v in part {
                assert!(!seen[v as usize], "vertex {v} assigned twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn part_of_matches_materialized_parts() {
        let vs: Vec<VertexId> = (0..500).step_by(3).collect();
        let p = VertexPartition::assign(&vs, 5, 9);
        for (i, part) in p.parts().enumerate() {
            for &v in part {
                assert_eq!(p.part_of(v), i);
            }
        }
    }

    #[test]
    fn balanced_in_expectation() {
        let vs: Vec<VertexId> = (0..10_000).collect();
        let m = 10;
        let p = VertexPartition::assign(&vs, m, 123);
        let expected = 10_000 / m;
        for part in p.parts() {
            let size = part.len() as f64;
            assert!(
                (size - expected as f64).abs() < 5.0 * (expected as f64).sqrt(),
                "part size {size} far from {expected}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed_and_independent_of_input_order() {
        let vs: Vec<VertexId> = (0..100).collect();
        let mut vs_rev = vs.clone();
        vs_rev.reverse();
        let a = VertexPartition::assign(&vs, 4, 7);
        let b = VertexPartition::assign(&vs_rev, 4, 7);
        for i in 0..4 {
            assert_eq!(a.part(i), b.part(i));
        }
        let c = VertexPartition::assign(&vs, 4, 8);
        assert_ne!(
            (0..4).map(|i| a.part(i).len()).collect::<Vec<_>>(),
            (0..4).map(|i| c.part(i).len()).collect::<Vec<_>>(),
            "different seeds should (a.s.) differ"
        );
    }

    #[test]
    fn single_part_gets_everything() {
        let vs: Vec<VertexId> = (5..15).collect();
        let p = VertexPartition::assign(&vs, 1, 0);
        assert_eq!(p.part(0), &vs[..]);
    }
}
