//! Structural validation of CSR graphs, used by tests and as a debug-mode
//! check after deserialization.

use crate::csr::{Graph, VertexId};
use std::fmt;

/// A structural defect found in a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A neighbor id is out of the vertex range.
    NeighborOutOfRange {
        /// Vertex whose adjacency list is defective.
        vertex: VertexId,
        /// The out-of-range neighbor id it lists.
        neighbor: VertexId,
    },
    /// An adjacency list is not strictly sorted (implies duplicates too).
    UnsortedAdjacency {
        /// Vertex whose adjacency list is defective.
        vertex: VertexId,
    },
    /// A self-loop is present.
    SelfLoop {
        /// Vertex listing itself.
        vertex: VertexId,
    },
    /// `v` lists `u` but `u` does not list `v`.
    Asymmetric {
        /// Endpoint listing the edge.
        u: VertexId,
        /// Endpoint missing the reverse direction.
        v: VertexId,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::NeighborOutOfRange { vertex, neighbor } => {
                write!(f, "vertex {vertex} lists out-of-range neighbor {neighbor}")
            }
            StructureError::UnsortedAdjacency { vertex } => {
                write!(
                    f,
                    "adjacency list of vertex {vertex} is not strictly sorted"
                )
            }
            StructureError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            StructureError::Asymmetric { u, v } => {
                write!(f, "edge ({u},{v}) is present in only one direction")
            }
        }
    }
}

impl std::error::Error for StructureError {}

/// Verifies that `g` is a well-formed simple undirected CSR graph:
/// in-range sorted duplicate-free adjacency lists, no self-loops, and
/// symmetric edges. O(n + m log d).
pub fn check_structure(g: &Graph) -> Result<(), StructureError> {
    let n = g.num_vertices() as VertexId;
    for u in g.vertices() {
        let nbrs = g.neighbors(u);
        for window in nbrs.windows(2) {
            if window[0] >= window[1] {
                return Err(StructureError::UnsortedAdjacency { vertex: u });
            }
        }
        for &v in nbrs {
            if v >= n {
                return Err(StructureError::NeighborOutOfRange {
                    vertex: u,
                    neighbor: v,
                });
            }
            if v == u {
                return Err(StructureError::SelfLoop { vertex: u });
            }
            if g.neighbors(v).binary_search(&u).is_err() {
                return Err(StructureError::Asymmetric { u, v });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_graph_passes() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(check_structure(&g), Ok(()));
    }

    #[test]
    fn empty_graph_passes() {
        assert_eq!(check_structure(&Graph::empty(10)), Ok(()));
        assert_eq!(check_structure(&Graph::empty(0)), Ok(()));
    }

    #[test]
    fn errors_display() {
        let e = StructureError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = StructureError::Asymmetric { u: 1, v: 2 };
        assert!(e.to_string().contains("one direction"));
    }
}
