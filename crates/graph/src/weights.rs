//! Vertex-weight vectors and randomized weight models.
//!
//! The paper's algorithm is sensitive to the *shape* of the weight
//! distribution relative to the degree distribution (its whole point is
//! handling the deviations weights introduce into round compression), so the
//! experiment suite exercises several weight models:
//!
//! * scale-free models (`Uniform`, `Exponential`, `Zipf`) probing heavy
//!   tails,
//! * degree-correlated models (`DegreeProportional`, `DegreeInverse`)
//!   probing the interaction with the paper's `w(v)/d(v)` initialization,
//! * `Constant` recovering the unweighted special case of [GGK+18].

use crate::csr::{Graph, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// Positive vertex weights indexed by vertex id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexWeights(Vec<f64>);

impl VertexWeights {
    /// Wraps an explicit weight vector.
    pub fn from_vec(w: Vec<f64>) -> Self {
        Self(w)
    }

    /// `n` copies of `w`.
    pub fn constant(n: usize, w: f64) -> Self {
        Self(vec![w; n])
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over weights by value.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.0.iter().copied()
    }

    /// Borrow as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Largest weight, or 0 for empty.
    pub fn max(&self) -> f64 {
        self.0.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest weight, or +inf for empty.
    pub fn min(&self) -> f64 {
        self.0.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Rescales all weights by `factor`.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        for w in &mut self.0 {
            *w *= factor;
        }
    }
}

impl Index<VertexId> for VertexWeights {
    type Output = f64;

    fn index(&self, v: VertexId) -> &f64 {
        &self.0[v as usize]
    }
}

/// Randomized vertex-weight models. All models produce strictly positive,
/// finite weights and are deterministic given the seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightModel {
    /// Every weight equals the given constant (unweighted case when 1).
    Constant(f64),
    /// Uniform reals in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Uniform integers in `[lo, hi]`, stored as `f64`.
    UniformInt {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// Exponential with the given mean (heavy-ish tail).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Zipf/zeta-like: weight of rank `r` (a random permutation of `1..=n`)
    /// is `scale / r^exponent`. Heavy tail controlled by `exponent`.
    Zipf {
        /// Tail exponent.
        exponent: f64,
        /// Weight of rank 1.
        scale: f64,
    },
    /// `w(v) = base + slope * deg(v)` — expensive hubs. Probes the regime
    /// where the paper's `w(v)/d(v)` initialization flattens out.
    DegreeProportional {
        /// Degree-independent offset.
        base: f64,
        /// Cost per incident edge.
        slope: f64,
    },
    /// `w(v) = scale / (1 + deg(v))` — cheap hubs. The adversarial regime
    /// where greedy heuristics love hubs but good covers may avoid them.
    DegreeInverse {
        /// Numerator of the inverse-degree weight.
        scale: f64,
    },
}

impl WeightModel {
    /// Samples a weight vector for `graph` with the given seed.
    pub fn sample(&self, graph: &Graph, seed: u64) -> VertexWeights {
        let n = graph.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7765_6967_6874); // "weight"
        let w = match *self {
            WeightModel::Constant(c) => {
                assert!(c > 0.0 && c.is_finite());
                vec![c; n]
            }
            WeightModel::Uniform { lo, hi } => {
                assert!(0.0 < lo && lo <= hi && hi.is_finite());
                (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
            }
            WeightModel::UniformInt { lo, hi } => {
                assert!(0 < lo && lo <= hi);
                (0..n).map(|_| rng.gen_range(lo..=hi) as f64).collect()
            }
            WeightModel::Exponential { mean } => {
                assert!(mean > 0.0 && mean.is_finite());
                let exp = Exp::new(1.0 / mean);
                (0..n).map(|_| exp.sample(&mut rng).max(1e-9)).collect()
            }
            WeightModel::Zipf { exponent, scale } => {
                assert!(exponent > 0.0 && scale > 0.0);
                // Random rank permutation so rank is independent of id.
                let mut ranks: Vec<usize> = (1..=n).collect();
                shuffle(&mut ranks, &mut rng);
                ranks
                    .into_iter()
                    .map(|r| scale / (r as f64).powf(exponent))
                    .collect()
            }
            WeightModel::DegreeProportional { base, slope } => {
                assert!(base > 0.0 && slope >= 0.0);
                graph
                    .vertices()
                    .map(|v| base + slope * graph.degree(v) as f64)
                    .collect()
            }
            WeightModel::DegreeInverse { scale } => {
                assert!(scale > 0.0);
                graph
                    .vertices()
                    .map(|v| scale / (1.0 + graph.degree(v) as f64))
                    .collect()
            }
        };
        VertexWeights(w)
    }

    /// Short machine-readable name for table output.
    pub fn label(&self) -> &'static str {
        match self {
            WeightModel::Constant(_) => "constant",
            WeightModel::Uniform { .. } => "uniform",
            WeightModel::UniformInt { .. } => "uniform-int",
            WeightModel::Exponential { .. } => "exponential",
            WeightModel::Zipf { .. } => "zipf",
            WeightModel::DegreeProportional { .. } => "deg-prop",
            WeightModel::DegreeInverse { .. } => "deg-inv",
        }
    }
}

/// Exponential distribution via inverse-CDF sampling; avoids pulling in
/// `rand_distr` just for one distribution.
struct Exp {
    rate: f64,
}

impl Exp {
    fn new(rate: f64) -> Self {
        Self { rate }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.rate
    }
}

/// Fisher–Yates shuffle. `rand::seq::SliceRandom` would also do; this keeps
/// the dependency surface of the sampling path explicit and versionproof.
fn shuffle<T, R: Rng>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp;

    fn test_graph() -> Graph {
        gnp(200, 0.05, 7)
    }

    #[test]
    fn constant_weights() {
        let g = test_graph();
        let w = WeightModel::Constant(2.5).sample(&g, 0);
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|x| x == 2.5));
        assert_eq!(w.total(), 500.0);
    }

    #[test]
    fn uniform_weights_in_range() {
        let g = test_graph();
        let w = WeightModel::Uniform { lo: 1.0, hi: 3.0 }.sample(&g, 1);
        assert!(w.iter().all(|x| (1.0..=3.0).contains(&x)));
        assert!(w.max() > w.min(), "should not be degenerate");
    }

    #[test]
    fn uniform_int_weights_are_integral() {
        let g = test_graph();
        let w = WeightModel::UniformInt { lo: 1, hi: 100 }.sample(&g, 2);
        assert!(w
            .iter()
            .all(|x| x.fract() == 0.0 && (1.0..=100.0).contains(&x)));
    }

    #[test]
    fn exponential_weights_positive() {
        let g = test_graph();
        let w = WeightModel::Exponential { mean: 4.0 }.sample(&g, 3);
        assert!(w.iter().all(|x| x > 0.0 && x.is_finite()));
        let avg = w.total() / w.len() as f64;
        assert!((1.0..=10.0).contains(&avg), "mean ~4 expected, got {avg}");
    }

    #[test]
    fn zipf_weights_follow_rank_law() {
        let g = test_graph();
        let w = WeightModel::Zipf {
            exponent: 1.0,
            scale: 100.0,
        }
        .sample(&g, 4);
        assert!((w.max() - 100.0).abs() < 1e-9, "rank-1 weight is scale");
        assert!(w.min() >= 100.0 / 200.0 - 1e-9);
    }

    #[test]
    fn degree_correlated_weights() {
        let g = test_graph();
        let wp = WeightModel::DegreeProportional {
            base: 1.0,
            slope: 2.0,
        }
        .sample(&g, 5);
        let wi = WeightModel::DegreeInverse { scale: 10.0 }.sample(&g, 5);
        for v in g.vertices() {
            assert_eq!(wp[v], 1.0 + 2.0 * g.degree(v) as f64);
            assert_eq!(wi[v], 10.0 / (1.0 + g.degree(v) as f64));
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let g = test_graph();
        let m = WeightModel::Uniform { lo: 1.0, hi: 9.0 };
        assert_eq!(m.sample(&g, 42), m.sample(&g, 42));
        assert_ne!(m.sample(&g, 42), m.sample(&g, 43));
    }

    #[test]
    fn scale_rescales() {
        let mut w = VertexWeights::from_vec(vec![1.0, 2.0]);
        w.scale(3.0);
        assert_eq!(w.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WeightModel::Constant(1.0).label(), "constant");
        assert_eq!(
            WeightModel::Zipf {
                exponent: 1.0,
                scale: 1.0
            }
            .label(),
            "zipf"
        );
    }
}
