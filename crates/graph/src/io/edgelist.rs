//! Plain text edge-list format.
//!
//! Line 1: `n` (vertex count). Every following non-empty, non-`#` line:
//! `u v` with `0 <= u, v < n`. An optional third column carries a vertex
//! weight line instead, using the prefix `w v weight` — this keeps weighted
//! instances in one self-contained file.

use super::{parse_err, IoError};
use crate::builder::GraphBuilder;
use crate::csr::VertexId;
use crate::weights::VertexWeights;
use crate::WeightedGraph;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a (possibly weighted) edge list. Vertices without an explicit
/// `w` line default to weight 1.
pub fn read_edge_list<R: Read>(reader: R) -> Result<WeightedGraph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;
    let n: usize = loop {
        let line = match lines.next() {
            Some(l) => l?,
            None => return Err(parse_err(0, "empty input: expected vertex count")),
        };
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        break t
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad vertex count {t:?}")))?;
    };
    let mut b = GraphBuilder::new(n);
    let mut weights = vec![1.0f64; n];
    for line in lines {
        let line = line?;
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let first = it.next().unwrap();
        if first == "w" {
            let v: usize = it
                .next()
                .ok_or_else(|| parse_err(line_no, "weight line missing vertex"))?
                .parse()
                .map_err(|_| parse_err(line_no, "bad vertex id in weight line"))?;
            let w: f64 = it
                .next()
                .ok_or_else(|| parse_err(line_no, "weight line missing value"))?
                .parse()
                .map_err(|_| parse_err(line_no, "bad weight value"))?;
            if v >= n {
                return Err(parse_err(line_no, format!("vertex {v} out of range")));
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(parse_err(line_no, format!("weight {w} must be positive")));
            }
            weights[v] = w;
            continue;
        }
        let u: VertexId = first
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad endpoint {first:?}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(line_no, "edge line missing second endpoint"))?
            .parse()
            .map_err(|_| parse_err(line_no, "bad second endpoint"))?;
        if u as usize >= n || v as usize >= n {
            return Err(parse_err(line_no, format!("edge ({u},{v}) out of range")));
        }
        if u == v {
            return Err(parse_err(line_no, format!("self-loop at {u}")));
        }
        b.add_edge(u, v);
    }
    Ok(WeightedGraph::new(
        b.build(),
        VertexWeights::from_vec(weights),
    ))
}

/// Writes a weighted graph in the edge-list format accepted by
/// [`read_edge_list`]. Unit weights are omitted.
pub fn write_edge_list<W: Write>(wg: &WeightedGraph, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "{}", wg.num_vertices())?;
    for v in wg.graph.vertices() {
        let w = wg.weight(v);
        if w != 1.0 {
            writeln!(writer, "w {v} {w}")?;
        }
    }
    for e in wg.graph.edges() {
        writeln!(writer, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;

    fn roundtrip(wg: &WeightedGraph) -> WeightedGraph {
        let mut buf = Vec::new();
        write_edge_list(wg, &mut buf).unwrap();
        read_edge_list(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_weighted() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 2.5, 3.0, 1.0]));
        let back = roundtrip(&wg);
        assert_eq!(back.graph, wg.graph);
        assert_eq!(back.weights, wg.weights);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let input = "# a graph\n\n3\n# weights\nw 1 4.5\n0 1\n\n1 2\n";
        let wg = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(wg.num_vertices(), 3);
        assert_eq!(wg.num_edges(), 2);
        assert_eq!(wg.weight(1), 4.5);
        assert_eq!(wg.weight(0), 1.0);
    }

    #[test]
    fn errors_on_bad_content() {
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_edge_list("x".as_bytes()).is_err());
        assert!(read_edge_list("2\n0 5\n".as_bytes()).is_err());
        assert!(read_edge_list("2\n0 0\n".as_bytes()).is_err());
        assert!(read_edge_list("2\nw 0 -1\n".as_bytes()).is_err());
        assert!(read_edge_list("2\n0\n".as_bytes()).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = read_edge_list("2\n0 1\n0 9\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
