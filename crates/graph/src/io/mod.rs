//! Graph (de)serialization: plain edge lists and DIMACS, with both
//! in-memory loaders and streaming readers that feed an
//! [`EdgeSink`](crate::builder::EdgeSink) edge-by-edge for out-of-core
//! construction.

mod dimacs;
mod edgelist;
mod stream;

pub use dimacs::{read_dimacs, write_dimacs};
pub use edgelist::{read_edge_list, write_edge_list};
pub use stream::{peek_vertex_count, stream_edges_into};

use std::fmt;

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content with a line number and message.
    Parse {
        /// 1-based line number of the defect (0 when unknown).
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}
