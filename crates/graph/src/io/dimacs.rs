//! DIMACS graph format (`p edge n m` header, `e u v` edge lines with
//! 1-based vertex ids, optional `n v w` vertex-weight lines as used by
//! weighted vertex cover benchmark sets).

use super::{parse_err, IoError};
use crate::builder::GraphBuilder;
use crate::weights::VertexWeights;
use crate::WeightedGraph;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a DIMACS `edge`-format graph; `n` lines (node weights) are
/// honored, all other weights default to 1.
pub fn read_dimacs<R: Read>(reader: R) -> Result<WeightedGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut weights: Vec<f64> = Vec::new();
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut it = t.split_whitespace();
        match it.next().unwrap() {
            "p" => {
                if builder.is_some() {
                    return Err(parse_err(line_no, "duplicate problem line"));
                }
                let kind = it.next().unwrap_or("");
                if kind != "edge" && kind != "col" {
                    return Err(parse_err(
                        line_no,
                        format!("unsupported problem type {kind:?}"),
                    ));
                }
                let n: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "problem line missing n"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad n"))?;
                declared_edges = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "problem line missing m"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad m"))?;
                builder = Some(GraphBuilder::with_capacity(n, declared_edges));
                weights = vec![1.0; n];
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "edge before problem line"))?;
                let u: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "edge missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad endpoint"))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "edge missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad endpoint"))?;
                if u == 0 || v == 0 || u > b.num_vertices() || v > b.num_vertices() {
                    return Err(parse_err(line_no, format!("edge ({u},{v}) out of 1..=n")));
                }
                if u == v {
                    return Err(parse_err(line_no, "self-loop"));
                }
                b.add_edge((u - 1) as u32, (v - 1) as u32);
                seen_edges += 1;
            }
            "n" => {
                if builder.is_none() {
                    return Err(parse_err(line_no, "node line before problem line"));
                }
                let v: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "node line missing vertex"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad vertex"))?;
                let w: f64 = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "node line missing weight"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad weight"))?;
                if v == 0 || v > weights.len() {
                    return Err(parse_err(line_no, format!("vertex {v} out of 1..=n")));
                }
                if !(w > 0.0 && w.is_finite()) {
                    return Err(parse_err(line_no, "weight must be positive"));
                }
                weights[v - 1] = w;
            }
            other => {
                return Err(parse_err(line_no, format!("unknown line type {other:?}")));
            }
        }
    }
    let b = builder.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if seen_edges != declared_edges {
        // Tolerated by most DIMACS consumers; we keep it strict-but-soft:
        // the graph is still returned, mismatch is not an error because
        // duplicate `e` lines are common in the wild.
    }
    Ok(WeightedGraph::new(
        b.build(),
        VertexWeights::from_vec(weights),
    ))
}

/// Writes DIMACS `edge` format with `n` node-weight lines for non-unit
/// weights.
pub fn write_dimacs<W: Write>(wg: &WeightedGraph, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "p edge {} {}", wg.num_vertices(), wg.num_edges())?;
    for v in wg.graph.vertices() {
        let w = wg.weight(v);
        if w != 1.0 {
            writeln!(writer, "n {} {}", v + 1, w)?;
        }
    }
    for e in wg.graph.edges() {
        writeln!(writer, "e {} {}", e.u() + 1, e.v() + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![2.0, 1.0, 5.0, 1.0]));
        let mut buf = Vec::new();
        write_dimacs(&wg, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back.graph, wg.graph);
        assert_eq!(back.weights, wg.weights);
    }

    #[test]
    fn reads_comments_and_one_based_ids() {
        let input = "c test graph\np edge 3 2\ne 1 2\ne 2 3\nn 2 7.5\n";
        let wg = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(wg.num_vertices(), 3);
        assert!(wg.graph.has_edge(0, 1) && wg.graph.has_edge(1, 2));
        assert_eq!(wg.weight(1), 7.5);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_dimacs("e 1 2\n".as_bytes()).is_err());
        assert!(read_dimacs("p edge 2 1\ne 0 1\n".as_bytes()).is_err());
        assert!(read_dimacs("p edge 2 1\ne 1 1\n".as_bytes()).is_err());
        assert!(read_dimacs("p matrix 2 1\n".as_bytes()).is_err());
        assert!(read_dimacs("p edge 2 0\nn 1 -2\n".as_bytes()).is_err());
        assert!(read_dimacs("".as_bytes()).is_err());
    }
}
