//! Streaming file readers: parse a graph file edge-by-edge into an
//! [`EdgeSink`] without materializing the edge set, so
//! [`GraphPreset::File`](crate::presets::GraphPreset) instances can be
//! routed through the out-of-core build path
//! ([`crate::outofcore::StreamingGraphBuilder`]).
//!
//! The grammar and validation match the in-memory loaders
//! ([`read_edge_list`](super::read_edge_list) /
//! [`read_dimacs`](super::read_dimacs)) exactly; only the destination
//! differs, so the streamed graph equals the loaded one. Weight lines
//! are validated but not collected — weights are `O(n)` and are loaded
//! separately when needed.
//!
//! Because a sink must be sized before the first edge,
//! [`peek_vertex_count`] reads just the header (the leading vertex-count
//! line, or the DIMACS `p` line); callers peek, construct the sink, then
//! [`stream_edges_into`] with a fresh reader.

use super::{parse_err, IoError};
use crate::builder::EdgeSink;
use crate::csr::VertexId;
use crate::presets::GraphFileFormat;
use std::io::{BufRead, BufReader, Read};

/// Reads only as far as needed to learn the vertex count: the first
/// non-comment line of an edge list, or the `p` line of a DIMACS file.
pub fn peek_vertex_count<R: Read>(reader: R, format: GraphFileFormat) -> Result<usize, IoError> {
    let lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;
    for line in lines {
        let line = line?;
        line_no += 1;
        let t = line.trim();
        match format {
            GraphFileFormat::EdgeList => {
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                return t
                    .parse()
                    .map_err(|_| parse_err(line_no, format!("bad vertex count {t:?}")));
            }
            GraphFileFormat::Dimacs => {
                if t.is_empty() || t.starts_with('c') {
                    continue;
                }
                let mut it = t.split_whitespace();
                if it.next() != Some("p") {
                    return Err(parse_err(line_no, "expected problem line first"));
                }
                let kind = it.next().unwrap_or("");
                if kind != "edge" && kind != "col" {
                    return Err(parse_err(
                        line_no,
                        format!("unsupported problem type {kind:?}"),
                    ));
                }
                return it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "problem line missing n"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad n"));
            }
        }
    }
    Err(parse_err(0, "empty input: expected vertex count"))
}

/// Streams every edge of the file into `sink` (in file order, so the
/// resulting graph equals the in-memory loader's), validating with the
/// same rules as the loaders. Weight lines are checked and skipped.
/// Returns the vertex count.
pub fn stream_edges_into<R: Read>(
    reader: R,
    format: GraphFileFormat,
    sink: &mut impl EdgeSink,
) -> Result<usize, IoError> {
    match format {
        GraphFileFormat::EdgeList => stream_edge_list(reader, sink),
        GraphFileFormat::Dimacs => stream_dimacs(reader, sink),
    }
}

fn stream_edge_list<R: Read>(reader: R, sink: &mut impl EdgeSink) -> Result<usize, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;
    let n: usize = loop {
        let line = match lines.next() {
            Some(l) => l?,
            None => return Err(parse_err(0, "empty input: expected vertex count")),
        };
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        break t
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad vertex count {t:?}")))?;
    };
    for line in lines {
        let line = line?;
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let first = it.next().unwrap();
        if first == "w" {
            let v: usize = it
                .next()
                .ok_or_else(|| parse_err(line_no, "weight line missing vertex"))?
                .parse()
                .map_err(|_| parse_err(line_no, "bad vertex id in weight line"))?;
            let w: f64 = it
                .next()
                .ok_or_else(|| parse_err(line_no, "weight line missing value"))?
                .parse()
                .map_err(|_| parse_err(line_no, "bad weight value"))?;
            if v >= n {
                return Err(parse_err(line_no, format!("vertex {v} out of range")));
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(parse_err(line_no, format!("weight {w} must be positive")));
            }
            continue;
        }
        let u: VertexId = first
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad endpoint {first:?}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(line_no, "edge line missing second endpoint"))?
            .parse()
            .map_err(|_| parse_err(line_no, "bad second endpoint"))?;
        if u as usize >= n || v as usize >= n {
            return Err(parse_err(line_no, format!("edge ({u},{v}) out of range")));
        }
        if u == v {
            return Err(parse_err(line_no, format!("self-loop at {u}")));
        }
        sink.add_edge(u, v);
    }
    Ok(n)
}

fn stream_dimacs<R: Read>(reader: R, sink: &mut impl EdgeSink) -> Result<usize, IoError> {
    let reader = BufReader::new(reader);
    let mut n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut it = t.split_whitespace();
        match it.next().unwrap() {
            "p" => {
                if n.is_some() {
                    return Err(parse_err(line_no, "duplicate problem line"));
                }
                let kind = it.next().unwrap_or("");
                if kind != "edge" && kind != "col" {
                    return Err(parse_err(
                        line_no,
                        format!("unsupported problem type {kind:?}"),
                    ));
                }
                n = Some(
                    it.next()
                        .ok_or_else(|| parse_err(line_no, "problem line missing n"))?
                        .parse()
                        .map_err(|_| parse_err(line_no, "bad n"))?,
                );
            }
            "e" => {
                let n = n.ok_or_else(|| parse_err(line_no, "edge before problem line"))?;
                let u: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "edge missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad endpoint"))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "edge missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad endpoint"))?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(parse_err(line_no, format!("edge ({u},{v}) out of 1..=n")));
                }
                if u == v {
                    return Err(parse_err(line_no, "self-loop"));
                }
                sink.add_edge((u - 1) as VertexId, (v - 1) as VertexId);
            }
            "n" => {
                let n = n.ok_or_else(|| parse_err(line_no, "node line before problem line"))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "node line missing vertex"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad vertex"))?;
                let w: f64 = it
                    .next()
                    .ok_or_else(|| parse_err(line_no, "node line missing weight"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad weight"))?;
                if v == 0 || v > n {
                    return Err(parse_err(line_no, format!("vertex {v} out of 1..=n")));
                }
                if !(w > 0.0 && w.is_finite()) {
                    return Err(parse_err(line_no, "weight must be positive"));
                }
            }
            other => {
                return Err(parse_err(line_no, format!("unknown line type {other:?}")));
            }
        }
    }
    n.ok_or_else(|| parse_err(0, "missing problem line"))
}

#[cfg(test)]
mod tests {
    use super::super::{read_dimacs, read_edge_list};
    use super::*;
    use crate::builder::GraphBuilder;

    const EDGELIST: &str = "# demo\n5\nw 1 2.5\n0 1\n1 2\n2 3\n3 4\n0 4\n";
    const DIMACS: &str = "c demo\np edge 5 5\nn 2 2.5\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 1 5\n";

    #[test]
    fn peek_matches_loader() {
        assert_eq!(
            peek_vertex_count(EDGELIST.as_bytes(), GraphFileFormat::EdgeList).unwrap(),
            5
        );
        assert_eq!(
            peek_vertex_count(DIMACS.as_bytes(), GraphFileFormat::Dimacs).unwrap(),
            5
        );
        assert!(peek_vertex_count("".as_bytes(), GraphFileFormat::EdgeList).is_err());
        assert!(peek_vertex_count("e 1 2\n".as_bytes(), GraphFileFormat::Dimacs).is_err());
    }

    #[test]
    fn streamed_graph_equals_loaded_graph() {
        for (text, format, load) in [
            (
                EDGELIST,
                GraphFileFormat::EdgeList,
                read_edge_list(EDGELIST.as_bytes()).unwrap(),
            ),
            (
                DIMACS,
                GraphFileFormat::Dimacs,
                read_dimacs(DIMACS.as_bytes()).unwrap(),
            ),
        ] {
            let n = peek_vertex_count(text.as_bytes(), format).unwrap();
            let mut b = GraphBuilder::new(n);
            let n2 = stream_edges_into(text.as_bytes(), format, &mut b).unwrap();
            assert_eq!(n, n2);
            assert_eq!(b.build(), load.graph);
        }
    }

    #[test]
    fn streaming_keeps_loader_validation() {
        let mut b = GraphBuilder::new(2);
        assert!(
            stream_edges_into("2\n0 5\n".as_bytes(), GraphFileFormat::EdgeList, &mut b).is_err()
        );
        let mut b = GraphBuilder::new(2);
        assert!(stream_edges_into(
            "p edge 2 1\ne 1 1\n".as_bytes(),
            GraphFileFormat::Dimacs,
            &mut b
        )
        .is_err());
    }
}
