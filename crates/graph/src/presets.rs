//! Named workload presets over the [`generators`](crate::generators):
//! each preset is a parameterized graph family scaled by a target vertex
//! count and average degree, so that benchmark matrices can sweep
//! families × sizes uniformly without re-deriving per-generator
//! parameters at every call site.
//!
//! Every preset is deterministic given its seed (inherited from the
//! underlying generator), and [`GraphPreset::family`] names are stable —
//! they appear verbatim in `BENCH_core.json` workload ids, so renaming
//! one is a schema-visible change.

use crate::builder::EdgeSink;
use crate::generators::{
    chung_lu, gnm, gnm_stream, gnm_stream_into, gnp, random_bipartite, rmat, RmatParams,
};
use crate::io::{peek_vertex_count, read_dimacs, read_edge_list, stream_edges_into};
use crate::outofcore::{ChunkedCsr, StreamingGraphBuilder};
use crate::{Graph, WeightedGraph};
use std::path::Path;

/// On-disk format of a [`GraphPreset::File`] workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFileFormat {
    /// DIMACS `edge`/`col` format (`p edge n m`, 1-based `e u v` lines,
    /// optional `n v w` vertex weights).
    Dimacs,
    /// Plain edge list (`n` on the first line, `u v` edges, optional
    /// `w v weight` lines).
    EdgeList,
}

/// A named, scaled graph family.
///
/// # Examples
///
/// Build one family in memory, or sweep the whole benchmark matrix:
///
/// ```
/// use mwvc_graph::GraphPreset;
///
/// let g = GraphPreset::Gnm { n: 256, avg_degree: 8 }.build(7);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 256 * 8 / 2);
///
/// // The five standard families of the benchmark matrix, stably named.
/// let families: Vec<&str> = GraphPreset::standard_families(1024, 16)
///     .iter()
///     .map(|p| p.family())
///     .collect();
/// assert_eq!(families, ["gnp", "gnm", "chung_lu", "rmat", "bipartite"]);
/// ```
///
/// The streamable families can instead be built **out of core**, never
/// holding the edge set in RAM (see
/// [`build_streamed`](GraphPreset::build_streamed)):
///
/// ```
/// use mwvc_graph::GraphPreset;
///
/// let path = std::env::temp_dir().join("preset-doc-example.ocsr");
/// let preset = GraphPreset::GnmStream { n: 512, avg_degree: 8 };
/// let csr = preset
///     .build_streamed(7, 1 << 16, None, &path)
///     .expect("stream build");
/// assert_eq!(csr.num_vertices(), 512);
/// std::fs::remove_file(path).ok();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPreset {
    /// Erdős–Rényi `G(n, p)` with `p = avg_degree / (n-1)`.
    Gnp {
        /// Vertices.
        n: usize,
        /// Target average degree.
        avg_degree: f64,
    },
    /// Erdős–Rényi `G(n, m)` with exactly `n·avg_degree/2` edges.
    Gnm {
        /// Vertices.
        n: usize,
        /// Exact average degree (`n·avg_degree` must be even-friendly;
        /// the edge count is floored).
        avg_degree: usize,
    },
    /// `G(n, m)`-style family with `O(1)` sampling state
    /// ([`gnm_stream`]): `n·avg_degree/2` pair draws *with* replacement,
    /// deduplicated by the builder. The only generated family whose
    /// [`GraphPreset::build_streamed`] path never holds the edge set in
    /// RAM — the workload of the `huge` benchmark tier.
    GnmStream {
        /// Vertices.
        n: usize,
        /// Target average degree (realized degree is marginally lower
        /// from with-replacement collisions).
        avg_degree: usize,
    },
    /// Chung–Lu power law with exponent `beta` (degree skew `Δ ≫ d`).
    ChungLu {
        /// Vertices.
        n: usize,
        /// Power-law exponent.
        beta: f64,
        /// Target average degree.
        avg_degree: f64,
    },
    /// R-MAT (Graph500-style recursive skew); `n = 2^scale`.
    Rmat {
        /// `log2` of the vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
    },
    /// Random bipartite `G(n/2, n/2, p)` with `p` set for the target
    /// average degree.
    Bipartite {
        /// Total vertices (split evenly between the sides).
        n: usize,
        /// Target average degree.
        avg_degree: f64,
    },
    /// A real graph loaded from a file ([`crate::io`] loaders) — the entry
    /// point for running external instances through any executor and the
    /// bench harness. Deterministic trivially (the seed is ignored); file
    /// weights (DIMACS `n` lines / edge-list `w` lines) are surfaced by
    /// [`GraphPreset::load_weighted`].
    File {
        /// Path to the graph file.
        path: String,
        /// On-disk format.
        format: GraphFileFormat,
    },
}

impl GraphPreset {
    /// The five standard families at a given size tier, in stable order.
    /// This is the generator axis of the benchmark workload matrix.
    pub fn standard_families(n: usize, avg_degree: usize) -> Vec<GraphPreset> {
        let d = avg_degree as f64;
        vec![
            GraphPreset::Gnp { n, avg_degree: d },
            GraphPreset::Gnm { n, avg_degree },
            GraphPreset::ChungLu {
                n,
                beta: 2.3,
                avg_degree: d,
            },
            GraphPreset::Rmat {
                scale: (n.max(2) as f64).log2().round() as u32,
                edge_factor: avg_degree / 2,
            },
            GraphPreset::Bipartite { n, avg_degree: d },
        ]
    }

    /// Derives a [`GraphPreset::File`] from a path, inferring the format
    /// from the extension: `.col`/`.clq`/`.dimacs` → DIMACS,
    /// `.txt`/`.edges`/`.el` → edge list.
    pub fn from_path(path: &str) -> Result<GraphPreset, String> {
        let ext = path.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
        let format = match ext.as_str() {
            "col" | "clq" | "dimacs" => GraphFileFormat::Dimacs,
            "txt" | "edges" | "el" => GraphFileFormat::EdgeList,
            other => {
                return Err(format!(
                    "cannot infer graph format from extension {other:?} \
                     (known: .col/.clq/.dimacs, .txt/.edges/.el)"
                ))
            }
        };
        Ok(GraphPreset::File {
            path: path.to_string(),
            format,
        })
    }

    /// Stable family name (appears in benchmark workload ids).
    pub fn family(&self) -> &'static str {
        match self {
            GraphPreset::Gnp { .. } => "gnp",
            GraphPreset::Gnm { .. } => "gnm",
            GraphPreset::GnmStream { .. } => "gnm_stream",
            GraphPreset::ChungLu { .. } => "chung_lu",
            GraphPreset::Rmat { .. } => "rmat",
            GraphPreset::Bipartite { .. } => "bipartite",
            GraphPreset::File { .. } => "file",
        }
    }

    /// Nominal vertex count of the preset (`2^scale` for R-MAT; `0` for
    /// [`GraphPreset::File`], whose size is unknown until loaded).
    pub fn nominal_n(&self) -> usize {
        match *self {
            GraphPreset::Gnp { n, .. }
            | GraphPreset::Gnm { n, .. }
            | GraphPreset::GnmStream { n, .. }
            | GraphPreset::ChungLu { n, .. }
            | GraphPreset::Bipartite { n, .. } => n,
            GraphPreset::Rmat { scale, .. } => 1usize << scale,
            GraphPreset::File { .. } => 0,
        }
    }

    /// Loads the weighted instance of a [`GraphPreset::File`] preset,
    /// honoring the weights stored in the file (vertices without explicit
    /// weights default to 1). Errors for every other preset — generated
    /// families carry no intrinsic weights; sample a
    /// [`crate::WeightModel`] over [`GraphPreset::build`] instead.
    pub fn load_weighted(&self) -> Result<WeightedGraph, String> {
        let GraphPreset::File { path, format } = self else {
            return Err(format!(
                "preset family {:?} is generated, not loaded from a file",
                self.family()
            ));
        };
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
        let parsed = match format {
            GraphFileFormat::Dimacs => read_dimacs(file),
            GraphFileFormat::EdgeList => read_edge_list(file),
        };
        parsed.map_err(|e| format!("cannot parse {path:?}: {e}"))
    }

    /// Builds the graph deterministically from `seed`. For
    /// [`GraphPreset::File`] the seed is ignored and the file's graph
    /// structure is returned (weights dropped — use
    /// [`GraphPreset::load_weighted`] to keep them); panics with the load
    /// error if the file is missing or malformed, matching the infallible
    /// signature of the generated families.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphPreset::Gnp { n, avg_degree } => {
                let p = if n > 1 {
                    (avg_degree / (n - 1) as f64).min(1.0)
                } else {
                    0.0
                };
                gnp(n, p, seed)
            }
            GraphPreset::Gnm { n, avg_degree } => gnm(n, n * avg_degree / 2, seed),
            GraphPreset::GnmStream { n, avg_degree } => {
                gnm_stream(n, (n * avg_degree / 2) as u64, seed)
            }
            GraphPreset::ChungLu {
                n,
                beta,
                avg_degree,
            } => chung_lu(n, beta, avg_degree, seed),
            GraphPreset::Rmat { scale, edge_factor } => {
                rmat(scale, edge_factor, RmatParams::default(), seed)
            }
            GraphPreset::Bipartite { n, avg_degree } => {
                let left = n / 2;
                let right = n - left;
                let p = if left > 0 && right > 0 {
                    (avg_degree * n as f64 / (2.0 * left as f64 * right as f64)).min(1.0)
                } else {
                    0.0
                };
                random_bipartite(left, right, p, seed)
            }
            GraphPreset::File { .. } => {
                self.load_weighted()
                    .unwrap_or_else(|e| panic!("file preset: {e}"))
                    .graph
            }
        }
    }

    /// Vertex count available *before* building: the nominal size for
    /// generated families, the file header for [`GraphPreset::File`]
    /// (read without parsing the body). This is what sizes the sink of
    /// the streaming path.
    pub fn streamed_num_vertices(&self) -> Result<usize, String> {
        match self {
            GraphPreset::File { path, format } => {
                let f =
                    std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
                peek_vertex_count(f, *format).map_err(|e| format!("cannot parse {path:?}: {e}"))
            }
            _ => Ok(self.nominal_n()),
        }
    }

    /// Emits the preset's edge sequence into `sink` (which must be sized
    /// for [`streamed_num_vertices`](Self::streamed_num_vertices)).
    ///
    /// Memory: `O(1)` beyond the sink for [`GraphPreset::GnmStream`] and
    /// [`GraphPreset::File`] (the genuinely streaming families). Every
    /// other generated family has `Θ(m)` sampling state by construction
    /// (rejection sets, stub shuffles, shared weight tables), so those
    /// fall back to an in-memory build replayed into the sink — correct
    /// and bit-identical, but not memory-bounded; use `GnmStream` for
    /// instances that must not fit in RAM.
    pub fn stream_edges(&self, seed: u64, sink: &mut impl EdgeSink) -> Result<(), String> {
        match self {
            GraphPreset::GnmStream { n, avg_degree } => {
                gnm_stream_into(*n, (n * avg_degree / 2) as u64, seed, sink);
                Ok(())
            }
            GraphPreset::File { path, format } => {
                let f =
                    std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
                stream_edges_into(f, *format, sink)
                    .map(|_| ())
                    .map_err(|e| format!("cannot parse {path:?}: {e}"))
            }
            _ => {
                let g = self.build(seed);
                for e in g.edges() {
                    sink.add_edge(e.u(), e.v());
                }
                Ok(())
            }
        }
    }

    /// Builds the preset through the out-of-core path: edges stream into
    /// a byte-budgeted [`StreamingGraphBuilder`] whose runs land in
    /// `scratch_dir` and whose bucketed result is written to `out_path`.
    /// The resulting file loads to the same graph as
    /// [`build`](Self::build) with the same seed.
    pub fn build_streamed(
        &self,
        seed: u64,
        byte_budget: usize,
        scratch_dir: Option<&Path>,
        out_path: &Path,
    ) -> Result<ChunkedCsr, String> {
        let n = self.streamed_num_vertices()?;
        let mut b = StreamingGraphBuilder::new(n, byte_budget, scratch_dir);
        self.stream_edges(seed, &mut b)?;
        b.finish(out_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_families_are_five_and_stably_named() {
        let fams = GraphPreset::standard_families(1024, 16);
        let names: Vec<&str> = fams.iter().map(|p| p.family()).collect();
        assert_eq!(names, ["gnp", "gnm", "chung_lu", "rmat", "bipartite"]);
        for p in &fams {
            assert_eq!(p.nominal_n(), 1024);
        }
    }

    #[test]
    fn presets_build_deterministically_near_target_degree() {
        for preset in GraphPreset::standard_families(1024, 16) {
            let a = preset.build(7);
            let b = preset.build(7);
            assert_eq!(a.num_edges(), b.num_edges(), "{}", preset.family());
            let d = 2.0 * a.num_edges() as f64 / a.num_vertices().max(1) as f64;
            assert!(
                d > 4.0 && d < 32.0,
                "{}: average degree {d} far from target 16",
                preset.family()
            );
        }
    }

    #[test]
    fn gnm_preset_hits_exact_edge_count() {
        let g = GraphPreset::Gnm {
            n: 500,
            avg_degree: 16,
        }
        .build(3);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn file_preset_roundtrips_through_both_loaders() {
        use crate::io::{write_dimacs, write_edge_list};
        use crate::{VertexWeights, WeightedGraph};
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 2.5, 1.0, 4.0, 1.0]));
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let mut dimacs = Vec::new();
        write_dimacs(&wg, &mut dimacs).unwrap();
        let mut edges = Vec::new();
        write_edge_list(&wg, &mut edges).unwrap();
        for (name, buf) in [
            (format!("preset-{pid}.col"), dimacs),
            (format!("preset-{pid}.edges"), edges),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, &buf).unwrap();
            let preset = GraphPreset::from_path(path.to_str().unwrap()).unwrap();
            assert_eq!(preset.family(), "file");
            assert_eq!(preset.nominal_n(), 0, "size unknown before loading");
            // build() ignores the seed and returns the file's structure...
            let ga = preset.build(1);
            let gb = preset.build(2);
            assert_eq!(ga, wg.graph);
            assert_eq!(ga, gb);
            // ...while load_weighted keeps the stored weights.
            let loaded = preset.load_weighted().unwrap();
            assert_eq!(loaded.graph, wg.graph);
            assert_eq!(loaded.weights, wg.weights);
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn file_preset_error_paths_are_clear() {
        let err = GraphPreset::from_path("graph.xyz").unwrap_err();
        assert!(err.contains("extension"), "{err}");
        let missing = GraphPreset::File {
            path: "/nonexistent/definitely-missing.col".into(),
            format: GraphFileFormat::Dimacs,
        };
        let err = missing.load_weighted().unwrap_err();
        assert!(err.contains("cannot open"), "{err}");
        let generated = GraphPreset::Gnm {
            n: 10,
            avg_degree: 2,
        };
        let err = generated.load_weighted().unwrap_err();
        assert!(err.contains("generated"), "{err}");
    }

    #[test]
    fn streamed_presets_equal_in_memory_builds() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        // One genuinely streaming family, one fallback family, one file.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let file_path = dir.join(format!("preset-stream-{pid}.edges"));
        {
            use crate::io::write_edge_list;
            let mut buf = Vec::new();
            write_edge_list(&WeightedGraph::unweighted(g.clone()), &mut buf).unwrap();
            std::fs::write(&file_path, &buf).unwrap();
        }
        let presets = [
            GraphPreset::GnmStream {
                n: 300,
                avg_degree: 8,
            },
            GraphPreset::Gnm {
                n: 300,
                avg_degree: 8,
            },
            GraphPreset::from_path(file_path.to_str().unwrap()).unwrap(),
        ];
        for (i, preset) in presets.iter().enumerate() {
            let out = dir.join(format!("preset-stream-{pid}-{i}.ocsr"));
            let csr = preset.build_streamed(9, 4096, None, &out).unwrap();
            assert_eq!(
                csr.load_graph().unwrap(),
                preset.build(9),
                "{} diverged between build paths",
                preset.family()
            );
            let _ = std::fs::remove_file(out);
        }
        let _ = std::fs::remove_file(file_path);
    }

    #[test]
    fn gnm_stream_family_is_stably_named() {
        let p = GraphPreset::GnmStream {
            n: 64,
            avg_degree: 4,
        };
        assert_eq!(p.family(), "gnm_stream");
        assert_eq!(p.nominal_n(), 64);
        assert_eq!(p.streamed_num_vertices().unwrap(), 64);
        assert!(p.load_weighted().is_err());
    }

    #[test]
    fn rmat_nominal_n_is_power_of_scale() {
        let p = GraphPreset::Rmat {
            scale: 10,
            edge_factor: 8,
        };
        assert_eq!(p.nominal_n(), 1024);
        assert!(p.build(1).num_vertices() <= 1024);
    }
}
