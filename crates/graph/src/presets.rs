//! Named workload presets over the [`generators`](crate::generators):
//! each preset is a parameterized graph family scaled by a target vertex
//! count and average degree, so that benchmark matrices can sweep
//! families × sizes uniformly without re-deriving per-generator
//! parameters at every call site.
//!
//! Every preset is deterministic given its seed (inherited from the
//! underlying generator), and [`GraphPreset::family`] names are stable —
//! they appear verbatim in `BENCH_core.json` workload ids, so renaming
//! one is a schema-visible change.

use crate::generators::{chung_lu, gnm, gnp, random_bipartite, rmat, RmatParams};
use crate::Graph;

/// A named, scaled graph family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphPreset {
    /// Erdős–Rényi `G(n, p)` with `p = avg_degree / (n-1)`.
    Gnp {
        /// Vertices.
        n: usize,
        /// Target average degree.
        avg_degree: f64,
    },
    /// Erdős–Rényi `G(n, m)` with exactly `n·avg_degree/2` edges.
    Gnm {
        /// Vertices.
        n: usize,
        /// Exact average degree (`n·avg_degree` must be even-friendly;
        /// the edge count is floored).
        avg_degree: usize,
    },
    /// Chung–Lu power law with exponent `beta` (degree skew `Δ ≫ d`).
    ChungLu {
        /// Vertices.
        n: usize,
        /// Power-law exponent.
        beta: f64,
        /// Target average degree.
        avg_degree: f64,
    },
    /// R-MAT (Graph500-style recursive skew); `n = 2^scale`.
    Rmat {
        /// `log2` of the vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
    },
    /// Random bipartite `G(n/2, n/2, p)` with `p` set for the target
    /// average degree.
    Bipartite {
        /// Total vertices (split evenly between the sides).
        n: usize,
        /// Target average degree.
        avg_degree: f64,
    },
}

impl GraphPreset {
    /// The five standard families at a given size tier, in stable order.
    /// This is the generator axis of the benchmark workload matrix.
    pub fn standard_families(n: usize, avg_degree: usize) -> Vec<GraphPreset> {
        let d = avg_degree as f64;
        vec![
            GraphPreset::Gnp { n, avg_degree: d },
            GraphPreset::Gnm { n, avg_degree },
            GraphPreset::ChungLu {
                n,
                beta: 2.3,
                avg_degree: d,
            },
            GraphPreset::Rmat {
                scale: (n.max(2) as f64).log2().round() as u32,
                edge_factor: avg_degree / 2,
            },
            GraphPreset::Bipartite { n, avg_degree: d },
        ]
    }

    /// Stable family name (appears in benchmark workload ids).
    pub fn family(&self) -> &'static str {
        match self {
            GraphPreset::Gnp { .. } => "gnp",
            GraphPreset::Gnm { .. } => "gnm",
            GraphPreset::ChungLu { .. } => "chung_lu",
            GraphPreset::Rmat { .. } => "rmat",
            GraphPreset::Bipartite { .. } => "bipartite",
        }
    }

    /// Nominal vertex count of the preset (`2^scale` for R-MAT).
    pub fn nominal_n(&self) -> usize {
        match *self {
            GraphPreset::Gnp { n, .. }
            | GraphPreset::Gnm { n, .. }
            | GraphPreset::ChungLu { n, .. }
            | GraphPreset::Bipartite { n, .. } => n,
            GraphPreset::Rmat { scale, .. } => 1usize << scale,
        }
    }

    /// Builds the graph deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphPreset::Gnp { n, avg_degree } => {
                let p = if n > 1 {
                    (avg_degree / (n - 1) as f64).min(1.0)
                } else {
                    0.0
                };
                gnp(n, p, seed)
            }
            GraphPreset::Gnm { n, avg_degree } => gnm(n, n * avg_degree / 2, seed),
            GraphPreset::ChungLu {
                n,
                beta,
                avg_degree,
            } => chung_lu(n, beta, avg_degree, seed),
            GraphPreset::Rmat { scale, edge_factor } => {
                rmat(scale, edge_factor, RmatParams::default(), seed)
            }
            GraphPreset::Bipartite { n, avg_degree } => {
                let left = n / 2;
                let right = n - left;
                let p = if left > 0 && right > 0 {
                    (avg_degree * n as f64 / (2.0 * left as f64 * right as f64)).min(1.0)
                } else {
                    0.0
                };
                random_bipartite(left, right, p, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_families_are_five_and_stably_named() {
        let fams = GraphPreset::standard_families(1024, 16);
        let names: Vec<&str> = fams.iter().map(|p| p.family()).collect();
        assert_eq!(names, ["gnp", "gnm", "chung_lu", "rmat", "bipartite"]);
        for p in &fams {
            assert_eq!(p.nominal_n(), 1024);
        }
    }

    #[test]
    fn presets_build_deterministically_near_target_degree() {
        for preset in GraphPreset::standard_families(1024, 16) {
            let a = preset.build(7);
            let b = preset.build(7);
            assert_eq!(a.num_edges(), b.num_edges(), "{}", preset.family());
            let d = 2.0 * a.num_edges() as f64 / a.num_vertices().max(1) as f64;
            assert!(
                d > 4.0 && d < 32.0,
                "{}: average degree {d} far from target 16",
                preset.family()
            );
        }
    }

    #[test]
    fn gnm_preset_hits_exact_edge_count() {
        let g = GraphPreset::Gnm {
            n: 500,
            avg_degree: 16,
        }
        .build(3);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn rmat_nominal_n_is_power_of_scale() {
        let p = GraphPreset::Rmat {
            scale: 10,
            edge_factor: 8,
        };
        assert_eq!(p.nominal_n(), 1024);
        assert!(p.build(1).num_vertices() <= 1024);
    }
}
