//! Property-based tests of the graph substrate.

use mwvc_graph::generators::{chung_lu, gnm, gnp, low_arboricity, random_regular};
use mwvc_graph::validate::check_structure;
use mwvc_graph::{Graph, GraphBuilder, InducedSubgraph, VertexId, VertexPartition};
use proptest::prelude::*;

fn arb_edge_list(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder output is always structurally valid, whatever junk goes in.
    #[test]
    fn builder_always_valid((n, pairs) in arb_edge_list(80, 400)) {
        let mut b = GraphBuilder::new(n);
        let mut unique = std::collections::HashSet::new();
        for (u, v) in pairs {
            if u != v {
                b.add_edge(u, v);
                unique.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build();
        prop_assert!(check_structure(&g).is_ok());
        prop_assert_eq!(g.num_edges(), unique.len());
        // Degree sum identity.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    /// has_edge agrees with the edge iterator.
    #[test]
    fn has_edge_agrees_with_iterator((n, pairs) in arb_edge_list(40, 120)) {
        let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
        let g = Graph::from_edges(n, &edges);
        let set: std::collections::HashSet<(u32, u32)> =
            g.edges().map(|e| (e.u(), e.v())).collect();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let expected = u != v && set.contains(&(u.min(v), u.max(v)));
                prop_assert_eq!(g.has_edge(u, v), expected);
            }
        }
    }

    /// Every random generator yields structurally valid graphs.
    #[test]
    fn generators_always_valid(seed in 0u64..500, n in 10usize..200) {
        prop_assert!(check_structure(&gnp(n, 0.08, seed)).is_ok());
        let max_m = n * (n - 1) / 2;
        prop_assert!(check_structure(&gnm(n, (3 * n).min(max_m), seed)).is_ok());
        prop_assert!(check_structure(&chung_lu(n, 2.4, 6.0, seed)).is_ok());
        prop_assert!(check_structure(&random_regular(n, 5.min(n - 1), seed)).is_ok());
        prop_assert!(check_structure(&low_arboricity(n, 3, seed)).is_ok());
    }

    /// Induced subgraph edges are exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_set((n, pairs) in arb_edge_list(60, 300), pick in 0u64..1000) {
        let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
        let g = Graph::from_edges(n, &edges);
        // Deterministic pseudo-random subset from `pick`.
        let subset: Vec<VertexId> = (0..n as u32)
            .filter(|v| (v.wrapping_mul(2654435761) ^ pick as u32).is_multiple_of(3))
            .collect();
        let sub = InducedSubgraph::extract(&g, &subset);
        prop_assert!(check_structure(&sub.graph).is_ok());
        let inside: std::collections::HashSet<u32> = subset.iter().copied().collect();
        let expected = g
            .edges()
            .filter(|e| inside.contains(&e.u()) && inside.contains(&e.v()))
            .count();
        prop_assert_eq!(sub.num_edges(), expected);
        // Mapping is consistent.
        for le in sub.graph.edges() {
            let (gu, gv) = (sub.global(le.u()), sub.global(le.v()));
            prop_assert!(g.has_edge(gu, gv));
        }
    }

    /// Partitions are total, disjoint, and recomputable per vertex.
    #[test]
    fn partition_is_a_partition(n in 1usize..400, parts in 1usize..12, seed in 0u64..1000) {
        let vs: Vec<VertexId> = (0..n as u32).collect();
        let p = VertexPartition::assign(&vs, parts, seed);
        prop_assert_eq!(p.total_vertices(), n);
        let mut seen = vec![false; n];
        for (i, part) in p.parts().enumerate() {
            for &v in part {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
                prop_assert_eq!(p.part_of(v), i);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
