//! Host-memory audit of the huge tier: the out-of-core pipeline must
//! never hold the edge set in RAM.
//!
//! This lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]` — something exactly one crate per
//! process may do. The simulator's word-level accounting already bounds
//! *model* memory; this test closes the loop on *host* memory by running
//! the identical `run_huge` code path at smoke scale and asserting that
//! peak net heap growth stays strictly below the on-disk edge bytes.

use mwvc_bench::huge::{run_huge, HugeParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapped with live/peak byte counters. `realloc` and
/// `alloc_zeroed` use the `GlobalAlloc` defaults, which route through
/// `alloc`/`dealloc` and therefore stay counted.
struct CountingAlloc;

// SAFETY: every call forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counters are side effects on atomics and
// never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller guarantees `layout` is valid; forwarded
        // unchanged to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        // SAFETY: the caller guarantees `ptr` came from this allocator
        // with this `layout`; forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Smoke-scale huge run, sized so the on-disk instance is megabytes
/// while the enforced per-machine budget (and hence any honest host
/// footprint) is far smaller: ~586k built edges ≈ 9.4 MB of half-edge
/// words on disk against S = 14·n = 70_000 words per machine.
fn smoke_params() -> HugeParams {
    HugeParams {
        n: 5_000,
        edges: 600_000,
        machines: 3,
        memory_factor: 14,
        byte_budget: 1 << 20,
        batch_words: 512,
        epsilon: 0.1,
        max_iterations: 40,
        seed: 7,
    }
}

#[test]
fn huge_smoke_never_holds_the_edge_set_in_host_memory() {
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let (report, _) = run_huge(&smoke_params()).expect("huge smoke run");
    let peak_growth = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    let row = &report.workloads[0];
    // 2 half-edge words of 8 bytes per built edge — the payload an
    // in-memory executor would have to hold.
    let edge_bytes = 2 * 8 * row.m as usize;
    assert!(
        edge_bytes > 4 << 20,
        "instance too small ({edge_bytes} edge bytes) for the audit to mean anything"
    );
    assert!(
        row.model.spill_words > 0,
        "the run must actually exercise the spill path"
    );
    assert_eq!(row.model.violations, 0);
    assert!(
        peak_growth < edge_bytes,
        "peak heap growth {peak_growth} B reached the edge-set size {edge_bytes} B — \
         the pipeline is no longer out-of-core"
    );
}
