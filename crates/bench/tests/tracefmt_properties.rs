//! Property tests for the observability exporters: the JSONL event log
//! and the Chrome trace document must survive the strict in-house JSON
//! parser for arbitrary round shapes, not just the ones the fabric
//! happens to emit today.

use mpc_sim::{EventKind, ExecutionTrace, MachineRound, TraceEvent};
use mwvc_bench::json::Json;
use mwvc_bench::tracefmt::{chrome_trace, events_jsonl, parse_events_jsonl};
use proptest::prelude::*;

const KINDS: [EventKind; 5] = [
    EventKind::RegionMsgs,
    EventKind::RegionWords,
    EventKind::SpillWords,
    EventKind::SentWords,
    EventKind::StallWords,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random event streams — any mix of rounds, machines, kinds, and
    /// values up to the full `u32`/`i64`-safe range — render to JSONL
    /// and parse back bit-identical through the strict parser.
    #[test]
    fn events_jsonl_round_trips(
        raw in proptest::collection::vec(
            (0u32..10_000, 0u32..512, 0usize..KINDS.len(), 0u64..(1 << 62)),
            0..200
        ),
    ) {
        let events: Vec<TraceEvent> = raw
            .into_iter()
            .map(|(round, machine, kind, value)| TraceEvent {
                round,
                machine,
                kind: KINDS[kind],
                value,
            })
            .collect();
        let text = events_jsonl(&events);
        let back = parse_events_jsonl(&text).expect("rendered JSONL parses");
        prop_assert_eq!(back, events);
    }

    /// Random critical-path shapes — including ragged labels and empty
    /// rounds — produce a Chrome trace document the strict parser reads
    /// back as the same tree.
    #[test]
    fn chrome_trace_round_trips_through_the_parser(
        machines in 1usize..8,
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..1_000, 0u64..500, 0u64..500), 1..8),
            0..6
        ),
    ) {
        let mut trace = ExecutionTrace::default();
        for row in rounds {
            trace.critical_path.machine_rounds.push(
                row.into_iter()
                    .take(machines)
                    .map(|(start, cost, stall_words)| MachineRound {
                        start,
                        cost,
                        stall_words,
                    })
                    .collect(),
            );
        }
        let doc = chrome_trace(&trace);
        let parsed = Json::parse(&doc.render()).expect("rendered trace parses");
        prop_assert_eq!(parsed, doc);
    }
}
