//! The perf-gate contract tests: the `BENCH_core.json` schema is pinned
//! by a golden file, `bench-diff` must catch injected regressions with a
//! nonzero exit naming the offender, and the harness's gated fields must
//! be bit-identical at every host pool width.

use mwvc_bench::diff::{diff_reports, DiffOptions, FindingKind};
use mwvc_bench::harness::{run_workload, BenchWorkload, ExecutorKind};
use mwvc_bench::schema::{synthetic_report, BenchReport, CriticalPathStats, ModelCosts, Quality};
use mwvc_graph::{GraphPreset, WeightModel};
use std::path::PathBuf;
use std::process::Command;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bench_schema.json")
}

/// The schema golden test: byte-for-byte serialization of a synthetic
/// report, pinning field names, field ordering, number formatting, and
/// `schema_version`. Any intentional change must bump `SCHEMA_VERSION`
/// and regenerate with `BLESS=1 cargo test -p mwvc-bench golden`.
#[test]
fn golden_file_pins_schema_bytes() {
    let text = synthetic_report().to_json();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path(), &text).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; regenerate with BLESS=1");
    assert_eq!(
        text, golden,
        "BENCH_core.json serialization drifted from the golden file. If the schema \
         change is intentional, bump SCHEMA_VERSION in crates/bench/src/schema.rs, \
         re-bless (BLESS=1), and refresh benchmarks/baseline.json."
    );
    // The golden bytes parse back to the identical report (writer and
    // parser agree on the pinned schema).
    assert_eq!(
        BenchReport::from_json(&golden).expect("golden parses"),
        synthetic_report()
    );
}

#[test]
fn golden_file_field_order_matches_schema_lists() {
    // Works on the canonical serialization directly (the byte-equality
    // test above ties it to the golden file), so this test never races
    // with a BLESS re-write.
    let golden = synthetic_report().to_json();
    let mut last = 0;
    for field in [
        "schema_version",
        "suite",
        "seed",
        "hardware_threads",
        "workloads",
    ] {
        let at = golden.find(&format!("\"{field}\"")).expect(field);
        assert!(at > last || last == 0, "report field {field} out of order");
        last = at;
    }
    let model_at = golden.find("\"model\"").unwrap();
    let quality_at = golden.find("\"quality\"").unwrap();
    assert!(model_at < quality_at, "model precedes quality");
    let mut last = model_at;
    for field in ModelCosts::FIELDS {
        let at = golden[model_at..]
            .find(&format!("\"{field}\""))
            .expect(field)
            + model_at;
        assert!(at > last, "model field {field} out of order");
        last = at;
    }
    let mut last = quality_at;
    for field in Quality::FIELDS {
        let at = golden[quality_at..]
            .find(&format!("\"{field}\""))
            .expect(field)
            + quality_at;
        assert!(at > last, "quality field {field} out of order");
        last = at;
    }
    // v3 additions: critical_path follows quality; the ungated wall
    // columns close the row.
    let cp_at = golden.find("\"critical_path\"").unwrap();
    assert!(quality_at < cp_at, "critical_path follows quality");
    let mut last = cp_at;
    for field in CriticalPathStats::FIELDS {
        let at = golden[cp_at..].find(&format!("\"{field}\"")).expect(field) + cp_at;
        assert!(at > last, "critical-path field {field} out of order");
        last = at;
    }
    let wall_at = golden.find("\"wall_clock_s\"").unwrap();
    let round_wall_at = golden.find("\"round_wall_s\"").unwrap();
    assert!(last < wall_at && wall_at < round_wall_at);
}

/// The committed baselines are canonical v6 documents: they parse
/// through the strict reader and re-render to the identical bytes, so a
/// hand-migrated baseline can never drift from what `experiments bench`
/// itself would write (modulo wall-clock values).
#[test]
fn committed_baselines_are_canonical_current_schema() {
    use mwvc_bench::schema::SCHEMA_VERSION;
    for name in ["baseline.json", "baseline-full.json"] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../benchmarks")
            .join(name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = BenchReport::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.schema_version, SCHEMA_VERSION, "{name} is stale");
        assert_eq!(report.to_json(), text, "{name} is not canonical");
    }
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("bench-gate-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp report");
    path
}

/// End-to-end satellite requirement: a synthetic rounds regression makes
/// the `bench-diff` *binary* exit nonzero and name the offending
/// workload on stdout.
#[test]
fn bench_diff_binary_flags_injected_rounds_regression() {
    let base = synthetic_report();
    let mut cand = base.clone();
    cand.workloads[1].model.mpc_rounds += 9;
    let base_path = temp_file("base.json", &base.to_json());
    let cand_path = temp_file("cand.json", &cand.to_json());

    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args([&base_path, &cand_path])
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("rmat-zipf-eps16-n64-roundcompress"),
        "offending workload named: {stdout}"
    );
    assert!(stdout.contains("model.mpc_rounds"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // A workload/executor entry absent from the candidate is an explicit
    // matrix-mismatch error, not a silently clean partial comparison.
    let mut partial = base.clone();
    partial.workloads.remove(1);
    let partial_path = temp_file("partial.json", &partial.to_json());
    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args([&base_path, &partial_path])
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(1), "missing entry must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("missing from candidate"), "{stdout}");
    assert!(stdout.contains("missing from one report"), "{stdout}");
    let _ = std::fs::remove_file(partial_path);

    // Identical files pass with exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args([&base_path, &base_path])
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(0), "identical reports must pass");

    // Unparseable input is a usage-class error, distinct from a failed gate.
    let junk_path = temp_file("junk.json", "{not json");
    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args([&base_path, &junk_path])
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2), "parse errors must exit 2");

    for p in [base_path, cand_path, junk_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// The experiments CLI contract: unknown subcommands exit 2 with usage on
/// stderr — including when riding alongside `all`, which previously
/// slipped through with exit 0 — and `--list` enumerates experiments and
/// bench workloads.
#[test]
fn experiments_cli_rejects_unknown_and_lists() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    for args in [
        vec!["bogus"],
        vec!["all", "bogus"],
        vec!["--frobnicate"],
        vec!["rounds", "--executor", "bogus"],
        vec!["e01", "--graph", "only-for-bench.col"],
        // --executor must be rejected, not silently ignored, by
        // experiments that cannot honor it.
        vec!["e08", "--executor", "roundcompress"],
        vec!["compress", "--executor", "distributed"],
    ] {
        let out = Command::new(exe).args(&args).output().expect("run");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?} prints usage: {stderr}");
    }
    let out = Command::new(exe).arg("--list").output().expect("run");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("e01"), "{stdout}");
    assert!(stdout.contains("scaling"), "{stdout}");
    assert!(stdout.contains("bench workloads (quick):"), "{stdout}");
    assert!(stdout.contains("gnp-uniform-eps4-n1024"), "{stdout}");
}

/// The determinism contract behind the gate: gated fields are
/// bit-identical whether the harness runs on a 1-thread or a 3-thread
/// host pool (the acceptance criterion's RAYON_NUM_THREADS sweep, in
/// miniature) — for every benched executor.
#[test]
fn gated_fields_bit_identical_across_pool_widths() {
    for executor in ExecutorKind::all() {
        let w = BenchWorkload {
            id: format!("gnm-uniform-eps16-n256-poolcheck-{}", executor.label()),
            preset: GraphPreset::Gnm {
                n: 256,
                avg_degree: 16,
            },
            weights_label: "uniform",
            weights: WeightModel::Uniform { lo: 1.0, hi: 10.0 },
            epsilon: 0.0625,
            tier_n: 256,
            executor,
            scheduler: mpc_sim::RoundScheduler::Barrier,
        };
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build pool");
            pool.install(|| run_workload(&w))
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.model, b.model, "model costs must not see host threading");
        assert_eq!(a.quality, b.quality, "quality must not see host threading");
        // Equality of the gated fields is exactly what diff_reports checks.
        let wrap = |w: mwvc_bench::schema::WorkloadReport| BenchReport {
            schema_version: mwvc_bench::schema::SCHEMA_VERSION,
            suite: "poolcheck".into(),
            seed: 0,
            hardware_threads: 1,
            workloads: vec![w],
        };
        let d = diff_reports(&wrap(a), &wrap(b), DiffOptions::default());
        assert!(d.is_clean(), "{}: {:?}", executor.label(), d.findings);
        assert!(d.findings.iter().all(|f| f.kind != FindingKind::Structural));
    }
}
