//! Criterion bench: Algorithm 1 (centralized) across densities and
//! initialization schemes — the wall-clock companion to experiment E02.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwvc_bench::workloads::er_instance;
use mwvc_core::{run_centralized, CentralizedParams, InitScheme, ThresholdScheme};
use mwvc_graph::WeightModel;

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized");
    for &d in &[16usize, 64, 256] {
        let wg = er_instance(10_000, d, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, 3);
        group.throughput(Throughput::Elements(wg.num_edges() as u64));
        for init in [InitScheme::DegreeWeighted, InitScheme::Uniform] {
            group.bench_with_input(
                BenchmarkId::new(init.label().replace('/', "-"), d),
                &wg,
                |b, wg| {
                    b.iter(|| {
                        run_centralized(
                            wg,
                            CentralizedParams::new(0.1),
                            init,
                            ThresholdScheme::UniformRandom,
                            7,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_centralized);
criterion_main!(benches);
