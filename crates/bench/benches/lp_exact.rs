//! Criterion bench: the certification machinery (LP bound via Dinic,
//! exact branch-and-bound) — it must stay fast enough to sit inside every
//! quality experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwvc_baselines::{exact_mwvc, lp_optimum};
use mwvc_bench::workloads::er_instance;
use mwvc_graph::generators::gnp;
use mwvc_graph::{WeightModel, WeightedGraph};

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_optimum");
    group.sample_size(10);
    for &(n, d) in &[(2_000usize, 16usize), (10_000, 32)] {
        let wg = er_instance(n, d, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, 3);
        group.bench_with_input(
            BenchmarkId::new("dinic", format!("n{n}_d{d}")),
            &wg,
            |b, wg| b.iter(|| lp_optimum(wg)),
        );
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bnb");
    for &n in &[30usize, 45] {
        let g = gnp(n, 0.15, 5);
        let w = WeightModel::Uniform { lo: 1.0, hi: 9.0 }.sample(&g, 5);
        let wg = WeightedGraph::new(g, w);
        group.bench_with_input(BenchmarkId::new("gnp015", n), &wg, |b, wg| {
            b.iter(|| exact_mwvc(wg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_exact);
criterion_main!(benches);
