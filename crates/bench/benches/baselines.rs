//! Criterion bench: baseline algorithms — the wall-clock companion to
//! experiment E08.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mwvc_baselines::{bar_yehuda_even, clarkson_cover, greedy_ratio_cover, matching_cover};
use mwvc_bench::workloads::er_instance;
use mwvc_graph::WeightModel;

fn bench_baselines(c: &mut Criterion) {
    let wg = er_instance(20_000, 64, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, 7);
    let mut group = c.benchmark_group("baselines");
    group.throughput(Throughput::Elements(wg.num_edges() as u64));
    group.bench_function("bar_yehuda_even", |b| b.iter(|| bar_yehuda_even(&wg)));
    group.bench_function("greedy_ratio", |b| b.iter(|| greedy_ratio_cover(&wg)));
    group.bench_function("clarkson", |b| b.iter(|| clarkson_cover(&wg)));
    group.bench_function("matching_cover", |b| b.iter(|| matching_cover(&wg)));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
