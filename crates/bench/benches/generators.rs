//! Criterion bench: workload generators (they must never dominate
//! experiment runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwvc_graph::generators::{chung_lu, gnm, gnp, rmat, RmatParams};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let n = 100_000usize;
    let m = 1_600_000usize;
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("gnp", n), |b| {
        let p = 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0));
        b.iter(|| gnp(n, p, 3))
    });
    group.bench_function(BenchmarkId::new("gnm", n), |b| b.iter(|| gnm(n, m, 3)));
    group.bench_function(BenchmarkId::new("chung_lu", n), |b| {
        b.iter(|| chung_lu(n, 2.3, 32.0, 3))
    });
    group.bench_function(BenchmarkId::new("rmat", 1 << 17), |b| {
        b.iter(|| rmat(17, 12, RmatParams::default(), 3))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
