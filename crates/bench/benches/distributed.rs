//! Criterion bench: the message-passing executor, including routing and
//! accounting overhead — the wall-clock companion to experiment E11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwvc_bench::workloads::er_instance;
use mwvc_core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_core::mpc::MpcMwvcConfig;
use mwvc_graph::WeightModel;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_distributed");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let wg = er_instance(n, 32, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, 9);
        let cfg = MpcMwvcConfig::practical(0.1, 13);
        let cluster = recommended_cluster(&wg, &cfg);
        group.throughput(Throughput::Elements(wg.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("full_run", n), &wg, |b, wg| {
            b.iter(|| run_distributed(wg, &cfg, cluster))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
