//! Criterion bench: Algorithm 2 (reference executor) across densities —
//! the wall-clock companion to experiment E01.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwvc_bench::workloads::er_instance;
use mwvc_core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_graph::WeightModel;

fn bench_mpc_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_reference");
    group.sample_size(10);
    for &d in &[32usize, 128, 512] {
        let wg = er_instance(10_000, d, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, 5);
        group.throughput(Throughput::Elements(wg.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("practical", d), &wg, |b, wg| {
            let cfg = MpcMwvcConfig::practical(0.1, 11);
            b.iter(|| run_reference(wg, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpc_phases);
criterion_main!(benches);
