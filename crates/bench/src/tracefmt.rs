//! Trace exporters for the observability layer.
//!
//! Two formats, both built on the deterministic [`Json`] writer:
//!
//! * [`chrome_trace`] — a Chrome Trace Event Format document (loadable
//!   in Perfetto / `chrome://tracing`) rendering the critical-path
//!   per-machine rows as one "X" complete event per machine per round.
//!   Under the pipelined scheduler the `start` offsets stagger, so the
//!   timeline shows cross-machine segment overlap as a Gantt chart;
//!   under the barrier scheduler every machine starts a round together.
//!   Timestamps are **model cost units** (words), not host time — the
//!   document is bit-identical across host pool widths.
//! * [`events_jsonl`] / [`parse_events_jsonl`] — the model-domain event
//!   stream ([`TraceEvent`]) as one compact JSON record per line, and
//!   its strict inverse. The property suite pins the round-trip.

use crate::json::Json;
use mpc_sim::{EventKind, ExecutionTrace, TraceEvent};

/// Stable wire name of an event kind (`parse_kind` inverts it).
fn kind_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::RegionMsgs => "region_msgs",
        EventKind::RegionWords => "region_words",
        EventKind::SpillWords => "spill_words",
        EventKind::SentWords => "sent_words",
        EventKind::StallWords => "stall_words",
        EventKind::FaultInjected => "fault_injected",
        EventKind::CheckpointWords => "checkpoint_words",
        EventKind::ReplayRounds => "replay_rounds",
        EventKind::RetryCount => "retry_count",
    }
}

fn parse_kind(name: &str) -> Option<EventKind> {
    Some(match name {
        "region_msgs" => EventKind::RegionMsgs,
        "region_words" => EventKind::RegionWords,
        "spill_words" => EventKind::SpillWords,
        "sent_words" => EventKind::SentWords,
        "stall_words" => EventKind::StallWords,
        "fault_injected" => EventKind::FaultInjected,
        "checkpoint_words" => EventKind::CheckpointWords,
        "replay_rounds" => EventKind::ReplayRounds,
        "retry_count" => EventKind::RetryCount,
        _ => return None,
    })
}

/// Builds a Chrome Trace Event Format document from a trace's
/// critical-path rows. One process (`pid` 0), one track (`tid`) per
/// machine, one complete ("X") event per machine per round: `ts` is the
/// machine's pipelined start offset, `dur` its model cost, and the event
/// args carry the round index and the machine's barrier stall. Rounds
/// are named after [`RoundStats::label`](mpc_sim::RoundStats) when the
/// trace recorded one.
pub fn chrome_trace(trace: &ExecutionTrace) -> Json {
    let machines = trace
        .critical_path
        .machine_rounds
        .iter()
        .map(|row| row.len())
        .max()
        .unwrap_or(0);
    let mut events = Vec::new();
    for machine in 0..machines {
        // Track-name metadata so Perfetto labels rows "machine N".
        events.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Int(0)),
            ("tid".into(), Json::Int(machine as i64)),
            ("name".into(), Json::Str("thread_name".into())),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::Str(format!("machine {machine}")),
                )]),
            ),
        ]));
    }
    for (round, row) in trace.critical_path.machine_rounds.iter().enumerate() {
        let label = trace
            .rounds
            .get(round)
            .map(|r| r.label.as_str())
            .unwrap_or("round");
        for (machine, mr) in row.iter().enumerate() {
            events.push(Json::Obj(vec![
                ("ph".into(), Json::Str("X".into())),
                ("pid".into(), Json::Int(0)),
                ("tid".into(), Json::Int(machine as i64)),
                ("ts".into(), Json::Int(mr.start as i64)),
                // Every round has cost >= 1 in the model, but clamp so a
                // default row still renders as a visible slice.
                ("dur".into(), Json::Int(mr.cost.max(1) as i64)),
                ("name".into(), Json::Str(format!("r{round} {label}"))),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("round".into(), Json::Int(round as i64)),
                        ("stall_words".into(), Json::Int(mr.stall_words as i64)),
                    ]),
                ),
            ]));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Renders the model-domain event stream as JSONL: one compact record
/// per event, `{"round":..,"machine":..,"kind":"..","value":..}`, with a
/// trailing newline after every line. Deterministic: equal streams
/// produce equal bytes.
pub fn events_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let record = Json::Obj(vec![
            ("round".into(), Json::Int(e.round as i64)),
            ("machine".into(), Json::Int(e.machine as i64)),
            ("kind".into(), Json::Str(kind_name(e.kind).into())),
            ("value".into(), Json::Int(e.value as i64)),
        ]);
        out.push_str(&record.render_compact());
        out.push('\n');
    }
    out
}

/// Strict inverse of [`events_jsonl`]: every non-empty line must parse
/// as an object carrying exactly the four event fields with in-range
/// values. The property suite pins `parse(render(events)) == events`.
pub fn parse_events_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let j = Json::parse(line).map_err(|e| err(&e))?;
        let fields = match &j {
            Json::Obj(fields) => fields,
            _ => return Err(err("expected an object")),
        };
        if fields.len() != 4 {
            return Err(err("expected exactly 4 fields"));
        }
        let int_field = |key: &str| -> Result<i64, String> {
            j.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| err(&format!("missing integer field {key:?}")))
        };
        let round = int_field("round")?;
        let machine = int_field("machine")?;
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .and_then(parse_kind)
            .ok_or_else(|| err("missing or unknown \"kind\""))?;
        let value = int_field("value")?;
        if !(0..=u32::MAX as i64).contains(&round) || !(0..=u32::MAX as i64).contains(&machine) {
            return Err(err("round/machine out of u32 range"));
        }
        if value < 0 {
            return Err(err("negative value"));
        }
        out.push(TraceEvent {
            round: round as u32,
            machine: machine as u32,
            kind,
            value: value as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::{MachineRound, RoundStats};

    fn mr(start: u64, cost: u64, stall: u64) -> MachineRound {
        MachineRound {
            start,
            cost,
            stall_words: stall,
        }
    }

    fn stats(label: &str) -> RoundStats {
        RoundStats {
            label: label.into(),
            max_sent: 0,
            max_received: 0,
            max_resident: 0,
            total_traffic: 0,
            spill_words: 0,
        }
    }

    fn sample_trace() -> ExecutionTrace {
        let mut t = ExecutionTrace::default();
        t.rounds.push(stats("degree"));
        t.rounds.push(stats("shrink"));
        t.critical_path.machine_rounds = vec![
            vec![mr(0, 5, 0), mr(0, 3, 2)],
            vec![mr(5, 2, 1), mr(3, 3, 0)],
        ];
        t
    }

    #[test]
    fn chrome_trace_names_rounds_and_offsets_machines() {
        let doc = chrome_trace(&sample_trace());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 4 slices.
        assert_eq!(events.len(), 6);
        let slices: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0].get("name").unwrap().as_str(), Some("r0 degree"));
        assert_eq!(slices[2].get("name").unwrap().as_str(), Some("r1 shrink"));
        // Machine 1's round-0 slice starts at its pipelined offset.
        assert_eq!(slices[1].get("tid").unwrap().as_i64(), Some(1));
        assert_eq!(slices[1].get("ts").unwrap().as_i64(), Some(0));
        assert_eq!(slices[3].get("ts").unwrap().as_i64(), Some(3));
        // The document parses back through the strict parser.
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn events_jsonl_round_trips() {
        let events = vec![
            TraceEvent {
                round: 0,
                machine: 0,
                kind: EventKind::RegionWords,
                value: 42,
            },
            TraceEvent {
                round: 3,
                machine: 7,
                kind: EventKind::StallWords,
                value: 0,
            },
        ];
        let text = events_jsonl(&events);
        assert_eq!(
            text.lines().next().unwrap(),
            r#"{"round":0,"machine":0,"kind":"region_words","value":42}"#
        );
        assert_eq!(parse_events_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_events_jsonl("[]").is_err());
        assert!(parse_events_jsonl(r#"{"round":0,"machine":0,"kind":"nope","value":1}"#).is_err());
        assert!(
            parse_events_jsonl(r#"{"round":-1,"machine":0,"kind":"sent_words","value":1}"#)
                .is_err()
        );
        assert!(parse_events_jsonl(
            r#"{"round":0,"machine":0,"kind":"sent_words","value":1,"extra":2}"#
        )
        .is_err());
    }
}
