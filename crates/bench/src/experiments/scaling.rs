//! Host-parallel scaling: wall-clock speedup of the full distributed
//! pipeline versus pool thread count, with a bit-identity check.
//!
//! This experiment measures the *simulator host*, not the MPC model: the
//! model costs (rounds, traffic, memory) are independent of host
//! threading by construction, and this experiment verifies exactly that —
//! every thread count must produce bit-identical covers, certificates,
//! and execution traces, while only the wall clock changes.
//!
//! Output: one table plus a machine-readable `BENCH_scaling.json`
//! (override the path with `SCALING_JSON`) to anchor the performance
//! trajectory across PRs. Instance size defaults to a 100k-vertex
//! G(n, m) with average degree 32; override with `SCALING_N` /
//! `SCALING_DEGREE` (the determinism assertion is size-independent).

use super::ExpOptions;
use crate::table::{f, Table};
use mwvc_core::mpc::{recommended_cluster, run_distributed, DistributedOutcome, MpcMwvcConfig};
use mwvc_graph::generators::gnm;
use mwvc_graph::{WeightModel, WeightedGraph};
use std::time::Instant;

const SEED: u64 = 20;
const EPS: f64 = 0.1;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Order-sensitive 64-bit fingerprint (splitmix64 chaining).
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Self(0x05ca_1ab1_e0dd_ba11_u64)
    }
    fn mix(&mut self, v: u64) {
        let mut x = self.0.rotate_left(23) ^ v;
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

/// Fingerprints everything the determinism contract covers: the cover,
/// every finalized dual value bit-exactly, and the full execution trace.
fn outcome_fingerprint(out: &DistributedOutcome) -> u64 {
    let mut fp = Fingerprint::new();
    for &v in out.cover.vertices() {
        fp.mix(v as u64);
    }
    for x in &out.certificate.x {
        fp.mix(x.to_bits());
    }
    fp.mix(out.phases as u64);
    for r in &out.trace.rounds {
        fp.mix(r.label.len() as u64);
        for b in r.label.as_bytes() {
            fp.mix(*b as u64);
        }
        fp.mix(r.max_sent as u64);
        fp.mix(r.max_received as u64);
        fp.mix(r.max_resident as u64);
        fp.mix(r.total_traffic as u64);
    }
    fp.mix(out.trace.violations.len() as u64);
    fp.0
}

/// Thread counts to sweep: 1, powers of two, and the full hardware width.
fn thread_counts(hw: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut t = 2;
    while t < hw {
        counts.push(t);
        t *= 2;
    }
    if hw > 1 {
        counts.push(hw);
    }
    counts
}

/// SCALING — wall-clock speedup vs. pool threads, bit-identical results.
pub fn scaling(_opts: &ExpOptions) -> Vec<Table> {
    let n = env_usize("SCALING_N", 100_000);
    let avg_degree = env_usize("SCALING_DEGREE", 32);
    let m = n * avg_degree / 2;
    // SCALING_MAX_THREADS widens (or narrows) the sweep regardless of the
    // detected width — oversubscribing still proves bit-identity, it just
    // cannot show speedup.
    let detected = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let hw = env_usize("SCALING_MAX_THREADS", detected);
    let counts = thread_counts(hw);

    let mut table = Table::new(
        format!("SCALING Host wall-clock vs threads (G({n}, {m}) distributed, eps = {EPS}, hw = {detected} threads)"),
        &[
            "threads",
            "wall s",
            "speedup",
            "phases",
            "mpc rounds",
            "fingerprint",
        ],
    );
    let mut rows_json = Vec::new();
    let mut baseline_s = None;
    let mut fingerprints: Vec<u64> = Vec::new();
    for &threads in &counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build sweep pool");
        let start = Instant::now();
        let outcome = pool.install(|| {
            let g = gnm(n, m, SEED);
            let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, SEED ^ 1);
            let wg = WeightedGraph::new(g, w);
            let cfg = MpcMwvcConfig::practical(EPS, SEED);
            let cluster = recommended_cluster(&wg, &cfg);
            run_distributed(&wg, &cfg, cluster)
        });
        let wall = start.elapsed().as_secs_f64();
        let fp = outcome_fingerprint(&outcome);
        fingerprints.push(fp);
        let base = *baseline_s.get_or_insert(wall);
        let speedup = base / wall;
        table.push(vec![
            threads.to_string(),
            f(wall, 3),
            f(speedup, 2),
            outcome.phases.to_string(),
            outcome.trace.num_rounds().to_string(),
            format!("{fp:016x}"),
        ]);
        rows_json.push(format!(
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"speedup\": {speedup:.4}, \"fingerprint\": \"{fp:016x}\"}}"
        ));
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "determinism violation: fingerprints differ across thread counts: {fingerprints:x?}"
    );

    let json = format!(
        "{{\n  \"experiment\": \"scaling\",\n  \"n\": {n},\n  \"m\": {m},\n  \"epsilon\": {EPS},\n  \"seed\": {SEED},\n  \"hardware_threads\": {detected},\n  \"bit_identical\": true,\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    );
    let path = std::env::var("SCALING_JSON").unwrap_or_else(|_| "BENCH_scaling.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[scaling] wrote {path}"),
        Err(e) => eprintln!("[scaling] could not write {path}: {e}"),
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_sweep_shape() {
        assert_eq!(thread_counts(1), vec![1]);
        assert_eq!(thread_counts(2), vec![1, 2]);
        assert_eq!(thread_counts(4), vec![1, 2, 4]);
        assert_eq!(thread_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_counts(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.mix(1);
        a.mix(2);
        let mut b = Fingerprint::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn small_scaling_run_is_deterministic_across_pools() {
        // Miniature version of the experiment body: two pools of
        // different widths must produce identical fingerprints.
        let build = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let g = gnm(600, 9_600, SEED);
                let w = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, SEED ^ 1);
                let wg = WeightedGraph::new(g, w);
                let cfg = MpcMwvcConfig::practical(EPS, SEED);
                let cluster = recommended_cluster(&wg, &cfg);
                outcome_fingerprint(&run_distributed(&wg, &cfg, cluster))
            })
        };
        assert_eq!(build(1), build(3));
    }
}
