//! Approximation-quality experiments: E03 (Prop 3.3 / Thm 4.7), E08 (the
//! Section 1.2 positioning table), E10 (weight-model robustness).

use super::ExpOptions;
use crate::table::{f, Table};
use crate::workloads::{
    er_instance, planted_instance, power_law_instance, rmat_instance, weight_models,
};
use mwvc_baselines::{exact_mwvc, lp_optimum, run_algorithm, Algorithm};
use mwvc_core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_core::solve_centralized;
use mwvc_graph::{EdgeIndex, WeightModel, WeightedGraph};

/// E03 — Proposition 3.3 (centralized `2+10ε`) and Theorem 4.7 (MPC
/// `2+30ε`): measured ratios against the exact optimum (small instances)
/// and the exact LP bound (large instances), across `ε`.
pub fn e03_approx_ratio(_opts: &ExpOptions) -> Vec<Table> {
    let mut small = Table::new(
        "E03a Approximation ratio vs exact OPT (n=48, G(n,p), 5-seed mean)",
        &[
            "eps",
            "central ratio",
            "mpc ratio",
            "guarantee 2+10e / 2+30e",
        ],
    );
    for &eps in &[0.02f64, 0.05, 0.1, 0.2] {
        let mut c_sum = 0.0;
        let mut m_sum = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let g = mwvc_graph::generators::gnp(48, 0.15, seed);
            let w = WeightModel::Uniform { lo: 1.0, hi: 8.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let opt = exact_mwvc(&wg).weight;
            let c = solve_centralized(&wg, eps, seed).cover.weight(&wg);
            let m = run_reference(&wg, &MpcMwvcConfig::practical(eps, seed))
                .cover
                .weight(&wg);
            c_sum += c / opt;
            m_sum += m / opt;
        }
        small.push(vec![
            f(eps, 2),
            f(c_sum / runs as f64, 3),
            f(m_sum / runs as f64, 3),
            format!("{} / {}", f(2.0 + 10.0 * eps, 2), f(2.0 + 30.0 * eps, 2)),
        ]);
    }

    let mut large = Table::new(
        "E03b Approximation ratio vs LP bound (n=20000, d=32; ratio/LP* >= ratio/OPT)",
        &["eps", "central w/LP*", "mpc w/LP*", "mpc certified"],
    );
    let wg = er_instance(20_000, 32, WeightModel::Uniform { lo: 1.0, hi: 8.0 }, 77);
    let lp = lp_optimum(&wg).value;
    let eidx = EdgeIndex::build(&wg.graph);
    for &eps in &[0.02f64, 0.05, 0.1, 0.2] {
        let c = solve_centralized(&wg, eps, 7).cover.weight(&wg);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(eps, 7));
        let m = res.cover.weight(&wg);
        let cert = res.certificate.certified_ratio(&wg, &eidx, m);
        large.push(vec![f(eps, 2), f(c / lp, 3), f(m / lp, 3), f(cert, 3)]);
    }
    vec![small, large]
}

/// E08 — the positioning table: every algorithm in the workspace on a
/// suite of instance families, with weights, LP-certified ratios, and MPC
/// round counts where applicable.
pub fn e08_algorithm_comparison(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let uniform = WeightModel::Uniform { lo: 1.0, hi: 10.0 };
    let zipf = WeightModel::Zipf {
        exponent: 1.2,
        scale: 100.0,
    };
    let (planted, planted_opt) = planted_instance(500, 5);
    let suites: Vec<(String, WeightedGraph, Option<f64>)> = vec![
        (
            "er-uniform n=2000 d=32".into(),
            er_instance(2000, 32, uniform, 1),
            None,
        ),
        (
            "er-zipf n=2000 d=32".into(),
            er_instance(2000, 32, zipf, 2),
            None,
        ),
        (
            "power-law n=2000 d=16".into(),
            power_law_instance(2000, 16.0, uniform, 3),
            None,
        ),
        (
            "rmat scale=11 ef=8".into(),
            rmat_instance(11, 8, uniform, 4),
            None,
        ),
        ("planted hubs=500".into(), planted, Some(planted_opt)),
    ];
    let mut tables = Vec::new();
    for (name, wg, known_opt) in suites {
        let lower = known_opt.unwrap_or_else(|| lp_optimum(&wg).value);
        let bound_name = if known_opt.is_some() { "OPT" } else { "LP*" };
        let mut t = Table::new(
            format!(
                "E08 {name} (n={}, m={}, lower bound = {bound_name} = {})",
                wg.num_vertices(),
                wg.num_edges(),
                f(lower, 1)
            ),
            &["algorithm", "cover weight", "ratio vs bound", "mpc rounds"],
        );
        let algorithms = [
            Algorithm::MpcRoundCompression(MpcMwvcConfig::practical(eps, 11)),
            Algorithm::Centralized {
                epsilon: eps,
                seed: 11,
            },
            Algorithm::LocalBaseline {
                epsilon: eps,
                seed: 11,
            },
            Algorithm::BarYehudaEven,
            Algorithm::Greedy,
            Algorithm::Clarkson,
            Algorithm::MatchingCover,
            Algorithm::LpRounding,
        ];
        for alg in algorithms {
            let run = run_algorithm(&wg, alg);
            t.push(vec![
                run.name.to_string(),
                f(run.weight, 1),
                f(run.weight / lower, 3),
                run.mpc_rounds.map_or("-".into(), |r| r.to_string()),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// E10 — Theorem 4.7 robustness across weight models: the certified
/// ratio must stay within `2+30ε` regardless of how weights correlate
/// with degrees.
pub fn e10_weight_robustness(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut t = Table::new(
        "E10 Weight-model robustness (n=4096, d=64, practical profile, eps=0.1)",
        &[
            "weights",
            "cover weight",
            "w/LP*",
            "certified",
            "phases",
            "rounds",
        ],
    );
    for (name, model) in weight_models() {
        let wg = er_instance(4096, 64, model, 42);
        let lp = lp_optimum(&wg).value;
        let eidx = EdgeIndex::build(&wg.graph);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(eps, 13));
        let w = res.cover.weight(&wg);
        t.push(vec![
            name.to_string(),
            f(w, 1),
            f(w / lp, 3),
            f(res.certificate.certified_ratio(&wg, &eidx, w), 3),
            res.num_phases().to_string(),
            res.mpc_rounds().to_string(),
        ]);
    }
    vec![t]
}
