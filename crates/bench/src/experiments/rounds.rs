//! Round-complexity experiments: E01 (Theorem 1.1/4.5), E02
//! (Proposition 3.4), E09 (the Section 3.2 initialization comparison).

use super::ExpOptions;
use crate::harness::ExecutorKind;
use crate::table::{f, Table};
use crate::workloads::{er_instance, power_law_instance, skewed_instance};
use mwvc_baselines::local_baseline;
use mwvc_core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_core::{run_centralized, CentralizedParams, InitScheme, ThresholdScheme};
use mwvc_graph::{WeightModel, WeightedGraph};
use mwvc_roundcompress::{
    recommended_cluster as rc_cluster, round_cost as rc_round_cost, run_roundcompress,
    RoundCompressConfig,
};

/// E01 — Theorem 1.1/4.5: MPC rounds grow like `O(log log d)`.
///
/// Sweeps the average degree at fixed `n` on power-law instances (the
/// family with genuine degree hierarchy — on degree-regular graphs the
/// degree-weighted initialization starts near-tight and one phase
/// finishes everything, far *below* the bound) and reports phases and MPC
/// rounds for Algorithm 2 under the `paper_scaled` profile, against the
/// LOCAL baseline: phases-per-`log log d` should stay near-constant while
/// baseline-rounds-per-`log d` does the same.
pub fn e01_rounds_vs_degree(_opts: &ExpOptions) -> Vec<Table> {
    let n = 1 << 14;
    let weights = WeightModel::Uniform { lo: 1.0, hi: 10.0 };
    let mut table = Table::new(
        "E01 Rounds vs average degree (n = 16384, power-law, paper_scaled profile)",
        &[
            "d target",
            "d",
            "loglog d",
            "eps",
            "phases",
            "mpc rounds",
            "phases/loglog d",
            "local rounds",
            "local/log d",
        ],
    );
    for &d in &[8usize, 16, 32, 64, 128, 256, 512, 1024] {
        let wg = power_law_instance(n, d as f64, weights, 100 + d as u64);
        let d_real = wg.graph.average_degree();
        let loglog = d_real.max(3.0).ln().ln();
        for &eps in &[0.05f64, 0.1, 0.2] {
            let cfg = MpcMwvcConfig::paper_scaled(eps, 7);
            let res = run_reference(&wg, &cfg);
            let (local_rounds, local_norm) = if (eps - 0.1).abs() < 1e-12 {
                let local = local_baseline(&wg, eps, InitScheme::DegreeWeighted, 7);
                (
                    local.mpc_rounds.to_string(),
                    f(local.mpc_rounds as f64 / d_real.ln(), 2),
                )
            } else {
                ("-".into(), "-".into())
            };
            table.push(vec![
                d.to_string(),
                f(d_real, 1),
                f(loglog, 3),
                f(eps, 2),
                res.num_phases().to_string(),
                res.mpc_rounds().to_string(),
                f(res.num_phases() as f64 / loglog.max(0.1), 2),
                local_rounds,
                local_norm,
            ]);
        }
    }
    vec![table]
}

/// E02 — Proposition 3.4: with the degree-weighted initialization the
/// centralized algorithm runs `O(log Δ)` iterations, independent of the
/// weight scale; the uniform `1/n` initialization degrades with the
/// weight spread `W`.
pub fn e02_centralized_iterations(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut by_delta = Table::new(
        "E02a Centralized iterations vs max degree (w/d init, weights U[1,1e6])",
        &[
            "n",
            "d",
            "Delta",
            "iterations",
            "bound log_{1/(1-eps)} Delta + 2",
        ],
    );
    for &d in &[8usize, 32, 128, 512] {
        let n = 4096;
        let wg = er_instance(
            n,
            d,
            WeightModel::Uniform { lo: 1.0, hi: 1e6 },
            7 + d as u64,
        );
        let delta = wg.graph.max_degree();
        let res = run_centralized(
            &wg,
            CentralizedParams::new(eps),
            InitScheme::DegreeWeighted,
            ThresholdScheme::UniformRandom,
            3,
        );
        let bound = (delta as f64).ln() / (1.0 / (1.0 - eps)).ln() + 2.0;
        by_delta.push(vec![
            n.to_string(),
            d.to_string(),
            delta.to_string(),
            res.iterations.to_string(),
            f(bound, 1),
        ]);
    }

    let mut by_scale = Table::new(
        "E02b Centralized iterations vs weight spread W (n=4096, d=32)",
        &["W", "iters w/d", "iters w/Delta", "iters 1/n"],
    );
    let run = |wg: &WeightedGraph, init| {
        run_centralized(
            wg,
            CentralizedParams::new(eps),
            init,
            ThresholdScheme::UniformRandom,
            3,
        )
        .iterations
    };
    for &w_hi in &[1.0f64, 1e2, 1e4, 1e6, 1e9] {
        let wg = er_instance(
            4096,
            32,
            WeightModel::Uniform {
                lo: 1.0,
                hi: w_hi.max(1.0 + 1e-9),
            },
            11,
        );
        by_scale.push(vec![
            format!("{w_hi:.0e}"),
            run(&wg, InitScheme::DegreeWeighted).to_string(),
            run(&wg, InitScheme::MaxDegree).to_string(),
            run(&wg, InitScheme::Uniform).to_string(),
        ]);
    }
    vec![by_delta, by_scale]
}

/// `rounds` — per-executor round trajectories: how the active-edge count
/// falls phase by phase (distributed executor, via its bit-identical
/// reference schedule which exposes per-phase stats) and level by level
/// (roundcompress executor), with cumulative MPC rounds after each step.
/// `--executor <name>` restricts the sweep to one executor; the default
/// covers both, so old and new trajectories plot from one table.
pub fn rounds_trajectory(opts: &ExpOptions) -> Vec<Table> {
    let n = 2048;
    let eps = 0.1;
    let weights = mwvc_graph::WeightModel::Uniform { lo: 1.0, hi: 10.0 };
    let mut table = Table::new(
        format!("ROUNDS trajectories per executor (n = {n}, G(n,m), eps = {eps})"),
        &[
            "executor",
            "d",
            "step",
            "kind",
            "parts",
            "edges before",
            "edges after",
            "cum rounds",
        ],
    );
    for &d in &[16usize, 64] {
        let wg = er_instance(n, d, weights, 900 + d as u64);
        for kind in opts.executors() {
            match kind {
                ExecutorKind::Distributed => {
                    let cfg = MpcMwvcConfig::practical(eps, 7);
                    let res = run_reference(&wg, &cfg);
                    let mut cum = 0usize;
                    for p in &res.phases {
                        cum += mwvc_core::mpc::stats::round_cost::PER_PHASE;
                        table.push(vec![
                            kind.label().to_string(),
                            d.to_string(),
                            p.phase.to_string(),
                            "phase".into(),
                            p.machines.to_string(),
                            p.nonfrozen_edges_before.to_string(),
                            p.nonfrozen_edges_after.to_string(),
                            cum.to_string(),
                        ]);
                    }
                    let final_edges = res
                        .phases
                        .last()
                        .map_or(wg.num_edges(), |p| p.nonfrozen_edges_after);
                    cum += mwvc_core::mpc::stats::round_cost::FINAL;
                    table.push(vec![
                        kind.label().to_string(),
                        d.to_string(),
                        res.num_phases().to_string(),
                        "final".into(),
                        "1".into(),
                        final_edges.to_string(),
                        "0".into(),
                        cum.to_string(),
                    ]);
                }
                ExecutorKind::RoundCompress => {
                    let cfg = RoundCompressConfig::practical(eps, 7);
                    let out = run_roundcompress(&wg, &cfg, rc_cluster(&wg, &cfg));
                    let mut cum = 0usize;
                    for l in &out.levels {
                        cum += rc_round_cost::PER_LEVEL;
                        table.push(vec![
                            kind.label().to_string(),
                            d.to_string(),
                            l.level.to_string(),
                            "level".into(),
                            l.parts.to_string(),
                            l.active_edges_before.to_string(),
                            l.active_edges_after.to_string(),
                            cum.to_string(),
                        ]);
                    }
                    let final_edges = out
                        .levels
                        .last()
                        .map_or(wg.num_edges(), |l| l.active_edges_after);
                    cum += rc_round_cost::FINAL;
                    table.push(vec![
                        kind.label().to_string(),
                        d.to_string(),
                        out.num_levels().to_string(),
                        "final".into(),
                        "1".into(),
                        final_edges.to_string(),
                        "0".into(),
                        cum.to_string(),
                    ]);
                }
            }
        }
    }
    vec![table]
}

/// E09 — Section 3.2: the `w/d` initialization yields rounds driven by
/// the *average* degree, the `w/Δ` variant by the *maximum* degree; the
/// gap opens on hub-skewed instances.
pub fn e09_init_comparison(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut table = Table::new(
        "E09 Phase counts: w/d vs w/Delta init on hub-skewed graphs",
        &[
            "hubs",
            "leaves/hub",
            "n",
            "d",
            "Delta",
            "skew",
            "phases w/d",
            "rounds w/d",
            "phases w/Delta",
            "rounds w/Delta",
        ],
    );
    for &(hubs, leaves) in &[(64usize, 64usize), (32, 256), (16, 1024), (8, 4096)] {
        let wg = skewed_instance(
            hubs,
            leaves,
            24.0 / (hubs * (1 + leaves)) as f64,
            WeightModel::Uniform { lo: 1.0, hi: 10.0 },
            500 + hubs as u64,
        );
        let stats = mwvc_graph::stats::DegreeStats::of(&wg.graph);
        let run_with = |init: InitScheme| {
            let mut cfg = MpcMwvcConfig::paper_scaled(eps, 9);
            cfg.init = init;
            let res = run_reference(&wg, &cfg);
            (res.num_phases(), res.mpc_rounds())
        };
        let (p_dw, r_dw) = run_with(InitScheme::DegreeWeighted);
        let (p_md, r_md) = run_with(InitScheme::MaxDegree);
        table.push(vec![
            hubs.to_string(),
            leaves.to_string(),
            stats.n.to_string(),
            f(stats.avg, 1),
            stats.max.to_string(),
            f(stats.skew(), 1),
            p_dw.to_string(),
            r_dw.to_string(),
            p_md.to_string(),
            r_md.to_string(),
        ]);
    }
    vec![table]
}
