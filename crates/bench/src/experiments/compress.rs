//! `compress` — the round-compression head-to-head: both executors on
//! every quick-suite workload instance, side by side.
//!
//! This is the experiment the round-compression subsystem exists for: it
//! shows, workload by workload, where the Assadi-style executor wins or
//! loses on MPC rounds against the Ghaffari–Jin–Nilis baseline, at what
//! traffic cost, and with what certified quality. It re-runs the quick
//! matrix through [`crate::harness::run_workloads`] (deterministic and
//! sub-second at the quick tier, so a standalone report needs no input
//! file) — byte-for-byte the numbers `BENCH_core.json` gates per
//! executor — and joins the rows by base workload.

use super::ExpOptions;
use crate::harness::{run_workloads, workload_matrix, BenchSuite, ExecutorKind};
use crate::schema::WorkloadReport;
use crate::table::{f, Table};

/// Names a report's straggler: the machine the others stall least on —
/// i.e. the one setting the pace (see `CriticalPath::straggler`) — and
/// how many stall words the rest accumulate waiting for it.
fn straggler_cell(r: &WorkloadReport) -> String {
    if r.critical_path.straggler_machine < 0 {
        "-".to_string()
    } else {
        format!(
            "m{} ({}w)",
            r.critical_path.straggler_machine, r.critical_path.straggler_stall_words
        )
    }
}

/// Strips the `-{executor}` suffix off a workload id.
fn base_id(r: &WorkloadReport) -> String {
    r.id.strip_suffix(&format!("-{}", r.executor))
        .unwrap_or(&r.id)
        .to_string()
}

/// Runs the head-to-head over the quick matrix. A head-to-head needs
/// both sides, so there is no executor filter here (the CLI rejects
/// `--executor` for this experiment; it applies to `rounds` and `bench`).
pub fn compress(_opts: &ExpOptions) -> Vec<Table> {
    let (report, _bench_table) = run_workloads("quick", workload_matrix(BenchSuite::Quick));

    // Join rows on the base workload id, preserving matrix order. Any
    // executor beyond the compared pair is tolerated (and ignored here),
    // so growing `ExecutorKind` never breaks this report.
    let mut order: Vec<String> = Vec::new();
    let mut by_base: std::collections::HashMap<String, Vec<&WorkloadReport>> =
        std::collections::HashMap::new();
    for r in &report.workloads {
        let base = base_id(r);
        let entry = by_base.entry(base.clone()).or_default();
        if entry.is_empty() {
            order.push(base);
        }
        entry.push(r);
    }

    let dist = ExecutorKind::Distributed.label();
    let rc = ExecutorKind::RoundCompress.label();
    let mut head = Table::new(
        "COMPRESS head-to-head: distributed (GJN Alg. 2) vs roundcompress (Assadi-style), quick matrix",
        &[
            "workload",
            "n",
            "m",
            "phases d",
            "lvls rc",
            "rounds d",
            "rounds rc",
            "Δrounds",
            "msg wd d",
            "msg wd rc",
            "cert d",
            "cert rc",
            "w/LP* d",
            "w/LP* rc",
            "straggler d",
            "straggler rc",
        ],
    );
    let mut rc_round_wins = 0usize;
    let mut ties = 0usize;
    let mut pairs = 0usize;
    let (mut rounds_d_total, mut rounds_rc_total) = (0i64, 0i64);
    let (mut words_d_total, mut words_rc_total) = (0i64, 0i64);
    for base in &order {
        let rows = &by_base[base];
        let find = |name: &str| rows.iter().find(|r| r.executor == name);
        let (Some(d), Some(r)) = (find(dist), find(rc)) else {
            eprintln!("[compress] {base}: missing one side, skipping");
            continue;
        };
        pairs += 1;
        let delta = r.model.mpc_rounds - d.model.mpc_rounds;
        if delta < 0 {
            rc_round_wins += 1;
        } else if delta == 0 {
            ties += 1;
        }
        rounds_d_total += d.model.mpc_rounds;
        rounds_rc_total += r.model.mpc_rounds;
        words_d_total += d.model.total_message_words;
        words_rc_total += r.model.total_message_words;
        head.push(vec![
            base.clone(),
            d.n.to_string(),
            d.m.to_string(),
            d.model.phases.to_string(),
            r.model.phases.to_string(),
            d.model.mpc_rounds.to_string(),
            r.model.mpc_rounds.to_string(),
            format!("{delta:+}"),
            d.model.total_message_words.to_string(),
            r.model.total_message_words.to_string(),
            f(d.quality.certified_ratio, 3),
            f(r.quality.certified_ratio, 3),
            f(d.quality.ratio_vs_lp, 3),
            f(r.quality.ratio_vs_lp, 3),
            straggler_cell(d),
            straggler_cell(r),
        ]);
    }

    let mut summary = Table::new(
        "COMPRESS summary (rounds: lower is better; a win = strictly fewer rounds)",
        &[
            "workloads",
            "rc round wins",
            "ties",
            "dist round wins",
            "Σ rounds dist",
            "Σ rounds rc",
            "Σ msg words dist",
            "Σ msg words rc",
        ],
    );
    summary.push(vec![
        pairs.to_string(),
        rc_round_wins.to_string(),
        ties.to_string(),
        (pairs - rc_round_wins - ties).to_string(),
        rounds_d_total.to_string(),
        rounds_rc_total.to_string(),
        words_d_total.to_string(),
        words_rc_total.to_string(),
    ]);
    vec![head, summary]
}
