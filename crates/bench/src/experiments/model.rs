//! MPC model accounting experiments: E04 (Lemma 4.1), E05 (Lemma 4.4),
//! E11 (Section 1.1 memory regimes, total memory, congested clique).

use super::ExpOptions;
use crate::table::{f, Table};
use crate::workloads::er_instance;
use mpc_sim::congested_clique::simulate_on_clique;
use mwvc_core::mpc::distributed::{recommended_cluster, run_distributed};
use mwvc_core::mpc::{run_reference, MpcMwvcConfig};
use mwvc_graph::WeightModel;

/// E04 — Lemma 4.1: the largest per-machine induced subgraph stays
/// `O(n)` edges across sizes and phases.
pub fn e04_machine_memory(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let d = 256;
    let mut t = Table::new(
        "E04 Max per-machine induced subgraph |E[Vi]| (d=256, practical profile)",
        &[
            "n",
            "phases",
            "max |E[Vi]|",
            "max |E[Vi]| / n",
            "machines (phase 0)",
        ],
    );
    for &n in &[1usize << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16] {
        let wg = er_instance(n, d, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, n as u64);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(eps, 3));
        let peak = res
            .phases
            .iter()
            .map(|p| p.max_machine_edges)
            .max()
            .unwrap_or(0);
        t.push(vec![
            n.to_string(),
            res.num_phases().to_string(),
            peak.to_string(),
            f(peak as f64 / n as f64, 3),
            res.phases.first().map_or(0, |p| p.machines).to_string(),
        ]);
    }
    vec![t]
}

/// E05 — Lemma 4.4: nonfrozen edges after each phase stay below
/// `2·n·d·(1-ε)^I`.
pub fn e05_edge_shrink(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let n = 1 << 14;
    let wg = crate::workloads::power_law_instance(
        n,
        512.0,
        WeightModel::Uniform { lo: 1.0, hi: 10.0 },
        9,
    );
    let res = run_reference(&wg, &MpcMwvcConfig::paper_scaled(eps, 5));
    let mut t = Table::new(
        "E05 Per-phase edge shrink vs Lemma 4.4 bound (n=16384, power-law d0~512, paper_scaled)",
        &[
            "phase",
            "d",
            "m",
            "I",
            "edges before",
            "edges after",
            "bound 2nd(1-e)^I",
            "after/bound",
        ],
    );
    for p in &res.phases {
        let bound = p.lemma_4_4_bound(n, eps);
        t.push(vec![
            p.phase.to_string(),
            f(p.d_avg, 1),
            p.machines.to_string(),
            p.iterations.to_string(),
            p.nonfrozen_edges_before.to_string(),
            p.nonfrozen_edges_after.to_string(),
            f(bound, 0),
            f(p.nonfrozen_edges_after as f64 / bound.max(1.0), 3),
        ]);
    }
    vec![t]
}

/// E11 — full model audit of the distributed executor: machine count,
/// memory words, peak resident, peak per-round traffic, violations, and
/// the congested-clique translation of the trace (the paper's Section 1.3
/// corollary via `[BDH18]`).
pub fn e11_model_audit(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut t = Table::new(
        "E11 Distributed execution audit (d=32, practical profile)",
        &[
            "n",
            "machines",
            "S (words)",
            "rounds",
            "peak resident",
            "resident/S",
            "peak traffic",
            "total traffic",
            "violations",
            "clique rounds",
        ],
    );
    for &n in &[1000usize, 2000, 4000, 8000] {
        let wg = er_instance(n, 32, WeightModel::Uniform { lo: 1.0, hi: 10.0 }, n as u64);
        let cfg = MpcMwvcConfig::practical(eps, 21);
        let cluster = recommended_cluster(&wg, &cfg);
        let out = run_distributed(&wg, &cfg, cluster.audited());
        let clique = simulate_on_clique(&out.trace, n);
        t.push(vec![
            n.to_string(),
            cluster.num_machines.to_string(),
            cluster.memory_words.to_string(),
            out.trace.num_rounds().to_string(),
            out.trace.peak_resident().to_string(),
            f(
                out.trace.peak_resident() as f64 / cluster.memory_words as f64,
                3,
            ),
            out.trace.peak_traffic().to_string(),
            out.trace.total_traffic().to_string(),
            out.trace.violations.len().to_string(),
            clique.rounds.to_string(),
        ]);
    }
    vec![t]
}
