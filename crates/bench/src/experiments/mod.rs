//! Experiment drivers, one per quantitative claim of the paper (the
//! mapping is DESIGN.md's experiment index; measured outcomes are
//! recorded in EXPERIMENTS.md).

mod coupled;
mod model;
mod quality;
mod rounds;
mod scaling;

pub use coupled::{e06_deviations, e07_bad_vertices, e12_threshold_ablation, e13_bias_ablation};
pub use model::{e04_machine_memory, e05_edge_shrink, e11_model_audit};
pub use quality::{e03_approx_ratio, e08_algorithm_comparison, e10_weight_robustness};
pub use rounds::{e01_rounds_vs_degree, e02_centralized_iterations, e09_init_comparison};
pub use scaling::scaling;

use crate::Table;

/// An experiment driver: produces one or more tables.
pub type Driver = fn() -> Vec<Table>;

/// All experiments by id.
pub fn all() -> Vec<(&'static str, Driver)> {
    vec![
        ("e01", e01_rounds_vs_degree as Driver),
        ("e02", e02_centralized_iterations),
        ("e03", e03_approx_ratio),
        ("e04", e04_machine_memory),
        ("e05", e05_edge_shrink),
        ("e06", e06_deviations),
        ("e07", e07_bad_vertices),
        ("e08", e08_algorithm_comparison),
        ("e09", e09_init_comparison),
        ("e10", e10_weight_robustness),
        ("e11", e11_model_audit),
        ("e12", e12_threshold_ablation),
        ("e13", e13_bias_ablation),
        ("scaling", scaling),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_complete_and_unique() {
        let ids: Vec<&str> = super::all().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 14);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 14);
        assert_eq!(ids[0], "e01");
        assert_eq!(ids[12], "e13");
        assert_eq!(ids[13], "scaling");
    }
}
