//! Experiment drivers, one per quantitative claim of the paper (the
//! mapping is DESIGN.md's experiment index; measured outcomes are
//! recorded in EXPERIMENTS.md), plus the executor-comparison experiments
//! `rounds` (trajectories) and `compress` (head-to-head).

mod compress;
mod coupled;
mod model;
mod quality;
mod rounds;
mod scaling;

pub use compress::compress;
pub use coupled::{e06_deviations, e07_bad_vertices, e12_threshold_ablation, e13_bias_ablation};
pub use model::{e04_machine_memory, e05_edge_shrink, e11_model_audit};
pub use quality::{e03_approx_ratio, e08_algorithm_comparison, e10_weight_robustness};
pub use rounds::{
    e01_rounds_vs_degree, e02_centralized_iterations, e09_init_comparison, rounds_trajectory,
};
pub use scaling::scaling;

use crate::harness::ExecutorKind;
use crate::Table;

/// Options threaded from the `experiments` CLI into the drivers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpOptions {
    /// Restricts executor-aware experiments (`rounds`) to one executor;
    /// `None` (the default) covers all of them.
    pub executor: Option<ExecutorKind>,
}

impl ExpOptions {
    /// The executors an executor-aware experiment should cover.
    pub fn executors(&self) -> Vec<ExecutorKind> {
        match self.executor {
            Some(k) => vec![k],
            None => ExecutorKind::all().to_vec(),
        }
    }
}

/// An experiment driver: produces one or more tables under the options.
pub type Driver = fn(&ExpOptions) -> Vec<Table>;

/// All experiments by id.
pub fn all() -> Vec<(&'static str, Driver)> {
    vec![
        ("e01", e01_rounds_vs_degree as Driver),
        ("e02", e02_centralized_iterations),
        ("e03", e03_approx_ratio),
        ("e04", e04_machine_memory),
        ("e05", e05_edge_shrink),
        ("e06", e06_deviations),
        ("e07", e07_bad_vertices),
        ("e08", e08_algorithm_comparison),
        ("e09", e09_init_comparison),
        ("e10", e10_weight_robustness),
        ("e11", e11_model_audit),
        ("e12", e12_threshold_ablation),
        ("e13", e13_bias_ablation),
        ("scaling", scaling),
        ("rounds", rounds_trajectory),
        ("compress", compress),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids: Vec<&str> = super::all().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 16);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        assert_eq!(ids[0], "e01");
        assert_eq!(ids[12], "e13");
        assert_eq!(ids[13], "scaling");
        assert_eq!(ids[14], "rounds");
        assert_eq!(ids[15], "compress");
    }

    #[test]
    fn executor_selection_defaults_to_all() {
        assert_eq!(ExpOptions::default().executors(), ExecutorKind::all());
        let only = ExpOptions {
            executor: Some(ExecutorKind::RoundCompress),
        };
        assert_eq!(only.executors(), vec![ExecutorKind::RoundCompress]);
    }
}
