//! Coupled-run experiments: E06 (Lemma 4.6 deviations), E07 (Lemma 4.8
//! bad vertices), E12 (random-threshold ablation), E13 (bias ablation).

use super::ExpOptions;
use crate::table::{f, Table};
use crate::workloads::er_instance;
use mwvc_core::mpc::{run_coupled, run_reference, BiasParams, MpcMwvcConfig};
use mwvc_core::ThresholdScheme;
use mwvc_graph::{EdgeIndex, WeightModel};

fn instance(n: usize, d: usize, seed: u64) -> mwvc_graph::WeightedGraph {
    er_instance(n, d, WeightModel::Uniform { lo: 1.0, hi: 8.0 }, seed)
}

/// E06 — Lemma 4.6: how far the MPC estimates stray from the coupled
/// centralized run, as a function of density. The asymptotic claim is
/// `≤ 6ε·w'(v)`; at finite scale the estimator noise is `σ ≈ d^{-1/4}`
/// (sampling `d(v)/m` of `d(v)` incident edges at `m = √d`), so the
/// measured deviations should track `d^{-1/4}` downward toward the `6ε`
/// regime.
pub fn e06_deviations(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut t = Table::new(
        "E06 Estimate deviations vs density (phase 0, eps=0.1; Lemma 4.6 predicts <= 6 eps asymptotically)",
        &[
            "d", "m", "I", "sigma = d^-1/4", "mean dev", "max dev",
            "mean/sigma", "6*eps",
        ],
    );
    for &d in &[16usize, 64, 256, 1024] {
        let wg = instance(4096, d, 31 + d as u64);
        let (_, rep) = run_coupled(&wg, &MpcMwvcConfig::practical(eps, 17));
        let Some(p0) = rep.phases.first() else {
            continue;
        };
        let mean: f64 = p0
            .per_iteration
            .iter()
            .map(|it| it.mean_dev_estimate)
            .sum::<f64>()
            / p0.per_iteration.len().max(1) as f64;
        let sigma = (d as f64).powf(-0.25);
        t.push(vec![
            d.to_string(),
            p0.machines.to_string(),
            p0.iterations.to_string(),
            f(sigma, 3),
            f(mean, 3),
            f(p0.worst_dev_estimate(), 3),
            f(mean / sigma, 2),
            f(6.0 * eps, 2),
        ]);
    }
    vec![t]
}

/// E07 — Lemma 4.8: the fraction of vertices that resolve differently in
/// the coupled runs ("bad" vertices), per iteration and cumulatively,
/// across densities.
pub fn e07_bad_vertices(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut summary = Table::new(
        "E07a Bad vertices vs density (phase 0)",
        &["d", "|V^high|", "total bad", "bad fraction"],
    );
    let mut per_iter = Table::new(
        "E07b Newly-bad vertices per iteration (d=1024, phase 0)",
        &["t", "newly bad", "bad fraction (cumulative)"],
    );
    for &d in &[16usize, 64, 256, 1024] {
        let wg = instance(4096, d, 51 + d as u64);
        let (_, rep) = run_coupled(&wg, &MpcMwvcConfig::practical(eps, 19));
        let Some(p0) = rep.phases.first() else {
            continue;
        };
        summary.push(vec![
            d.to_string(),
            p0.n_high.to_string(),
            p0.total_bad.to_string(),
            f(p0.total_bad as f64 / p0.n_high.max(1) as f64, 3),
        ]);
        if d == 1024 {
            for it in &p0.per_iteration {
                per_iter.push(vec![
                    it.t.to_string(),
                    it.newly_bad.to_string(),
                    f(it.bad_fraction, 3),
                ]);
            }
        }
    }
    vec![summary, per_iter]
}

/// E12 — the random-threshold mechanism (Section 3.2, [GGK+18] §4.2).
///
/// Lemma 4.8's per-iteration bad-vertex bound `σ/ε` *requires* random
/// thresholds: a fixed threshold lets the whole population sit on the
/// decision boundary in one iteration. Two measurements:
///
/// * on generic random instances the schemes are statistically
///   indistinguishable — expected, since the estimator noise
///   `σ ≈ d^{-1/4}` is comparable to the threshold window `2ε` at any
///   laptop-scale density, so the window provides no extra protection yet;
/// * on the boundary-crowded instance (every `V^high` vertex on the same
///   dual trajectory) the *iteration profile* separates: fixed thresholds
///   concentrate the divergences at the crossing iterations, random ones
///   spread them across the window — the independence structure
///   Lemma 4.13's recursion needs.
pub fn e12_threshold_ablation(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let mut generic = Table::new(
        "E12a Random vs fixed thresholds, generic instances (n=4096, eps=0.1)",
        &["d", "thresholds", "bad fraction", "cover weight", "w/LP*"],
    );
    for &d in &[64usize, 256] {
        let wg = instance(4096, d, 71 + d as u64);
        let lp = mwvc_baselines::lp_optimum(&wg).value;
        for scheme in [
            ThresholdScheme::UniformRandom,
            ThresholdScheme::FixedMidpoint,
        ] {
            let mut cfg = MpcMwvcConfig::practical(eps, 23);
            cfg.thresholds = scheme;
            let (res, rep) = run_coupled(&wg, &cfg);
            let bad = rep
                .phases
                .first()
                .map(|p| p.total_bad as f64 / p.n_high.max(1) as f64)
                .unwrap_or(0.0);
            let w = res.cover.weight(&wg);
            generic.push(vec![
                d.to_string(),
                scheme.label().to_string(),
                f(bad, 3),
                f(w, 1),
                f(w / lp, 3),
            ]);
        }
    }

    let mut boundary = Table::new(
        "E12b Boundary-crowded instance: newly-bad vertices per iteration (phase 0)",
        &[
            "thresholds",
            "bias",
            "I",
            "newly bad by t",
            "total bad",
            "late-iteration share",
        ],
    );
    // Every core vertex follows y_t/w' = 0.5 * (1/0.9)^t inside the phase:
    // the population crosses the [1-4e, 1-2e] window together.
    let wg = crate::workloads::boundary_instance(4096, 64, 64, 0.005, 10.0, 3);
    for &coeff in &[0.2f64, 0.0] {
        for scheme in [
            ThresholdScheme::UniformRandom,
            ThresholdScheme::FixedMidpoint,
        ] {
            let mut cfg = MpcMwvcConfig::practical(eps, 23);
            cfg.switch = mwvc_core::mpc::PhaseSwitch::AvgDegree(1.5);
            cfg.thresholds = scheme;
            cfg.bias = BiasParams {
                enabled: coeff > 0.0,
                coeff,
                exponent: 0.5,
            };
            let (_, rep) = run_coupled(&wg, &cfg);
            let Some(p0) = rep.phases.first() else {
                continue;
            };
            let newly: Vec<usize> = p0.per_iteration.iter().map(|i| i.newly_bad).collect();
            let total: usize = newly.iter().sum();
            let late: usize = newly.iter().skip(newly.len() / 2).sum();
            boundary.push(vec![
                scheme.label().to_string(),
                f(coeff, 2),
                p0.iterations.to_string(),
                format!("{newly:?}"),
                total.to_string(),
                f(late as f64 / total.max(1) as f64, 3),
            ]);
        }
    }
    vec![generic, boundary]
}

/// E13 — the one-sided bias term (Section 3.2 "Other changes"): without
/// it the local estimate errs on both sides of the truth; with it the
/// "late-bad" side nearly disappears, at a small cover-weight premium.
pub fn e13_bias_ablation(_opts: &ExpOptions) -> Vec<Table> {
    let eps = 0.1;
    let wg = instance(4096, 256, 91);
    let lp = mwvc_baselines::lp_optimum(&wg).value;
    let eidx = EdgeIndex::build(&wg.graph);
    let mut t = Table::new(
        "E13 Bias ablation (n=4096, d=256, eps=0.1)",
        &[
            "bias coeff",
            "one-sided violations",
            "bad fraction",
            "cover weight",
            "w/LP*",
            "certified",
        ],
    );
    for &coeff in &[0.0f64, 0.25, 0.5, 1.0, 2.0] {
        let mut cfg = MpcMwvcConfig::practical(eps, 29);
        cfg.bias = BiasParams {
            enabled: coeff > 0.0,
            coeff,
            exponent: 0.5,
        };
        let (res, rep) = run_coupled(&wg, &cfg);
        let bad = rep
            .phases
            .first()
            .map(|p| p.total_bad as f64 / p.n_high.max(1) as f64)
            .unwrap_or(0.0);
        let w = res.cover.weight(&wg);
        t.push(vec![
            f(coeff, 2),
            f(rep.total_one_sided_violations(), 3),
            f(bad, 3),
            f(w, 1),
            f(w / lp, 3),
            f(res.certificate.certified_ratio(&wg, &eidx, w), 3),
        ]);
    }
    // A cross-check that the ablation changed nothing about validity.
    let plain = run_reference(&wg, &MpcMwvcConfig::practical(eps, 29));
    plain.cover.verify(&wg.graph).expect("valid cover");
    vec![t]
}
