//! Aligned text tables (with CSV export) for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let line = |cells: &[String], out: &mut String| {
            let mut s = String::from("  ");
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(s, "{cell:>width$}  ");
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols + 2;
        let _ = writeln!(out, "  {}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.push(vec!["1".into(), "2".into(), "3".into()]);
        t.push(vec!["100".into(), "2000".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 5, "title, header, rule, 2 rows");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a,b", "c"]);
        t.push(vec!["va\"l".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"va\"\"l\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }
}
