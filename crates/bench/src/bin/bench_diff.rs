//! `bench-diff` — the perf-gate comparator.
//!
//! ```text
//! bench-diff <baseline.json> <candidate.json> \
//!     [--wall-tolerance FRACTION] [--cp-tolerance FRACTION]
//! ```
//!
//! Exit codes: `0` — model costs and quality identical (gate passes);
//! `1` — gated differences found (regression, improvement needing a
//! baseline refresh, or structural drift); `2` — usage, I/O, or parse
//! error.

// The gate's exit status IS its interface (0 pass / 1 gated diff /
// 2 usage), and the divergent `usage`/`help` helpers need `exit` rather
// than `ExitCode` plumbing; everything else in the workspace keeps the
// deny.
#![allow(clippy::exit)]

use mwvc_bench::diff::{diff_reports, DiffOptions};
use mwvc_bench::schema::BenchReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wall-tolerance" => {
                i += 1;
                let raw = args
                    .get(i)
                    .unwrap_or_else(|| usage("--wall-tolerance needs a fraction"));
                let tol: f64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage("--wall-tolerance needs a number, e.g. 0.5"));
                if !(tol >= 0.0 && tol.is_finite()) {
                    usage("--wall-tolerance must be a nonnegative finite fraction");
                }
                opts.wall_tolerance = Some(tol);
            }
            "--cp-tolerance" => {
                i += 1;
                let raw = args
                    .get(i)
                    .unwrap_or_else(|| usage("--cp-tolerance needs a fraction"));
                let tol: f64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage("--cp-tolerance needs a number, e.g. 0.1"));
                if !(tol >= 0.0 && tol.is_finite()) {
                    usage("--cp-tolerance must be a nonnegative finite fraction");
                }
                opts.cp_tolerance = Some(tol);
            }
            "--help" | "-h" => help(),
            flag if flag.starts_with('-') => usage(&format!("unknown flag {flag:?}")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        usage("expected exactly two report paths: <baseline.json> <candidate.json>");
    };

    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    let result = diff_reports(&baseline, &candidate, opts);
    print!("{}", result.render());
    std::process::exit(if result.is_clean() { 0 } else { 1 });
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    BenchReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn help() -> ! {
    print_usage();
    std::process::exit(0);
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    print_usage();
    std::process::exit(2);
}

fn print_usage() {
    eprintln!(
        "usage: bench-diff <baseline.json> <candidate.json> [--wall-tolerance FRACTION] \
         [--cp-tolerance FRACTION]"
    );
    eprintln!();
    eprintln!("Compares two BENCH_core.json reports. Model costs and quality must match");
    eprintln!("exactly; wall-clock is reported, and gated only when a tolerance is given");
    eprintln!("(e.g. --wall-tolerance 0.5 fails workloads that got >50% slower). The");
    eprintln!("deterministic critical-path statistics follow the same policy under");
    eprintln!("--cp-tolerance (e.g. 0.0 fails any makespan/stall growth).");
    eprintln!();
    eprintln!("Exit codes:");
    eprintln!("  0  gate passes: model costs and quality identical to the baseline");
    eprintln!("  1  gated differences found: a regression, an improvement awaiting a");
    eprintln!("     deliberate baseline refresh, or structural drift (schema version,");
    eprintln!("     workload matrix, instance shape)");
    eprintln!("  2  usage, I/O, or parse error — nothing was compared");
}
