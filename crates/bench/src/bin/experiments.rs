//! CLI entry point regenerating every experiment table.
//!
//! ```text
//! experiments all                 # run the full suite
//! experiments e01 e05             # run selected experiments
//! experiments all --csv out/      # also write one CSV per table
//! experiments scaling --threads 4 # pin the host pool width
//! ```

use mwvc_bench::experiments;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--csv needs a directory"))
                        .clone(),
                );
            }
            "--threads" => {
                i += 1;
                let t = args
                    .get(i)
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--threads needs a positive integer"));
                if t == 0 {
                    usage("--threads needs a positive integer");
                }
                threads = Some(t);
            }
            "--help" | "-h" => {
                usage("");
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if let Some(t) = threads {
        // Pin the global pool before any parallel work builds it lazily.
        // (The `scaling` experiment sweeps its own pools regardless.)
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global()
            .expect("--threads must be set before the pool is first used");
    }
    if ids.is_empty() {
        usage("no experiments selected");
    }
    let registry = experiments::all();
    let selected: Vec<_> = if ids.iter().any(|i| i == "all") {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(id, _)| *id).collect();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                usage(&format!(
                    "unknown experiment {id:?}; known: {known:?} or 'all'"
                ));
            }
        }
        registry
            .into_iter()
            .filter(|(id, _)| ids.iter().any(|want| want == id))
            .collect()
    };

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }
    for (id, run) in selected {
        let start = Instant::now();
        eprintln!("[{id}] running...");
        let tables = run();
        for (k, table) in tables.iter().enumerate() {
            print!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{id}_{k}.csv");
                std::fs::write(&path, table.to_csv()).expect("write csv");
                eprintln!("[{id}] wrote {path}");
            }
        }
        eprintln!("[{id}] done in {:.1}s", start.elapsed().as_secs_f64());
        let _ = std::io::stdout().flush();
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: experiments <e01..e13 | scaling | all>... [--csv DIR] [--threads N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
